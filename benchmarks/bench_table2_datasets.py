"""Table II — the dataset inventory.

Paper lists six real temporal networks.  This bench generates the six
dataset-shaped synthetic stand-ins at their default scales, verifies the
structural properties each substitution must preserve (node/edge ratio,
degree skew class, label structure), and prints the inventory with the
real sizes alongside.
"""

from repro.bench import ExperimentRecorder, render_table
from repro.graph import TemporalGraph, compute_stats, generators
from repro.graph.io import LabeledTemporalDataset

from conftest import emit

LP_DATASETS = ["ia-email", "wiki-talk", "stackoverflow"]
NC_DATASETS = ["dblp5", "dblp3", "brain"]


def test_table2_dataset_inventory(benchmark):
    def generate_all():
        import zlib

        out = {}
        for name in LP_DATASETS + NC_DATASETS:
            # crc32 is deterministic across processes (str hash is salted).
            seed = zlib.crc32(name.encode()) % 1000
            out[name] = generators.dataset_by_name(name, seed=seed)
        return out

    datasets = benchmark.pedantic(generate_all, rounds=1, iterations=1)

    rows = []
    for name, data in datasets.items():
        real_nodes, real_edges = generators.TABLE2_REAL_SIZES[name]
        if isinstance(data, LabeledTemporalDataset):
            edges = data.edges
            task = "node classification"
            classes = data.num_classes
        else:
            edges = data
            task = "link prediction"
            classes = "-"
        stats = compute_stats(TemporalGraph.from_edge_list(edges))
        rows.append({
            "dataset": name,
            "task": task,
            "nodes": stats.num_nodes,
            "edges": stats.num_edges,
            "real nodes": real_nodes,
            "real edges": real_edges,
            "mean deg": round(stats.mean_degree, 1),
            "deg gini": round(stats.degree_gini, 2),
            "classes": classes,
        })
    emit("")
    emit(render_table(rows, title="Table II — dataset-shaped generators vs "
                                  "real datasets"))

    by_name = {r["dataset"]: r for r in rows}
    # Density class matches the real data: brain is far denser than every
    # interaction network.
    assert by_name["brain"]["mean deg"] > 50
    for name in LP_DATASETS:
        assert by_name["brain"]["mean deg"] > 3 * by_name[name]["mean deg"]
    # Interaction networks are hub-skewed; SBM co-author graphs are not.
    for name in LP_DATASETS:
        assert by_name[name]["deg gini"] > 0.45, name
    for name in ("dblp3", "dblp5"):
        assert by_name[name]["deg gini"] < 0.5, name
    # Label structure.
    assert by_name["dblp5"]["classes"] == 5
    assert by_name["dblp3"]["classes"] == 3
    assert by_name["brain"]["classes"] == 10
    # Node/edge ratios within ~3x of the real ratios (id compaction on
    # the heavy-tailed generators inflates mean degree somewhat).
    for name in LP_DATASETS:
        real_ratio = (generators.TABLE2_REAL_SIZES[name][1]
                      / generators.TABLE2_REAL_SIZES[name][0])
        ours = by_name[name]["edges"] / by_name[name]["nodes"]
        assert 0.4 < ours / real_ratio < 3.2, name

    recorder = ExperimentRecorder("table2_datasets")
    recorder.add("rows", rows)
    recorder.save()
