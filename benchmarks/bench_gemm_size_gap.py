"""§VII-B — the GEMM size gap: pipeline classifier vs VGG, per instruction.

Paper: per-instruction testing time of the random-walk pipeline's
classifier is 37.4x slower than VGG on the GPU, attributed to matrix
sizes (VGG's largest layer is ~3136x larger) and math libraries being
tuned for popular big shapes.

Two reproductions:

1. **Measured (CPU BLAS)**: seconds-per-flop of the pipeline's actual
   classifier GEMM shapes vs VGG conv-as-GEMM shapes on this host's
   OpenBLAS.  The small-batch and 1-output-column shapes run at a
   visibly worse per-flop rate; the gap is smaller than the paper's
   because CPU BLAS degrades more gracefully than cuBLAS on tiny
   shapes.
2. **Modeled (GPU)**: per-flop time of the classifier kernel vs the VGG
   kernel in the GPU model, where tiny grids can't fill the device —
   the occupancy effect behind the paper's 37.4x.
"""

from repro.baselines import VggModel, gemm_seconds_per_flop
from repro.bench import ExperimentRecorder, render_table
from repro.hwmodel import classifier_kernel

from conftest import emit

# Pipeline classifier GEMM shapes: hidden and output layers of the
# 2-layer LP FNN (2d=16 features, hidden 32) at small eval batches.
PIPELINE_SHAPES = [(32, 16, 32), (128, 16, 32), (128, 32, 1), (32, 32, 1)]
# Representative large VGG conv-as-GEMM shapes.
VGG_SHAPES = [(12544, 1152, 128), (3136, 2304, 256)]


def test_gemm_size_gap_measured_cpu(benchmark):
    def measure():
        pipeline = [gemm_seconds_per_flop(*s, repeats=7, seed=1)
                    for s in PIPELINE_SHAPES]
        vgg = [gemm_seconds_per_flop(*s, repeats=2, seed=1)
               for s in VGG_SHAPES]
        return pipeline, vgg

    pipeline, vgg = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for shape, spf in zip(PIPELINE_SHAPES, pipeline):
        rows.append({"family": "pipeline", "shape (m,k,n)": str(shape),
                     "sec/flop": spf})
    for shape, spf in zip(VGG_SHAPES, vgg):
        rows.append({"family": "VGG", "shape (m,k,n)": str(shape),
                     "sec/flop": spf})
    emit("")
    emit(render_table(rows, title="§VII-B (measured, CPU BLAS) — GEMM "
                                  "seconds per flop"))

    gap = max(pipeline) / min(vgg)
    emit(f"worst pipeline shape vs best VGG shape: {gap:.1f}x "
         "(paper reports 37.4x per instruction on GPU)")
    # The single-output-column classifier layer pays a real penalty even
    # on a forgiving CPU BLAS.
    assert gap > 3.0

    recorder = ExperimentRecorder("gemm_size_gap_cpu")
    recorder.add("pipeline_sec_per_flop", pipeline)
    recorder.add("vgg_sec_per_flop", vgg)
    recorder.add("gap", gap)
    recorder.save()


def test_gemm_size_gap_modeled_gpu(benchmark):
    def model_gap():
        vgg = VggModel.vgg16(batch_size=8)
        vgg_report = vgg.gpu_kernel().report()
        vgg_per_flop = vgg_report.time_seconds / vgg.total_flops()

        samples = 100_000
        clf = classifier_kernel("test", [(16, 32), (32, 1)], 1024,
                                samples, training=False)
        clf_report = clf.report()
        clf_flops = sum(2.0 * samples * i * o for i, o in [(16, 32), (32, 1)])
        clf_per_flop = clf_report.time_seconds / clf_flops
        return clf_per_flop, vgg_per_flop

    clf_per_flop, vgg_per_flop = benchmark.pedantic(model_gap, rounds=3,
                                                    iterations=1)
    gap = clf_per_flop / vgg_per_flop
    emit("")
    emit(render_table(
        [{"kernel": "pipeline classifier (test)", "sec/flop": clf_per_flop},
         {"kernel": "VGG inference", "sec/flop": vgg_per_flop},
         {"kernel": "gap", "sec/flop": gap}],
        title="§VII-B (modeled, GPU) — per-flop gap (paper: 37.4x)",
    ))
    assert 5 < gap < 5000

    # The 3136x layer-size context.
    largest_vgg = VggModel.vgg16().largest_layer_elements()
    largest_pipeline = max(k * n for _, k, n in PIPELINE_SHAPES)
    ratio = largest_vgg / largest_pipeline
    emit(f"largest layer elements: VGG {largest_vgg} vs pipeline "
         f"{largest_pipeline} ({ratio:.0f}x; paper cites ~3136x)")
    assert ratio > 1000

    recorder = ExperimentRecorder("gemm_size_gap_gpu")
    recorder.add("classifier_sec_per_flop", clf_per_flop)
    recorder.add("vgg_sec_per_flop", vgg_per_flop)
    recorder.add("gap", gap)
    recorder.add("layer_size_ratio", ratio)
    recorder.save()
