"""Fig. 6 — cumulative speedup of the word2vec GPU optimizations.

Paper: starting from the unbatched baseline, Batch -> No-pad -> Coalesce
-> Par-red culminate in a 220.5x end-to-end speedup on wiki-talk.  The
microarchitectural levers (cache-line padding, coalescing, reduction
shape, barrier removal) don't exist in numpy, so the ladder comes from
the GPU cost model fed with the corpus's measured sentence statistics —
plus one honest measurement: the padding effect on cache hit rate is
replayed through the cache simulator on the real embedding access trace.
"""

from repro.bench import ExperimentRecorder, render_table
from repro.hwmodel import Word2vecGpuModel
from repro.hwmodel.cache import CacheConfig, CacheSim, embedding_trace
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_fig06_optimization_ladder(benchmark, wiki_graph):
    corpus = TemporalWalkEngine(wiki_graph).run(
        WalkConfig(num_walks_per_node=4, max_walk_length=6), seed=5
    )
    sentences = sum(1 for _ in corpus.sentences(min_length=2))
    pairs_per_sentence = corpus.total_nodes() / max(1, sentences)

    model = Word2vecGpuModel(
        num_sentences=sentences, pairs_per_sentence=pairs_per_sentence * 4
    )
    ladder = benchmark.pedantic(
        lambda: model.optimization_ladder(batch_sentences=16384),
        rounds=3, iterations=1,
    )

    rows = [{"optimization": name, "cumulative speedup": value}
            for name, value in ladder.items()]
    emit("")
    emit(render_table(rows, title="Fig. 6 (modeled) — paper reports 220.5x "
                                  "after all four optimizations"))

    values = list(ladder.values())
    assert values == sorted(values), "each optimization must add speedup"
    assert ladder["batch"] > 50
    assert ladder["coalesce"] > ladder["batch"]

    # Honest half: padding wastes cache lines on the real access trace.
    cache_rates = {}
    for pad in (False, True):
        trace = embedding_trace(corpus, dim=8, pad_to_line=pad, limit=100_000)
        cache = CacheSim(CacheConfig(size_bytes=128 * 1024, line_bytes=64,
                                     ways=8))
        cache.access_many(trace)
        cache_rates["padded" if pad else "packed"] = cache.hit_rate
    emit("")
    emit(render_table(
        [{"layout": k, "cache hit rate": v} for k, v in cache_rates.items()],
        title="No-pad rationale (measured on cache simulator, d=8)",
    ))
    assert cache_rates["packed"] >= cache_rates["padded"]

    recorder = ExperimentRecorder("fig06_w2v_ablation")
    recorder.add("ladder", ladder)
    recorder.add("cache_hit_rates", cache_rates)
    recorder.save()
