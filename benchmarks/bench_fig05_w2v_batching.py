"""Fig. 5 — word2vec speedup vs sentence batch size.

Paper: batching 16k sentences per GPU kernel yields 124.2x over
no-batching, with no accuracy loss, because walk sentences are short
(Fig. 4) and unbatched execution pays per-sentence launch overhead.

Two reproductions, one honest measurement and one model:

1. **Measured**: the numpy batched trainer's per-update overhead plays
   the role of kernel-launch overhead; we sweep the batch size over the
   same corpus and measure wall time and final loss (the no-accuracy-
   loss claim).
2. **Modeled**: the GPU cost model's Fig. 5 sweep with launch/transfer
   parameters (saturating at hundreds of x).
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.hwmodel import Word2vecGpuModel
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

BATCH_SIZES = [1, 4, 16, 64, 256, 1024, 4096, 16384]


def test_fig05_batching_speedup(benchmark, wiki_graph):
    engine = TemporalWalkEngine(wiki_graph)
    corpus = engine.run(WalkConfig(num_walks_per_node=4, max_walk_length=6),
                        seed=2)
    config = SgnsConfig(dim=8, epochs=2)

    def train(batch: int):
        trainer = BatchedSgnsTrainer(config, batch_sentences=batch)
        trainer.train(corpus, wiki_graph.num_nodes, seed=3)
        return trainer.last_stats

    # The timed kernel: the recommended batched configuration.
    benchmark.pedantic(lambda: train(1024), rounds=3, iterations=1)

    measured = {}
    for batch in BATCH_SIZES:
        stats = train(batch)
        measured[batch] = stats

    base = measured[1].wall_seconds

    def final_loss(stats):
        tail = stats.losses[-max(1, len(stats.losses) // 4):]
        return float(np.mean(tail))

    base_loss = final_loss(measured[1])
    rows = []
    for batch in BATCH_SIZES:
        stats = measured[batch]
        rows.append({
            "batch": batch,
            "measured speedup": base / stats.wall_seconds,
            "updates": stats.updates,
            "final loss": final_loss(stats),
        })
    emit("")
    emit(render_table(rows, title="Fig. 5 (measured) — numpy batching sweep"))

    # No-accuracy-loss claim: final loss within tolerance of unbatched.
    losses = np.array([final_loss(measured[b]) for b in BATCH_SIZES])
    assert np.all(losses < base_loss * 1.15 + 0.2)
    # Batching speeds training up by an order of magnitude or more.
    assert base / measured[1024].wall_seconds > 5

    model = Word2vecGpuModel(
        num_sentences=sum(1 for _ in corpus.sentences(min_length=2)),
        pairs_per_sentence=measured[1024].pairs_trained
        / max(1, sum(1 for _ in corpus.sentences(min_length=2))),
    )
    modeled = model.batching_speedups(BATCH_SIZES)
    emit("")
    emit(render_table(
        [{"batch": b, "modeled GPU speedup": s} for b, s in modeled.items()],
        title="Fig. 5 (modeled GPU) — paper reports 124.2x at 16k",
    ))
    assert modeled[16384] > 50
    assert modeled[16384] < 1000

    recorder = ExperimentRecorder("fig05_w2v_batching")
    recorder.add("measured_speedups",
                 {b: base / measured[b].wall_seconds for b in BATCH_SIZES})
    # mean_loss is pair-weighted (per-pair unit) in every trainer, so
    # these values are directly comparable across batch sizes.
    recorder.add("measured_losses",
                 {b: measured[b].mean_loss for b in BATCH_SIZES})
    recorder.add("modeled_speedups", modeled)
    recorder.save()
