"""Ablation — O(log M) inverse-CDF sampler vs the paper's O(M) scan.

The paper's Algorithm 1 costs O(K N |V| M) because sampling a temporal
neighbor scans all M candidates to evaluate Eq. 1 (§V-A); our engine's
default ``cdf`` sampler replaces the scan with precomputed weight prefix
sums + binary search, an optimization of the kind §VIII-A's discussion
invites.  This ablation measures the wall-clock gap on a hub-heavy graph
(where M is large) and verifies the two samplers draw from the same
distribution (identical downstream accuracy).
"""

import time

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph
from repro.tasks import LinkPredictionTask
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_ablation_sampler(benchmark, wiki_edges):
    # Undirected doubling makes hubs huge: the O(M) scan's worst case.
    graph = TemporalGraph.from_edge_list(wiki_edges.with_reverse_edges())
    config = WalkConfig(num_walks_per_node=4, max_walk_length=6)

    def run(sampler):
        engine = TemporalWalkEngine(graph, sampler=sampler)
        start = time.perf_counter()
        corpus = engine.run(config, seed=1)
        return corpus, time.perf_counter() - start, engine.last_stats

    benchmark.pedantic(lambda: run("cdf"), rounds=3, iterations=1)

    corpus_cdf, time_cdf, stats = run("cdf")
    corpus_gum, time_gum, _ = run("gumbel")

    task = LinkPredictionTask(LinkPredictionConfig(
        training=TrainSettings(epochs=12, learning_rate=0.05)))

    def auc(corpus):
        embeddings, _ = train_embeddings(
            corpus, graph.num_nodes, SgnsConfig(dim=8, epochs=3), seed=2)
        return task.run(embeddings, wiki_edges, seed=3).auc

    rows = [
        {"sampler": "cdf (O(log M))", "walk seconds": time_cdf,
         "lp auc": auc(corpus_cdf)},
        {"sampler": "gumbel scan (O(M), paper-faithful)",
         "walk seconds": time_gum, "lp auc": auc(corpus_gum)},
    ]
    emit("")
    emit(render_table(rows, title="Sampler ablation (hub-heavy wiki graph)"))
    emit(f"scan-model candidates per step: "
         f"{stats.mean_candidates_per_step:.0f} (the M factor)")

    assert time_cdf < time_gum, "CDF sampler must beat the O(M) scan"
    assert abs(rows[0]["lp auc"] - rows[1]["lp auc"]) < 0.05

    recorder = ExperimentRecorder("ablation_sampler")
    recorder.add("cdf_seconds", time_cdf)
    recorder.add("gumbel_seconds", time_gum)
    recorder.add("cdf_auc", rows[0]["lp auc"])
    recorder.add("gumbel_auc", rows[1]["lp auc"])
    recorder.save()
