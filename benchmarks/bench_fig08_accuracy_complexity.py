"""Fig. 8 — the accuracy-complexity trade-off.

Paper findings being reproduced:
  (a) random-walk kernel time grows monotonically with walks/node K;
  (b) LP and NC accuracy improve with K but saturate around K = 8-10;
  (c) accuracy improves with walk length L, saturating around L = 4-6;
  (d) accuracy improves with embedding dimension d, saturating around
      d = 8 — far below the customary 128;
and throughout, link prediction outscores node classification.
"""

import time

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph, generators
from repro.tasks import LinkPredictionTask, NodeClassificationTask
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.node_classification import NodeClassificationConfig
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

K_SWEEP = [1, 2, 4, 8, 10, 16, 20]
L_SWEEP = [2, 3, 4, 6, 8, 10]
D_SWEEP = [1, 2, 4, 8, 16, 32, 64, 128]

TRAIN = TrainSettings(epochs=25, learning_rate=0.05)


def lp_accuracy(edges, graph, walk_config, sgns_config, seed):
    corpus = TemporalWalkEngine(graph).run(walk_config, seed=seed)
    embeddings, _ = train_embeddings(
        corpus, graph.num_nodes, sgns_config, seed=seed + 1
    )
    result = LinkPredictionTask(
        LinkPredictionConfig(training=TRAIN)
    ).run(embeddings, edges, seed=seed + 2)
    return result.accuracy


def nc_accuracy(dataset, graph, walk_config, sgns_config, seed):
    corpus = TemporalWalkEngine(graph).run(walk_config, seed=seed)
    embeddings, _ = train_embeddings(
        corpus, graph.num_nodes, sgns_config, seed=seed + 1
    )
    result = NodeClassificationTask(
        NodeClassificationConfig(training=TRAIN)
    ).run(embeddings, dataset.labels, seed=seed + 2)
    return result.accuracy


def mean_over_seeds(fn, seeds=(11, 31, 51)):
    return float(np.mean([fn(seed) for seed in seeds]))


def test_fig08a_walk_time_vs_num_walks(benchmark, stackoverflow_edges):
    graph = TemporalGraph.from_edge_list(stackoverflow_edges)
    engine = TemporalWalkEngine(graph)

    def run(k):
        config = WalkConfig(num_walks_per_node=k, max_walk_length=6)
        start = time.perf_counter()
        engine.run(config, seed=1)
        return time.perf_counter() - start

    benchmark.pedantic(lambda: run(10), rounds=3, iterations=1)

    times = {k: min(run(k) for _ in range(3)) for k in K_SWEEP}
    base = times[K_SWEEP[0]]
    rows = [{"walks/node K": k, "time (s)": t, "normalized": t / base}
            for k, t in times.items()]
    emit("")
    emit(render_table(rows, title="Fig. 8a — rwalk time vs walks/node "
                                  "(stackoverflow shaped)"))
    # Monotone growth claim (allowing small timing noise).
    assert times[20] > times[1] * 4

    ExperimentRecorder("fig08a_walk_time").data.update(
        {"times": {k: float(v) for k, v in times.items()}}
    )


def test_fig08b_accuracy_vs_num_walks(benchmark, email_edges):
    lp_graph = TemporalGraph.from_edge_list(email_edges.with_reverse_edges())
    dataset = generators.dblp3_like(scale=0.2, seed=201)
    nc_graph = TemporalGraph.from_edge_list(
        dataset.edges.with_reverse_edges()
    )
    sgns = SgnsConfig(dim=8, epochs=8)

    def accuracy_pair(k):
        walk = WalkConfig(num_walks_per_node=k, max_walk_length=6)
        return (
            mean_over_seeds(lambda s: lp_accuracy(
                email_edges, lp_graph, walk, sgns, s)),
            mean_over_seeds(lambda s: nc_accuracy(
                dataset, nc_graph, walk, sgns, s)),
        )

    benchmark.pedantic(lambda: accuracy_pair(4), rounds=1, iterations=1)

    rows = []
    series = {}
    for k in K_SWEEP:
        lp, nc = accuracy_pair(k)
        series[k] = (lp, nc)
        rows.append({"walks/node K": k, "link prediction": lp,
                     "node classification": nc})
    emit("")
    emit(render_table(rows, title="Fig. 8b — accuracy vs walks/node"))

    lp_series = {k: v[0] for k, v in series.items()}
    nc_series = {k: v[1] for k, v in series.items()}
    # More walks help...
    assert lp_series[10] > lp_series[1]
    assert nc_series[10] > nc_series[1]
    # ...but saturate by K ~ 8-10 (beyond: < 4 points of further gain).
    assert lp_series[20] - lp_series[10] < 0.04
    # LP outperforms NC relative to its chance level is paper-consistent;
    # the raw ordering LP > NC holds on these datasets.
    assert lp_series[10] > nc_series[10] - 0.05

    recorder = ExperimentRecorder("fig08b_accuracy_vs_k")
    recorder.add("link_prediction", lp_series)
    recorder.add("node_classification", nc_series)
    recorder.save()


def test_fig08c_accuracy_vs_walk_length(benchmark, email_edges):
    lp_graph = TemporalGraph.from_edge_list(email_edges.with_reverse_edges())
    dataset = generators.dblp3_like(scale=0.2, seed=202)
    nc_graph = TemporalGraph.from_edge_list(
        dataset.edges.with_reverse_edges()
    )
    sgns = SgnsConfig(dim=8, epochs=8)

    def accuracy_pair(length):
        walk = WalkConfig(num_walks_per_node=10, max_walk_length=length)
        return (
            mean_over_seeds(lambda s: lp_accuracy(
                email_edges, lp_graph, walk, sgns, s)),
            mean_over_seeds(lambda s: nc_accuracy(
                dataset, nc_graph, walk, sgns, s)),
        )

    benchmark.pedantic(lambda: accuracy_pair(4), rounds=1, iterations=1)

    lp_series, nc_series = {}, {}
    rows = []
    for length in L_SWEEP:
        lp, nc = accuracy_pair(length)
        lp_series[length], nc_series[length] = lp, nc
        rows.append({"walk length L": length, "link prediction": lp,
                     "node classification": nc})
    emit("")
    emit(render_table(rows, title="Fig. 8c — accuracy vs walk length"))

    assert lp_series[6] > lp_series[2] - 0.01
    # Saturation after L ~ 4-6.
    assert abs(lp_series[10] - lp_series[6]) < 0.05

    recorder = ExperimentRecorder("fig08c_accuracy_vs_length")
    recorder.add("link_prediction", lp_series)
    recorder.add("node_classification", nc_series)
    recorder.save()


def test_fig08d_accuracy_vs_dimension(benchmark, email_edges):
    lp_graph = TemporalGraph.from_edge_list(email_edges.with_reverse_edges())
    dataset = generators.dblp3_like(scale=0.2, seed=203)
    nc_graph = TemporalGraph.from_edge_list(
        dataset.edges.with_reverse_edges()
    )
    walk = WalkConfig(num_walks_per_node=10, max_walk_length=6)

    def accuracy_pair(dim):
        # Small dimensions need the full SGNS budget to reach their
        # capacity; under-training at low d would fake a dimension effect.
        sgns = SgnsConfig(dim=dim, epochs=8)
        return (
            mean_over_seeds(lambda s: lp_accuracy(
                email_edges, lp_graph, walk, sgns, s)),
            mean_over_seeds(lambda s: nc_accuracy(
                dataset, nc_graph, walk, sgns, s)),
        )

    benchmark.pedantic(lambda: accuracy_pair(8), rounds=1, iterations=1)

    lp_series, nc_series = {}, {}
    rows = []
    for dim in D_SWEEP:
        lp, nc = accuracy_pair(dim)
        lp_series[dim], nc_series[dim] = lp, nc
        rows.append({"dimension d": dim, "link prediction": lp,
                     "node classification": nc})
    emit("")
    emit(render_table(rows, title="Fig. 8d — accuracy vs embedding "
                                  "dimension (paper: d=8 is enough)"))

    # Gains from 1 -> 8...
    assert lp_series[8] > lp_series[1] + 0.05
    # ...and d=8 within a few points of d=128 (the headline finding).
    assert lp_series[128] - lp_series[8] < 0.05
    assert nc_series[128] - nc_series[8] < 0.08

    recorder = ExperimentRecorder("fig08d_accuracy_vs_dim")
    recorder.add("link_prediction", lp_series)
    recorder.add("node_classification", nc_series)
    recorder.save()
