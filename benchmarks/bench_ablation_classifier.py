"""§VIII-A ablation — ResNet-style classifier vs the plain FNN.

Paper: "we observe at least ~2% accuracy improvement for link prediction
using ResNet" over the basic feed-forward model.  Reproduced by training
the plain 2-layer FNN and a residual variant (same width, one residual
block) on identical embeddings/splits across seeds.
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph
from repro.nn import BCEWithLogitsLoss, Linear, ReLU, Residual, Sequential
from repro.nn.metrics import binary_accuracy
from repro.tasks.features import Standardizer, build_link_prediction_features
from repro.tasks.negative_sampling import sample_negative_edges
from repro.tasks.splits import temporal_edge_split
from repro.tasks.training import TrainSettings, train_classifier
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


def build_plain(feature_dim, hidden, seed):
    return Sequential(
        Linear(feature_dim, hidden, seed=seed), ReLU(),
        Linear(hidden, 1, seed=seed + 1),
    )


def build_residual(feature_dim, hidden, seed):
    return Sequential(
        Linear(feature_dim, hidden, seed=seed), ReLU(),
        Residual(Sequential(
            Linear(hidden, hidden, seed=seed + 1), ReLU(),
            Linear(hidden, hidden, seed=seed + 2),
        )),
        ReLU(),
        Linear(hidden, 1, seed=seed + 3),
    )


def test_ablation_resnet_classifier(benchmark, email_edges):
    graph = TemporalGraph.from_edge_list(email_edges.with_reverse_edges())
    corpus = TemporalWalkEngine(graph).run(WalkConfig(), seed=1)
    embeddings, _ = train_embeddings(
        corpus, graph.num_nodes, SgnsConfig(dim=8, epochs=5), seed=2
    )

    settings = TrainSettings(epochs=25, learning_rate=0.05)

    def run_seed(seed, builder):
        splits = temporal_edge_split(email_edges, seed=seed)
        forbidden = email_edges.edge_key_set()
        parts = {}
        for name, positives in (("train", splits.train),
                                ("valid", splits.valid),
                                ("test", splits.test)):
            negatives = sample_negative_edges(
                positives, forbidden, email_edges.num_nodes, seed=seed + 1
            )
            forbidden |= negatives.edge_key_set()
            parts[name] = build_link_prediction_features(
                embeddings, positives, negatives)
        scaler = Standardizer().fit(parts["train"][0])
        parts = {k: (scaler.transform(x), y) for k, (x, y) in parts.items()}

        model = builder(2 * embeddings.dim, 32, seed + 10)
        loss = BCEWithLogitsLoss()

        def evaluate(m, x, y):
            return binary_accuracy(_sigmoid(m.forward(x).reshape(-1)), y)

        train_classifier(model, loss, parts["train"], parts["valid"],
                         settings, evaluate, seed=seed + 20)
        return evaluate(model, *parts["test"])

    def run_all():
        seeds = (3, 13, 23, 33)
        plain = [run_seed(s, build_plain) for s in seeds]
        resnet = [run_seed(s, build_residual) for s in seeds]
        return np.mean(plain), np.mean(resnet)

    plain_acc, resnet_acc = benchmark.pedantic(run_all, rounds=1, iterations=1)

    emit("")
    emit(render_table(
        [{"classifier": "plain 2-layer FNN", "test accuracy": plain_acc},
         {"classifier": "residual FNN (§VIII-A)", "test accuracy": resnet_acc},
         {"classifier": "delta", "test accuracy": resnet_acc - plain_acc}],
        title="§VIII-A — classifier architecture ablation "
              "(paper: ResNet gains ~2%)",
    ))
    # The residual variant should not be worse; the paper's ~2% gain is
    # within noise on this scale, so assert non-regression plus ceiling.
    assert resnet_acc > plain_acc - 0.02

    recorder = ExperimentRecorder("ablation_classifier")
    recorder.add("plain", float(plain_acc))
    recorder.add("residual", float(resnet_acc))
    recorder.save()
