"""Ablation — word2vec output objectives: negative sampling vs HS.

The paper's implementations use skip-gram with negative sampling
(§IV-A.2); hierarchical softmax is word2vec's other output layer and
has a different hardware character: O(log V) dependent dot products per
pair along a Huffman path instead of K independent negatives.  This
ablation compares downstream quality, trainer throughput, and the
per-pair work implied by each objective on the same corpus.
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import (
    BatchedHsTrainer,
    BatchedSgnsTrainer,
    HuffmanTree,
    SgnsConfig,
    Vocabulary,
)
from repro.embedding.embeddings import NodeEmbeddings
from repro.graph import TemporalGraph
from repro.tasks import LinkPredictionTask
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_ablation_w2v_objective(benchmark, email_edges):
    graph = TemporalGraph.from_edge_list(email_edges.with_reverse_edges())
    corpus = TemporalWalkEngine(graph).run(WalkConfig(), seed=1)
    task = LinkPredictionTask(LinkPredictionConfig(
        training=TrainSettings(epochs=15, learning_rate=0.05)))

    def train_sgns():
        trainer = BatchedSgnsTrainer(SgnsConfig(dim=8, epochs=5),
                                     batch_sentences=1024)
        model = trainer.train(corpus, graph.num_nodes, seed=2)
        return NodeEmbeddings(model.w_in), trainer.last_stats

    def train_hs():
        # HS needs a tighter per-row cap: the root inner rows appear in
        # every pair of a batch and overheat under the SGNS defaults.
        trainer = BatchedHsTrainer(
            SgnsConfig(dim=8, epochs=8, learning_rate=0.05, update_cap=32),
            batch_sentences=64,
        )
        model = trainer.train(corpus, graph.num_nodes, seed=2)
        return NodeEmbeddings(model.w_in), trainer.last_stats

    benchmark.pedantic(train_sgns, rounds=1, iterations=1)

    vocab = Vocabulary.from_corpus(corpus, graph.num_nodes)
    tree = HuffmanTree(vocab.counts)
    mean_code = tree.mean_code_length(vocab.counts)

    rows = []
    results = {}
    for name, trainer_fn, rows_per_pair in (
        ("negative sampling", train_sgns, 2 + 5),
        ("hierarchical softmax", train_hs, 1 + mean_code),
    ):
        embeddings, stats = trainer_fn()
        auc = task.run(embeddings, email_edges, seed=3).auc
        results[name] = auc
        rows.append({
            "objective": name,
            "lp auc": auc,
            "pairs/s": stats.pairs_trained / max(stats.wall_seconds, 1e-9),
            "rows touched/pair": rows_per_pair,
        })
    emit("")
    emit(render_table(rows, title="word2vec objective ablation "
                                  "(ia-email shaped)"))
    emit(f"frequency-weighted Huffman code length: {mean_code:.2f} "
         f"(vs log2(V) = {np.log2(graph.num_nodes):.2f})")

    # Both objectives produce usable embeddings; SGNS (the paper's
    # choice) stays competitive under comparable budgets.
    assert results["negative sampling"] > 0.85
    assert results["hierarchical softmax"] > 0.85
    assert (results["negative sampling"]
            >= results["hierarchical softmax"] - 0.05)
    # Huffman coding beats the balanced-tree bound.
    assert mean_code < np.log2(graph.num_nodes) + 1.0

    recorder = ExperimentRecorder("ablation_w2v_objective")
    recorder.add("results", results)
    recorder.add("mean_code_length", mean_code)
    recorder.save()
