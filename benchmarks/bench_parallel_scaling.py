"""Measured process-parallel scaling of the walk and word2vec phases.

Unlike the other figure benchmarks, this one runs the *real*
multiprocess execution layer (:mod:`repro.parallel`) and records
wall-clock speedups, giving :mod:`repro.hwmodel.threads` a measured
curve to validate its analytic scheduler against
(:func:`repro.hwmodel.load_measured_curve` /
:func:`repro.hwmodel.compare_to_measured`).

Speedup on this host is bounded by its core count: the JSON record
carries ``cpu_count`` so downstream comparisons can tell "the layer
does not scale" apart from "the machine has one core".  Process workers
also pay fork + shared-memory + pickling overheads the paper's OpenMP
threads do not, so small inputs under-report the scaling the layer
reaches on server-sized graphs.
"""

import os
import time

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.graph import TemporalGraph
from repro.hwmodel import compare_to_measured, model_measured_gap
from repro.parallel import ParallelSgnsTrainer, run_parallel_walks
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

WORKER_COUNTS = [1, 2, 4]


def _cores_available() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_parallel_scaling(benchmark, stackoverflow_edges):
    graph = TemporalGraph.from_edge_list(
        stackoverflow_edges.with_reverse_edges()
    )
    walk_config = WalkConfig(num_walks_per_node=6, max_walk_length=40)
    sgns = SgnsConfig(dim=16, epochs=1)

    # Serial baselines (the exact engines workers=1 delegates to).
    def run_serial():
        engine = TemporalWalkEngine(graph)
        t0 = time.perf_counter()
        corpus = engine.run(walk_config, seed=1)
        walk_seconds = time.perf_counter() - t0
        trainer = BatchedSgnsTrainer(sgns, batch_sentences=1024)
        t0 = time.perf_counter()
        trainer.train(corpus, graph.num_nodes, seed=2)
        w2v_seconds = time.perf_counter() - t0
        return corpus, engine.last_stats, walk_seconds, w2v_seconds

    corpus, walk_stats, serial_walk, serial_w2v = benchmark.pedantic(
        run_serial, rounds=1, iterations=1
    )

    walk_seconds: dict[int, float] = {}
    w2v_seconds: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        par_corpus, _ = run_parallel_walks(
            graph, walk_config, workers=workers, seed=1
        )
        walk_seconds[workers] = time.perf_counter() - t0
        assert par_corpus.num_walks == corpus.num_walks

        trainer = ParallelSgnsTrainer(sgns, workers=workers,
                                      batch_sentences=1024)
        t0 = time.perf_counter()
        model = trainer.train(corpus, graph.num_nodes, seed=2)
        w2v_seconds[workers] = time.perf_counter() - t0
        assert np.isfinite(model.w_in).all()

    walk_speedup = {w: serial_walk / t for w, t in walk_seconds.items()}
    w2v_speedup = {w: serial_w2v / t for w, t in w2v_seconds.items()}

    cores = _cores_available()
    rows = [
        {
            "workers": w,
            "walk s": walk_seconds[w],
            "walk speedup": walk_speedup[w],
            "w2v s": w2v_seconds[w],
            "w2v speedup": w2v_speedup[w],
        }
        for w in WORKER_COUNTS
    ]
    emit("")
    emit(render_table(
        rows,
        title=f"Measured multiprocess scaling ({cores} cores available; "
              f"serial walk {serial_walk:.2f}s, w2v {serial_w2v:.2f}s)",
    ))

    # Line the analytic Fig. 10 scheduler up against the measurement.
    comparison = compare_to_measured(
        walk_speedup, walk_stats.work_per_start_node.astype(float) + 1.0
    )
    gap = model_measured_gap(comparison)
    emit(render_table(
        comparison,
        title="Analytic scheduler vs measured walk speedup "
              f"(mean |rel err| = {gap:.2f})",
    ))

    recorder = ExperimentRecorder("parallel_scaling")
    recorder.add("cpu_count", cores)
    recorder.add("graph", {"nodes": graph.num_nodes, "edges": graph.num_edges})
    recorder.add("serial_walk_seconds", serial_walk)
    recorder.add("serial_w2v_seconds", serial_w2v)
    recorder.add("walk_seconds", walk_seconds)
    recorder.add("w2v_seconds", w2v_seconds)
    recorder.add("walk_speedup", walk_speedup)
    recorder.add("w2v_speedup", w2v_speedup)
    recorder.add("model_vs_measured", comparison)
    recorder.add("model_measured_gap", gap)
    path = recorder.save()
    emit(f"wrote {path}")

    # Sanity: everything finite, workers=1 pays no parallel overhead
    # beyond noise (it runs the serial engine in-process).
    assert all(np.isfinite(v) and v > 0 for v in walk_speedup.values())
    assert all(np.isfinite(v) and v > 0 for v in w2v_speedup.values())
    assert walk_speedup[1] > 0.5
    # Real speedup needs real cores: only assert scaling when the host
    # can physically provide it (CI runners / servers, not 1-core boxes).
    if cores >= 4:
        assert walk_speedup[4] > 1.0
