"""Ablation — CTDNE temporal walks vs the snapshot model (§II-B).

The paper dismisses snapshot-sequence methods because each snapshot is
"analyzed without the temporal information" inside it.  On the
drifting-community graph, three representations of the same dynamics
compete through the identical classifier: temporal walks (CTDNE),
recency-weighted cumulative-snapshot embeddings, and one static graph.
"""

import numpy as np

from repro.baselines import run_static_walks, snapshot_embeddings
from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph, generators
from repro.tasks import NodeClassificationTask
from repro.tasks.node_classification import NodeClassificationConfig
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_ablation_snapshot_model(benchmark):
    dataset = generators.drifting_temporal_sbm(
        num_nodes=400, num_classes=4, relabel_fraction=0.5, seed=9
    )
    graph = TemporalGraph.from_edge_list(dataset.edges.with_reverse_edges())
    walk_config = WalkConfig(num_walks_per_node=10, max_walk_length=6,
                             bias="softmax-late")
    sgns = SgnsConfig(dim=8, epochs=5)
    nc = NodeClassificationConfig(
        training=TrainSettings(epochs=25, learning_rate=0.05))

    def classify(embeddings, seed):
        return NodeClassificationTask(nc).run(
            embeddings, dataset.labels, seed=seed
        ).accuracy

    def run_all():
        seeds = (3, 13, 23)
        temporal, snapshot, static = [], [], []
        for seed in seeds:
            corpus = TemporalWalkEngine(graph).run(walk_config, seed=seed)
            emb, _ = train_embeddings(corpus, graph.num_nodes, sgns,
                                      seed=seed)
            temporal.append(classify(emb, seed))

            snap_emb = snapshot_embeddings(
                graph, num_snapshots=4, walk_config=walk_config,
                sgns_config=sgns, seed=seed,
            )
            snapshot.append(classify(snap_emb, seed))

            static_corpus = run_static_walks(graph, walk_config, seed=seed)
            emb_s, _ = train_embeddings(static_corpus, graph.num_nodes,
                                        sgns, seed=seed)
            static.append(classify(emb_s, seed))
        return (float(np.mean(temporal)), float(np.mean(snapshot)),
                float(np.mean(static)))

    temporal_acc, snapshot_acc, static_acc = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    chance = float(np.bincount(dataset.labels).max() / len(dataset.labels))
    rows = [
        {"model": "temporal walks (CTDNE)", "accuracy": temporal_acc},
        {"model": "snapshot model (recency-weighted)",
         "accuracy": snapshot_acc},
        {"model": "single static graph (DeepWalk)", "accuracy": static_acc},
        {"model": "majority chance", "accuracy": chance},
    ]
    emit("")
    emit(render_table(rows, title="Temporal vs snapshot vs static on "
                                  "drifting communities"))
    # The paper's ordering: finest temporal granularity wins; snapshots
    # beat a single static graph but lose to CTDNE.
    assert temporal_acc > static_acc + 0.05
    assert snapshot_acc > static_acc - 0.02
    assert temporal_acc >= snapshot_acc - 0.03

    recorder = ExperimentRecorder("ablation_snapshot_model")
    recorder.add("temporal", temporal_acc)
    recorder.add("snapshot", snapshot_acc)
    recorder.add("static", static_acc)
    recorder.save()
