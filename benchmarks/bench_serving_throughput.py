"""Extension bench — online serving throughput: single vs batched vs cached.

The serving layer (:mod:`repro.serving`) claims that micro-batching
amortizes per-request overhead the way Fig. 5's sentence batching
amortizes kernel launches, and that the generation-keyed top-k cache
eliminates GEMM work entirely on warm hits.  This bench measures both
claims with the closed-loop load generator against the same embedding
snapshot:

- ``single``  — ``max_batch_size=1``, no cache: every request is its own
  batch (the degenerate baseline);
- ``batched`` — micro-batching on, no cache: isolates the batching win;
- ``cached``  — micro-batching + LRU top-k cache under a hot-skewed
  workload: adds the memoization win.

Reported per config: achieved QPS, client-side latency percentiles,
mean flush size, and GEMM rows evaluated.  Saved to
``bench_results/serving_throughput.json``.
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig
from repro.graph import DynamicTemporalGraph, generators
from repro.observability import Recorder, use_recorder
from repro.serving import (
    EmbeddingStore,
    ServingConfig,
    ServingFrontend,
    run_load,
)
from repro.tasks.incremental import IncrementalEmbedder
from repro.walk import WalkConfig

from conftest import emit

NUM_NODES = 5_000
NUM_EDGES = 50_000
CLIENTS = 16
REQUESTS = 8_000

SINGLE = ServingConfig(max_batch_size=1, cache_size=0)
BATCHED = ServingConfig(max_batch_size=16, max_delay=0.002, cache_size=0)
CACHED = ServingConfig(max_batch_size=16, max_delay=0.002, cache_size=4096)


def _build_store() -> EmbeddingStore:
    edges = generators.erdos_renyi_temporal(NUM_NODES, NUM_EDGES, seed=71)
    dynamic = DynamicTemporalGraph(edges.sorted_by_time())
    store = EmbeddingStore()
    IncrementalEmbedder(
        dynamic,
        walk_config=WalkConfig(num_walks_per_node=3, max_walk_length=6),
        sgns_config=SgnsConfig(dim=16, epochs=1),
        seed=72,
        store=store,
    ).rebuild()
    return store


def _drive(store, config, topk_fraction, num_requests=REQUESTS):
    """One load run under an isolated recorder; returns (report, recorder)."""
    recorder = Recorder()
    with use_recorder(recorder):
        with ServingFrontend(store, config) as frontend:
            report = run_load(
                frontend,
                num_requests=num_requests,
                clients=CLIENTS,
                topk_fraction=topk_fraction,
                seed=73,
            )
    return report, recorder


def _row(name, workload, report, recorder):
    batch_hist = recorder.histograms.get("serving.batch.size")
    return {
        "config": name,
        "workload": workload,
        "qps": round(report.qps, 1),
        "p50 ms": round(report.p50_ms, 3),
        "p99 ms": round(report.p99_ms, 3),
        "mean batch": round(batch_hist.mean, 2) if batch_hist else 0.0,
        "gemm rows": int(
            recorder.counters.get("serving.index.gemm_rows", 0)
        ),
        "cache hits": int(
            recorder.counters.get("serving.index.cache_hits", 0)
        ),
    }


def test_serving_throughput(benchmark):
    store = _build_store()
    benchmark.pedantic(
        lambda: _drive(store, BATCHED, 0.0, num_requests=500),
        rounds=1, iterations=1,
    )

    # Batching claim: a score-only workload (pure per-request overhead,
    # negligible math) is where micro-batching matters most.
    single_score, single_rec = _drive(store, SINGLE, 0.0)
    batched_score, batched_rec = _drive(store, BATCHED, 0.0)

    # Caching claim: a top-k-heavy hot-skewed workload is where the LRU
    # result cache matters most.
    batched_topk, batched_topk_rec = _drive(store, BATCHED, 1.0)
    cached_topk, cached_topk_rec = _drive(store, CACHED, 1.0)

    rows = [
        _row("single", "score-only", single_score, single_rec),
        _row("batched", "score-only", batched_score, batched_rec),
        _row("batched", "top-k hot", batched_topk, batched_topk_rec),
        _row("cached", "top-k hot", cached_topk, cached_topk_rec),
    ]
    emit("")
    emit(render_table(
        rows, title="Online serving: micro-batching and top-k caching"
    ))

    # Micro-batched throughput must beat single-request by >= 3x.
    speedup = batched_score.qps / single_score.qps
    emit(f"micro-batch speedup (score-only): {speedup:.2f}x")
    assert speedup >= 3.0, (
        f"micro-batching speedup {speedup:.2f}x < 3x "
        f"({batched_score.qps:.0f} vs {single_score.qps:.0f} qps)"
    )
    # Batching actually happened, and the cache actually hit.
    batch_hist = batched_rec.histograms["serving.batch.size"]
    assert batch_hist.mean > 2.0
    assert cached_topk_rec.counters["serving.index.cache_hits"] > 0
    assert (
        cached_topk_rec.counters.get("serving.index.gemm_rows", 0)
        < batched_topk_rec.counters.get("serving.index.gemm_rows", 0)
    )
    assert single_score.errors == 0 and batched_score.errors == 0
    assert batched_topk.errors == 0 and cached_topk.errors == 0

    # Warm top-k hit: repeat query adds exactly zero GEMM rows.
    warm_recorder = Recorder()
    with use_recorder(warm_recorder):
        with ServingFrontend(store, CACHED) as frontend:
            cold_ids, cold_scores = frontend.top_k(0, 10)
            rows_after_cold = warm_recorder.counters["serving.index.gemm_rows"]
            warm_ids, warm_scores = frontend.top_k(0, 10)
            rows_after_warm = warm_recorder.counters["serving.index.gemm_rows"]
    assert rows_after_warm == rows_after_cold
    assert warm_recorder.counters["serving.index.cache_hits"] == 1
    assert np.array_equal(cold_ids, warm_ids)
    assert np.array_equal(cold_scores, warm_scores)

    recorder = ExperimentRecorder("serving_throughput")
    for row in rows:
        recorder.add(f"{row['config']}/{row['workload']}", row)
    recorder.add("speedup", {"micro_batch_score_only": speedup})
    recorder.save()
