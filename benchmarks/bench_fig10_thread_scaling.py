"""Fig. 10 — CPU thread scaling of the walk and word2vec kernels.

Paper (stackoverflow): both kernels scale reasonably with work-stealing
threads despite irregularity; beyond 64 threads there is no further
improvement; the GPU point lands near 32 CPU threads for the walk kernel
and far above the CPU for word2vec.

The scheduler simulator replays the *measured* per-vertex (walk) and
per-sentence (word2vec) work distributions under static and dynamic
scheduling; GPU points come from the GPU kernel models on the same
measured statistics.
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.graph import TemporalGraph
from repro.hwmodel import scaling_curve, walk_kernel, word2vec_kernel
from repro.hwmodel.gpu import cpu_time_seconds
from repro.hwmodel.profiler import profile_random_walk, profile_word2vec
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

THREADS = [1, 2, 4, 8, 16, 32, 64, 128, 256]


def test_fig10_thread_scaling(benchmark, stackoverflow_edges):
    graph = TemporalGraph.from_edge_list(
        stackoverflow_edges.with_reverse_edges()
    )

    def run_kernels():
        engine = TemporalWalkEngine(graph)
        corpus = engine.run(WalkConfig(), seed=1)
        sgns = SgnsConfig(dim=8, epochs=1)
        trainer = BatchedSgnsTrainer(sgns, batch_sentences=2048)
        trainer.train(corpus, graph.num_nodes, seed=2)
        return engine.last_stats, corpus, trainer.last_stats, sgns

    walk_stats, corpus, w2v_stats, sgns = benchmark.pedantic(
        run_kernels, rounds=1, iterations=1
    )

    # Per-task work distributions measured from the run.
    walk_work = walk_stats.work_per_start_node.astype(float) + 1.0
    sentence_lengths = corpus.lengths[corpus.lengths >= 2].astype(float)
    w2v_work = sentence_lengths * (1 + sgns.negatives)

    curves = {
        "rwalk dynamic": scaling_curve(walk_work, THREADS, "dynamic"),
        "rwalk static": scaling_curve(walk_work, THREADS, "static"),
        "word2vec dynamic": scaling_curve(w2v_work, THREADS, "dynamic"),
    }
    rows = []
    for threads in THREADS:
        rows.append({
            "threads": threads,
            **{name: curve[threads] for name, curve in curves.items()},
        })
    emit("")
    emit(render_table(rows, title="Fig. 10 — simulated thread scaling "
                                  "(stackoverflow shaped)"))

    dyn = curves["rwalk dynamic"]
    # Reasonable scaling to 64 threads...
    assert dyn[8] > 5
    assert dyn[64] > dyn[8]
    # ...but no further improvement past 64 (the paper's knee).
    assert dyn[256] <= dyn[64] * 1.05

    # GPU-vs-CPU points (speedup over 1 CPU thread, modeled).
    walk_profile = profile_random_walk(walk_stats)
    w2v_profile = profile_word2vec(w2v_stats, sgns)
    gpu_points = {}
    for name, profile, kernel in (
        ("rwalk", walk_profile, walk_kernel(walk_stats, graph)),
        ("word2vec", w2v_profile,
         word2vec_kernel(w2v_stats, sgns, graph.num_nodes, 2048)),
    ):
        cpu_serial = cpu_time_seconds(
            profile.mix.total, profile.mix.memory * 8.0, threads=1
        )
        gpu_points[name] = cpu_serial / kernel.report().time_seconds
    emit("")
    emit(render_table(
        [{"kernel": k, "GPU speedup over 1 CPU thread": v}
         for k, v in gpu_points.items()],
        title="GPU points (modeled): paper places rwalk GPU ~ 32 CPU "
              "threads, word2vec GPU far above CPU",
    ))
    # The paper's relational claim: GPU advantage is much larger for
    # word2vec than for the walk kernel.
    assert gpu_points["word2vec"] > gpu_points["rwalk"]

    recorder = ExperimentRecorder("fig10_thread_scaling")
    for name, curve in curves.items():
        recorder.add(name, {int(k): float(v) for k, v in curve.items()})
    recorder.add("gpu_points", gpu_points)
    recorder.save()
