"""Ablation — temporal walks vs static DeepWalk on drifting communities.

The paper's premise (§I): modeling a dynamic graph as static "would
inevitably incur information loss and performance deterioration of
downstream predictive tasks".  On a graph whose community structure
drifts over time (labels = final communities), the identical embedding +
classifier stack runs on (a) temporally valid walks with a late-biased
softmax and (b) static DeepWalk walks that blend stale edges.
"""

import numpy as np

from repro.baselines import run_static_walks
from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph, generators
from repro.tasks import NodeClassificationTask
from repro.tasks.node_classification import NodeClassificationConfig
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_ablation_temporal_vs_static(benchmark):
    dataset = generators.drifting_temporal_sbm(
        num_nodes=400, num_classes=4, relabel_fraction=0.5, seed=1
    )
    graph = TemporalGraph.from_edge_list(dataset.edges.with_reverse_edges())
    walk_config = WalkConfig(
        num_walks_per_node=10, max_walk_length=6, bias="softmax-late"
    )
    sgns = SgnsConfig(dim=8, epochs=5)
    nc = NodeClassificationConfig(
        training=TrainSettings(epochs=25, learning_rate=0.05)
    )

    def accuracy(corpus, seed):
        embeddings, _ = train_embeddings(corpus, graph.num_nodes, sgns,
                                         seed=seed)
        return NodeClassificationTask(nc).run(
            embeddings, dataset.labels, seed=seed + 1
        ).accuracy

    def run_all():
        temporal, static = [], []
        for seed in (5, 15, 25):
            temporal.append(accuracy(
                TemporalWalkEngine(graph).run(walk_config, seed=seed), seed))
            static.append(accuracy(
                run_static_walks(graph, walk_config, seed=seed), seed))
        return float(np.mean(temporal)), float(np.mean(static))

    temporal_acc, static_acc = benchmark.pedantic(run_all, rounds=1,
                                                  iterations=1)
    chance = float(np.bincount(dataset.labels).max() / len(dataset.labels))
    emit("")
    emit(render_table(
        [{"walks": "temporal (CTDNE)", "accuracy": temporal_acc},
         {"walks": "static (DeepWalk)", "accuracy": static_acc},
         {"walks": "majority chance", "accuracy": chance}],
        title="Temporal vs static walks on drifting communities",
    ))
    assert temporal_acc > static_acc + 0.05
    assert temporal_acc > chance + 0.1

    recorder = ExperimentRecorder("ablation_temporal_vs_static")
    recorder.add("temporal", temporal_acc)
    recorder.add("static", static_acc)
    recorder.add("chance", chance)
    recorder.save()
