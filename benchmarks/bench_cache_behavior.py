"""Measured cache behaviour per workload (Fig. 3's L2 column, honestly).

The Fig. 3 comparison includes L2 hit rates per workload; the GPU model
estimates them analytically, but the cache simulator can *measure* them:
each kernel's real address trace (built from the executed walks, the
embedding-row touches, the BFS visit order, and GEMM streaming) replays
through the same two-level hierarchy.  The expected ordering — streaming
GEMM caches best, CSR-local walk next, scattered embedding updates and
visited-flag-probing BFS worst — is asserted, not assumed.
"""

from repro.baselines import bfs
from repro.bench import ExperimentRecorder, render_table
from repro.hwmodel.cache import (
    CacheConfig,
    CacheHierarchy,
    bfs_trace,
    embedding_trace,
    streaming_trace,
    walk_trace,
)
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

L1 = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=8)
L2 = CacheConfig(size_bytes=1024 * 1024, line_bytes=64, ways=16)
LIMIT = 120_000


def test_cache_behavior(benchmark, wiki_graph):
    corpus = TemporalWalkEngine(wiki_graph).run(
        WalkConfig(num_walks_per_node=4, max_walk_length=6), seed=1
    )
    bfs_result = bfs(wiki_graph, 0)

    traces = {
        "gemm (streaming)": streaming_trace(
            256 * 1024, passes=4, limit=LIMIT),
        "rwalk (CSR scan)": walk_trace(corpus, wiki_graph, limit=LIMIT),
        "word2vec (row gather)": embedding_trace(
            corpus, dim=8, pad_to_line=False, limit=LIMIT),
        "bfs (flag probes)": bfs_trace(wiki_graph, bfs_result, limit=LIMIT),
    }

    def replay_all():
        out = {}
        for name, trace in traces.items():
            hierarchy = CacheHierarchy(L1, L2)
            out[name] = hierarchy.access_many(trace)
        return out

    results = benchmark.pedantic(replay_all, rounds=1, iterations=1)

    rows = [
        {"workload": name,
         "l1 hit": res["l1_hit_rate"],
         "l2 hit": res["l2_hit_rate"],
         "dram accesses": int(res["dram_accesses"])}
        for name, res in results.items()
    ]
    emit("")
    emit(render_table(rows, title="Measured cache behaviour "
                                  "(32 KiB L1 / 1 MiB L2)"))

    l1 = {name: res["l1_hit_rate"] for name, res in results.items()}
    # Streaming GEMM re-use beats every irregular kernel at L1.
    assert l1["gemm (streaming)"] > l1["bfs (flag probes)"]
    assert l1["gemm (streaming)"] > l1["word2vec (row gather)"]
    # The walk's per-vertex slice scan has spatial locality BFS's
    # visited-flag probing lacks (§VII-B's "large portion of the work
    # performed for a single vertex exhibits spatial locality").
    assert l1["rwalk (CSR scan)"] > l1["bfs (flag probes)"]

    recorder = ExperimentRecorder("cache_behavior")
    for name, res in results.items():
        recorder.add(name, res)
    recorder.save()
