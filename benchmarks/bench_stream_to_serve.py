"""Extension bench — end-to-end stream→serve pipeline + control plane.

PR 10 closes the deployment loop: edge batches flow through the bounded
ingest queue into the :class:`~repro.stream.controller.StreamController`
(WAL, apply, policy-driven incremental refresh), every refreshed
snapshot fans out through :meth:`~repro.serving.sharding
.ShardedPublisher.attach` to the replicated sharded tier, and the
:class:`~repro.serving.controlplane.ControlPlane` supervises the
workers.  This bench measures what that loop costs and what the
supervisor buys:

1. **Ingest-to-servable latency** — wall-clock from ``queue.put`` of a
   refresh-triggering batch to the routed tier serving the bumped
   version (walk + SGNS refresh dominates; the publish fan-out tax is
   isolated separately).
2. **Publish cost vs replication** — sharded snapshot install seconds
   at R=1 vs R=2 (two installs per shard slice instead of one, same
   version flip).
3. **Skew-triggered rebalance** — a hot contiguous id range drives all
   load to one shard of a ``range`` plan; the control plane's skew
   watch (hysteresis + cooldown) must fire a live rebalance to
   ``hash``, after which the tier still answers bit-identically.
4. **Recovery after kill** — killing one replica of every shard at
   R=2 under closed-loop load: zero errors, zero degraded queries, the
   control plane respawns every slot, and the measured
   kill-to-recovered wall seconds are recorded.

Saved to ``bench_results/stream_to_serve.json``.
"""

import json
import threading
import time

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig
from repro.graph import DynamicTemporalGraph, generators
from repro.observability import Recorder, use_recorder
from repro.serving import (
    ControlPlane,
    ControlPlaneConfig,
    EmbeddingStore,
    RecommendationIndex,
    ShardPlan,
    ShardedFrontend,
    ShardedPublisher,
    ShardedServingConfig,
    run_load,
)
from repro.stream import EveryNEdges, IngestQueue, StreamController
from repro.tasks.incremental import IncrementalEmbedder
from repro.walk import WalkConfig

from conftest import emit

NUM_NODES = 600
NUM_EDGES = 6_000
DIM = 8
LIVE_BATCHES = 4
REFRESH_EDGES = 200

PUBLISH_NODES = 20_000
PUBLISH_DIM = 64
PUBLISH_REPS = 5


def _recorder_with_existing() -> ExperimentRecorder:
    """``stream_to_serve`` recorder pre-seeded with the saved record
    (sections accumulate across test functions in any run order)."""
    recorder = ExperimentRecorder("stream_to_serve")
    path = recorder.results_dir / "stream_to_serve.json"
    if path.exists():
        with open(path, encoding="utf-8") as handle:
            recorder.data.update(json.load(handle))
    return recorder


def _oracle_check(frontend, matrix: np.ndarray, nodes, k: int = 10) -> None:
    store = EmbeddingStore()
    store.publish(matrix, generation=0)
    oracle = RecommendationIndex(store, cache_size=0)
    for node in nodes:
        ids, scores = frontend.top_k(int(node), k)
        exp_ids, exp_scores = oracle.top_k(int(node), k)
        np.testing.assert_array_equal(ids, exp_ids)
        np.testing.assert_array_equal(scores, exp_scores)


def _pipeline_parts(seed: int = 90):
    """Initial graph + embedder + live batches for the stream sections."""
    edges = generators.erdos_renyi_temporal(NUM_NODES, NUM_EDGES, seed=seed)
    ordered = edges.sorted_by_time()
    cut = int(0.6 * len(ordered))
    initial = ordered.take(np.arange(cut))
    step = max(1, (len(ordered) - cut) // LIVE_BATCHES)
    batches = []
    for i in range(LIVE_BATCHES):
        stop = (cut + (i + 1) * step if i < LIVE_BATCHES - 1
                else len(ordered))
        if stop > cut + i * step:
            batches.append(ordered.take(np.arange(cut + i * step, stop)))
    dynamic = DynamicTemporalGraph()
    dynamic.append(initial)
    store = EmbeddingStore()
    embedder = IncrementalEmbedder(
        dynamic,
        walk_config=WalkConfig(num_walks_per_node=2, max_walk_length=4),
        sgns_config=SgnsConfig(dim=DIM, epochs=1),
        seed=seed,
        store=store,
    )
    embedder.rebuild()
    return dynamic, store, embedder, batches


def test_ingest_to_servable_latency(benchmark):
    """Wall-clock from enqueuing a refresh-triggering batch to the
    sharded tier serving the bumped version."""
    dynamic, store, embedder, batches = _pipeline_parts()
    recorder = Recorder()
    latencies = []
    with use_recorder(recorder):
        queue = IngestQueue(max_edges=50_000, policy="block")
        controller = StreamController(
            dynamic, queue, embedder=embedder,
            policy=EveryNEdges(REFRESH_EDGES), final_refresh=False)
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        with ShardedFrontend(ShardPlan(2, "hash"), config) as frontend:
            publisher = ShardedPublisher(frontend)
            publisher.attach(store)

            def stream_all() -> None:
                with controller:
                    for batch in batches:
                        before = frontend.version
                        t0 = time.perf_counter()
                        queue.put(batch)
                        deadline = t0 + 60.0
                        while (frontend.version == before
                               and time.perf_counter() < deadline):
                            time.sleep(0.002)
                        assert frontend.version > before, (
                            "refresh never reached the tier")
                        latencies.append(time.perf_counter() - t0)

            benchmark.pedantic(stream_all, rounds=1, iterations=1)
            assert frontend.version == len(batches) + 1
            publisher.detach()
    assert len(latencies) == len(batches)
    mean_s = float(np.mean(latencies))
    worst_s = float(np.max(latencies))
    publishes = int(recorder.counters.get("serving.shard.publishes", 0))
    assert publishes >= len(batches)
    emit("")
    emit(render_table(
        [{
            "live batches": len(batches),
            "refreshes": len(latencies),
            "mean s": round(mean_s, 3),
            "worst s": round(worst_s, 3),
            "publishes": publishes,
        }],
        title="Ingest-to-servable latency (stream -> refresh -> "
              "sharded publish -> routed)",
    ))

    saved = _recorder_with_existing()
    saved.add("ingest_to_servable", {
        "live_batches": len(batches),
        "refresh_every_edges": REFRESH_EDGES,
        "mean_seconds": round(mean_s, 4),
        "worst_seconds": round(worst_s, 4),
        "publishes": publishes,
    })
    saved.save()


def test_publish_cost_vs_replication(benchmark):
    """Sharded snapshot install seconds at R=1 vs R=2."""
    rng = np.random.default_rng(91)
    matrix = rng.standard_normal((PUBLISH_NODES, PUBLISH_DIM))
    results = {}
    for replicas in (1, 2):
        config = ShardedServingConfig(replication_factor=replicas,
                                      cache_size=0)
        with ShardedFrontend(ShardPlan(2, "hash"), config) as frontend:
            publisher = ShardedPublisher(frontend)
            publisher.publish(matrix, generation=0)  # warm the tier
            seconds = []
            for rep in range(PUBLISH_REPS):
                t0 = time.perf_counter()
                publisher.publish(matrix, generation=rep + 1)
                seconds.append(time.perf_counter() - t0)
            results[replicas] = float(np.mean(seconds))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tax = results[2] / results[1] if results[1] > 0 else 0.0
    emit("")
    emit(render_table(
        [{"replicas": r, "mean publish s": round(s, 4)}
         for r, s in sorted(results.items())],
        title=f"Publish cost vs replication ({PUBLISH_NODES} nodes, "
              f"2 shards, {PUBLISH_REPS} reps)",
    ))
    emit(f"R=2 publish cost over R=1: {tax:.2f}x "
         f"(two installs per slice, same version flip)")

    saved = _recorder_with_existing()
    saved.add("publish_cost", {
        "nodes": PUBLISH_NODES,
        "dim": PUBLISH_DIM,
        "shards": 2,
        "r1_mean_seconds": round(results[1], 4),
        "r2_mean_seconds": round(results[2], 4),
        "r2_over_r1": round(tax, 3),
    })
    saved.save()


def test_skew_triggered_rebalance(benchmark):
    """A hot contiguous id range on a ``range`` plan must trip the
    control plane's skew watch into a live rebalance to ``hash``."""
    rng = np.random.default_rng(92)
    matrix = rng.standard_normal((4_000, 32))
    # score_link requests route to the *owning* shard (top-k scatters
    # to every shard, so it can never skew the per-shard request
    # counters); pairs inside [0, 200) all land on shard 0 of the
    # range plan.
    hot_pairs = rng.integers(0, 200, size=(200, 2))
    config = ShardedServingConfig(cache_size=0, default_k=10)
    recorder = Recorder()
    with use_recorder(recorder):
        with ShardedFrontend(ShardPlan(2, "range"), config) as frontend:
            ShardedPublisher(frontend).publish(matrix, generation=0)
            plane = ControlPlane(frontend, ControlPlaneConfig(
                skew_threshold=1.5, skew_observations=2,
                min_requests=50, rebalance_cooldown=0.0))
            plane.step()  # baseline sweep
            ratios = []
            rebalanced_after = None
            t0 = time.perf_counter()

            def drive_hot_burst() -> None:
                for src, dst in hot_pairs:
                    frontend.score_link(int(src), int(dst))

            benchmark.pedantic(drive_hot_burst, rounds=1, iterations=1)
            for burst in range(4):
                report = plane.step()
                ratios.append(report.skew_ratio)
                if report.rebalanced_to is not None:
                    rebalanced_after = burst + 1
                    break
                drive_hot_burst()
            rebalance_s = time.perf_counter() - t0
            assert rebalanced_after is not None, "skew watch never fired"
            assert frontend.plan == ShardPlan(2, "hash")
            _oracle_check(frontend, matrix, (5, 150, 3_999))
    assert recorder.counters["serving.controlplane.rebalance_decisions"] == 1
    assert recorder.counters["serving.shard.rebalance.count"] == 1
    emit("")
    emit(f"skew-triggered rebalance: hot range [0, 200) on a 2-shard "
         f"range plan — ratio {max(ratios):.2f} (threshold 1.5), "
         f"rebalanced to hash after {rebalanced_after} skewed sweeps, "
         f"{rebalance_s:.2f}s from first hot burst; answers stay "
         f"bit-identical")

    saved = _recorder_with_existing()
    saved.add("skew_rebalance", {
        "plan_before": "range:2",
        "plan_after": "hash:2",
        "max_skew_ratio": round(max(ratios), 3),
        "sweeps_to_rebalance": rebalanced_after,
        "seconds_from_first_burst": round(rebalance_s, 3),
    })
    saved.save()


def test_recovery_after_kill(benchmark):
    """Kill one replica of every shard at R=2 under load with the
    control plane supervising: zero errors, zero degraded queries,
    every slot respawned; records kill-to-recovered wall seconds."""
    rng = np.random.default_rng(93)
    matrix = rng.standard_normal((20_000, 64))
    plan = ShardPlan(2, "range")
    config = ShardedServingConfig(cache_size=0, default_k=10,
                                  replication_factor=2)
    recorder = Recorder()
    recovery = {}
    with use_recorder(recorder):
        with ShardedFrontend(plan, config) as frontend:
            ShardedPublisher(frontend).publish(matrix, generation=0)
            with ControlPlane(frontend,
                              ControlPlaneConfig(health_period=0.02)):

                def killer() -> None:
                    time.sleep(0.15)
                    t0 = time.perf_counter()
                    for shard in range(plan.num_shards):
                        frontend.kill_replica(shard, 0)
                    while frontend.alive_workers < 2 * plan.num_shards:
                        if time.perf_counter() - t0 > 30.0:
                            return
                        time.sleep(0.01)
                    recovery["seconds"] = time.perf_counter() - t0

                thread = threading.Thread(target=killer, daemon=True)
                thread.start()
                report = benchmark.pedantic(
                    lambda: run_load(frontend, num_requests=2_000,
                                     clients=8, topk_fraction=1.0,
                                     hot_fraction=0.0, seed=94),
                    rounds=1, iterations=1,
                )
                thread.join()
            assert "seconds" in recovery, "tier never fully recovered"
            assert frontend.alive_workers == 2 * plan.num_shards
            # The healed tier (respawned replicas included) answers
            # bit for bit: kill the survivors so only respawns serve.
            for shard in range(plan.num_shards):
                frontend.kill_replica(shard, 1)
            _oracle_check(frontend, matrix, (0, 9_999, 19_999))
    counters = recorder.counters
    respawns = int(counters.get("serving.controlplane.respawns", 0))
    degraded = int(counters.get("serving.shard.degraded_queries", 0))
    assert report.errors == 0
    assert degraded == 0
    assert respawns >= plan.num_shards
    emit("")
    emit(f"recovery after kill: one replica of each of "
         f"{plan.num_shards} shards killed mid-load — "
         f"{report.qps:.0f} qps, {report.errors} errors, {degraded} "
         f"degraded, {respawns} respawns, full replication back in "
         f"{recovery['seconds']:.2f}s")

    saved = _recorder_with_existing()
    saved.add("recovery_after_kill", {
        "shards": plan.num_shards,
        "replicas": 2,
        "killed_replicas": plan.num_shards,
        "qps": round(report.qps, 1),
        "errors": report.errors,
        "degraded_queries": degraded,
        "respawns": respawns,
        "recovery_seconds": round(recovery["seconds"], 3),
    })
    saved.save()
