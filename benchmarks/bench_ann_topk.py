"""Extension bench — IVF approximate top-k vs the brute-force oracle.

The exact :class:`~repro.serving.index.RecommendationIndex` scans every
row per query, so serving cost grows linearly with the store.  The IVF
index (:mod:`repro.serving.ann`) claims sub-linear queries at bounded
recall loss.  This bench measures that trade-off directly on synthetic
clustered embeddings (a gaussian mixture — the shape random-walk
embeddings of community-structured graphs actually take):

- ``10^5 nodes x 32 dims``: sweep ``nlist`` x ``nprobe``, reporting
  recall@10 against the exact oracle, single-query latency for both
  paths, build time, and index size.  The acceptance gate lives here:
  at least one swept config must reach recall@10 >= 0.95 at >= 5x
  query speedup.
- ``10^6 nodes x 16 dims``: one large config recorded (no gate) to
  show the scaling headroom on a single core.

Queries are timed one at a time (``m=1``) because that is the serving
fast path the micro-batcher falls back to under low concurrency; both
paths share the same blocked scorer, so the comparison isolates the
candidate-generation win.  Saved to ``bench_results/ann_topk.json``.
"""

import time

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.serving import (
    EmbeddingStore,
    IvfConfig,
    IvfIndex,
    RecommendationIndex,
)

from conftest import emit

SMALL_NODES = 100_000
SMALL_DIM = 32
LARGE_NODES = 1_000_000
LARGE_DIM = 16
K = 10
SMALL_QUERIES = 60
LARGE_QUERIES = 20

#: (nlist, nprobe) sweep at 10^5 nodes; None -> auto (~sqrt(n)).
SWEEP = [
    (128, 4),
    (256, 4),
    (256, 8),
    (256, 16),
    (None, 8),
]

REQUIRED_RECALL = 0.95
REQUIRED_SPEEDUP = 5.0


def _clustered(n: int, dim: int, centers: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    anchors = rng.standard_normal((centers, dim)) * 3.0
    return (anchors[rng.integers(0, centers, n)]
            + rng.standard_normal((n, dim)) * 0.6)


class _StaticManager:
    """Minimal manager stand-in handing one prebuilt index to the
    RecommendationIndex (skips the async builder for clean timing)."""

    def __init__(self, index: IvfIndex, config: IvfConfig) -> None:
        self._index = index
        self.config = config

    def index_for(self, snapshot):
        return self._index if self._index.version == snapshot.version else None


def _timed_queries(index: RecommendationIndex, nodes: np.ndarray,
                   mode: str) -> tuple[float, list[np.ndarray]]:
    """Mean seconds per single top-k query, plus the returned id lists."""
    index.top_k(int(nodes[0]), K, mode=mode)  # warmup
    answers = []
    start = time.perf_counter()
    for node in nodes:
        ids, _ = index.top_k(int(node), K, mode=mode)
        answers.append(ids)
    elapsed = time.perf_counter() - start
    return elapsed / len(nodes), answers


def _recall(exact: list[np.ndarray], approx: list[np.ndarray]) -> float:
    hits = total = 0
    for e, a in zip(exact, approx):
        hits += len(np.intersect1d(e, a))
        total += len(e)
    return hits / total


def _measure_config(store: EmbeddingStore, nodes: np.ndarray,
                    exact_s: float, exact_ids: list[np.ndarray],
                    nlist: int | None, nprobe: int) -> dict:
    config = IvfConfig(nlist=nlist, nprobe=nprobe, min_index_nodes=1)
    index = IvfIndex.build(store.snapshot(), config)
    ann = RecommendationIndex(store, cache_size=0,
                              ann=_StaticManager(index, config))
    ann_s, ann_ids = _timed_queries(ann, nodes, "ivf")
    return {
        "nlist": index.nlist,
        "nprobe": index.nprobe,
        "build s": round(index.build_seconds, 3),
        "index MB": round(index.nbytes / 1e6, 2),
        "exact ms": round(exact_s * 1e3, 3),
        "ann ms": round(ann_s * 1e3, 3),
        "speedup": round(exact_s / ann_s, 2),
        "recall@10": round(_recall(exact_ids, ann_ids), 4),
    }


def test_ann_topk(benchmark):
    recorder = ExperimentRecorder("ann_topk")
    rng = np.random.default_rng(11)

    # -- 10^5-node sweep ------------------------------------------------
    store = EmbeddingStore()
    store.publish(_clustered(SMALL_NODES, SMALL_DIM, centers=500, seed=12),
                  generation=0)
    exact = RecommendationIndex(store, cache_size=0)
    nodes = rng.integers(0, SMALL_NODES, size=SMALL_QUERIES)
    benchmark.pedantic(lambda: exact.top_k(int(nodes[0]), K), rounds=1,
                       iterations=1)
    exact_s, exact_ids = _timed_queries(exact, nodes, "exact")

    rows = [
        _measure_config(store, nodes, exact_s, exact_ids, nlist, nprobe)
        for nlist, nprobe in SWEEP
    ]
    emit("")
    emit(render_table(
        rows, title=f"IVF top-k vs brute-force oracle ({SMALL_NODES:,} "
        f"nodes x {SMALL_DIM} dims)"
    ))
    recorder.add("small", {
        "num_nodes": SMALL_NODES, "dim": SMALL_DIM, "k": K,
        "queries": SMALL_QUERIES, "exact_ms": round(exact_s * 1e3, 3),
        "sweep": rows,
    })

    # -- 10^6-node single config ---------------------------------------
    big_store = EmbeddingStore()
    big_store.publish(
        _clustered(LARGE_NODES, LARGE_DIM, centers=1000, seed=13),
        generation=0,
    )
    big_exact = RecommendationIndex(big_store, cache_size=0)
    big_nodes = rng.integers(0, LARGE_NODES, size=LARGE_QUERIES)
    big_exact_s, big_exact_ids = _timed_queries(big_exact, big_nodes, "exact")
    big_row = _measure_config(big_store, big_nodes, big_exact_s,
                              big_exact_ids, 512, 8)
    emit(render_table(
        [big_row], title=f"IVF top-k at {LARGE_NODES:,} nodes x "
        f"{LARGE_DIM} dims"
    ))
    recorder.add("large", {
        "num_nodes": LARGE_NODES, "dim": LARGE_DIM, "k": K,
        "queries": LARGE_QUERIES, "exact_ms": round(big_exact_s * 1e3, 3),
        "config": big_row,
    })

    # -- acceptance gate ------------------------------------------------
    passing = [
        row for row in rows
        if row["recall@10"] >= REQUIRED_RECALL
        and row["speedup"] >= REQUIRED_SPEEDUP
    ]
    best = max(rows, key=lambda row: (row["recall@10"], row["speedup"]))
    emit(
        f"configs meeting recall>={REQUIRED_RECALL} at "
        f">={REQUIRED_SPEEDUP}x: {len(passing)}/{len(rows)} "
        f"(best recall {best['recall@10']} at {best['speedup']}x)"
    )
    recorder.add("gate", {
        "required_recall": REQUIRED_RECALL,
        "required_speedup": REQUIRED_SPEEDUP,
        "passing_configs": len(passing),
    })
    recorder.save()
    assert passing, (
        f"no swept config reached recall@10 >= {REQUIRED_RECALL} at "
        f">= {REQUIRED_SPEEDUP}x speedup: {rows}"
    )
