"""Extension bench — incremental pipeline updates on an evolving graph.

§VII-B motivates the time-breakdown study with deployments where the
graph keeps evolving and "an entire pipeline needs to run" per update.
This bench quantifies the alternative the library provides: after each
appended edge batch, re-walk only affected nodes and fine-tune the
existing skip-gram model (``IncrementalEmbedder.update``) instead of a
full rebuild.  Reported: per-update seconds and downstream LP quality of
both strategies.
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig
from repro.graph import DynamicTemporalGraph, generators
from repro.tasks import LinkPredictionTask
from repro.tasks.incremental import IncrementalEmbedder
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.walk import WalkConfig

from conftest import emit

NUM_BATCHES = 4


def test_incremental_vs_full_rebuild(benchmark):
    edges = generators.ia_email_like(scale=0.01, seed=81).sorted_by_time()
    # 60% initial graph, then 4 appended batches of 10% each.
    cut = int(0.6 * len(edges))
    initial = edges.take(np.arange(cut))
    step = (len(edges) - cut) // NUM_BATCHES
    batches = [
        edges.take(np.arange(cut + i * step,
                             cut + (i + 1) * step if i < NUM_BATCHES - 1
                             else len(edges)))
        for i in range(NUM_BATCHES)
    ]

    walk_config = WalkConfig(num_walks_per_node=6, max_walk_length=6)
    sgns_config = SgnsConfig(dim=8, epochs=3)
    task = LinkPredictionTask(LinkPredictionConfig(
        training=TrainSettings(epochs=12, learning_rate=0.05)))

    def run(strategy: str):
        dynamic = DynamicTemporalGraph(initial)
        embedder = IncrementalEmbedder(
            dynamic, walk_config=walk_config, sgns_config=sgns_config,
            seed=5,
        )
        embedder.rebuild()
        update_seconds = []
        for edge_batch in batches:
            dynamic.append(edge_batch)
            if strategy == "incremental":
                report = embedder.update()
            else:
                report = embedder.rebuild()
            update_seconds.append(report.seconds)
        auc = task.run(embedder.embeddings, dynamic.edge_list(), seed=6).auc
        return float(np.mean(update_seconds)), auc

    benchmark.pedantic(lambda: run("incremental"), rounds=1, iterations=1)

    incremental_s, incremental_auc = run("incremental")
    rebuild_s, rebuild_auc = run("rebuild")

    rows = [
        {"strategy": "incremental update", "sec/update": incremental_s,
         "final lp auc": incremental_auc},
        {"strategy": "full rebuild", "sec/update": rebuild_s,
         "final lp auc": rebuild_auc},
    ]
    emit("")
    emit(render_table(rows, title="Evolving-graph maintenance: incremental "
                                  "vs full pipeline re-run"))
    # The speed/quality trade-off: updates must be cheaper, quality close.
    assert incremental_s < rebuild_s
    assert incremental_auc > rebuild_auc - 0.08

    recorder = ExperimentRecorder("incremental_updates")
    recorder.add("incremental", {"seconds": incremental_s,
                                 "auc": incremental_auc})
    recorder.add("rebuild", {"seconds": rebuild_s, "auc": rebuild_auc})
    recorder.save()
