"""Walk-kernel shootout — frontier-batched window tables vs the oracles.

The ``batched`` kernel (:mod:`repro.walk.batched`) replaces the oracle
engine's two per-step binary searches with precomputed per-edge
successor tables and per-(node, window) CDF prefix blocks.  This bench
measures the end-to-end walk throughput of all three kernels on
hub-heavy graphs (where the searches are deepest), reports the batched
kernel's one-time table build cost and table memory, and asserts the
headline claim: >=5x over the ``cdf`` sampler on at least one graph.

Distributional equivalence is *not* re-checked here (the kernel test
suite pins it down walk-for-walk); the bench only guards against a
kernel silently producing shorter walks, which would fake throughput.
"""

import time

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.graph import TemporalGraph, generators
from repro.walk import WalkConfig, make_walk_engine
from repro.walk.batched import BatchedWalkEngine

from conftest import emit

def _measure(graph, config, sampler, rounds=3):
    engine = make_walk_engine(graph, sampler=sampler)
    engine.run(config, seed=1)  # warm: table builds land here
    best = np.inf
    hops = 0
    for i in range(rounds):
        start = time.perf_counter()
        corpus = engine.run(config, seed=10 + i)
        best = min(best, time.perf_counter() - start)
        hops = sum(len(corpus.walk(j)) - 1 for j in range(corpus.num_walks))
    return engine, best, hops


def test_walk_kernels(benchmark, wiki_edges):
    graphs = {
        "wiki-small": TemporalGraph.from_edge_list(
            wiki_edges.with_reverse_edges()
        ),
        "wiki-medium": TemporalGraph.from_edge_list(
            generators.wiki_talk_like(scale=0.01, seed=101)
            .with_reverse_edges()
        ),
    }
    config = WalkConfig(
        bias="softmax-recency", num_walks_per_node=8, max_walk_length=8
    )

    benchmark.pedantic(
        lambda: make_walk_engine(
            graphs["wiki-small"], sampler="batched"
        ).run(config, seed=1),
        rounds=3, iterations=1,
    )

    recorder = ExperimentRecorder("walk_kernels")
    rows = []
    best_speedup = 0.0
    for name, graph in graphs.items():
        deg = np.diff(graph.indptr)
        # The gumbel kernel draws one Gumbel variate per candidate (the
        # paper-faithful O(M) scan); on the hub-heavy medium graph that
        # is minutes of rng for no extra information, so it only runs on
        # the small graph.
        kernels = (
            ("cdf", "batched") if name == "wiki-medium"
            else ("cdf", "gumbel", "batched")
        )
        times = {}
        hops = {}
        build_seconds = 0.0
        table_mb = 0.0
        for sampler in kernels:
            engine, seconds, steps = _measure(
                graph, config, sampler,
                rounds=1 if sampler == "gumbel" else 3,
            )
            times[sampler] = seconds
            hops[sampler] = steps
            if isinstance(engine, BatchedWalkEngine):
                build_seconds = engine.table_build_seconds
                table_mb = engine.table_bytes() / 1e6
        # A kernel that terminated walks early would fake throughput.
        assert abs(hops["batched"] - hops["cdf"]) <= 0.02 * hops["cdf"]
        speedup = times["cdf"] / times["batched"]
        best_speedup = max(best_speedup, speedup)
        for sampler in kernels:
            rows.append({
                "graph": f"{name} (maxdeg {int(deg.max())})",
                "kernel": sampler,
                "walk seconds": times[sampler],
                "hops/sec": hops[sampler] / times[sampler],
                "vs cdf": times["cdf"] / times[sampler],
            })
            recorder.add(f"{name}.{sampler}_seconds", times[sampler])
            recorder.add(
                f"{name}.{sampler}_hops_per_second",
                hops[sampler] / times[sampler],
            )
        recorder.add(f"{name}.batched_speedup_vs_cdf", speedup)
        recorder.add(f"{name}.batched_table_build_seconds", build_seconds)
        recorder.add(f"{name}.batched_table_megabytes", table_mb)
        emit("")
        emit(f"{name}: batched tables {table_mb:.1f} MB, "
             f"built in {build_seconds * 1e3:.0f} ms "
             f"(amortized across repeated runs)")

    emit(render_table(rows, title="Walk kernel shootout (softmax-recency)"))
    recorder.add("best_batched_speedup_vs_cdf", best_speedup)
    recorder.save()
    assert best_speedup >= 5.0, (
        f"batched kernel must reach 5x over cdf, got {best_speedup:.2f}x"
    )
