"""Fig. 3 — hardware metrics of BFS / VGG / GCN vs the pipeline's kernels.

Paper: on a GPU, the random-walk pipeline phases (RW-P1 walk, RW-P2
word2vec, RW-P3 train, RW-P4 test) look nothing like classic traversal
(BFS), dense DL inference (VGG) or GCN inference — higher irregularity
(replay ratio), lower SM utilization and DRAM utilization.

Reproduction: every workload actually runs (BFS traversal, walk kernel,
SGNS training, GCN forward; VGG as its GEMM stack), its measured
statistics parameterize the GPU model, and the table reports each metric
normalized to BFS exactly as the figure does.  Inputs are scaled from
the paper's (BFS: 16M/117M Rodinia graph; VGG: ImageNet; GCN: Reddit;
pipeline: 10M/200M ER).
"""

import numpy as np

from repro.baselines import GcnModel, VggModel, bfs, bfs_gpu_kernel, gcn_gpu_kernel
from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.graph import TemporalGraph, generators
from repro.hwmodel import classifier_kernel, walk_kernel, word2vec_kernel
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

METRICS = ["sm_util", "l2_hit", "dram_bw", "imbalance", "irregularity"]


def test_fig03_workload_comparison(benchmark, er_graph_large):
    # --- run the actual workloads -------------------------------------
    def run_pipeline_kernels():
        engine = TemporalWalkEngine(er_graph_large)
        corpus = engine.run(
            WalkConfig(num_walks_per_node=4, max_walk_length=6), seed=1
        )
        sgns = SgnsConfig(dim=8, epochs=1)
        trainer = BatchedSgnsTrainer(sgns, batch_sentences=4096)
        trainer.train(corpus, er_graph_large.num_nodes, seed=2)
        return engine.last_stats, trainer.last_stats, sgns

    walk_stats, w2v_stats, sgns = benchmark.pedantic(
        run_pipeline_kernels, rounds=1, iterations=1
    )

    # Rodinia-style BFS input (scaled from 16M nodes / 117M edges).
    bfs_graph = TemporalGraph.from_edge_list(
        generators.erdos_renyi_temporal(160_000, 1_170_000, seed=3)
    )
    bfs_result = bfs(bfs_graph, 0)

    # Reddit-shaped GCN input (scaled from 233k nodes / 114M edges,
    # 602 features, 41 classes).
    gcn_graph = TemporalGraph.from_edge_list(
        generators.erdos_renyi_temporal(23_000, 1_140_000, seed=4)
    )
    gcn = GcnModel.build(gcn_graph, feature_dim=64, hidden_dim=64,
                         num_classes=41, seed=5)
    gcn.forward(np.random.default_rng(6).random((gcn_graph.num_nodes, 64)))

    classifier_dims = [(16, 32), (32, 1)]
    kernels = {
        "BFS": bfs_gpu_kernel(bfs_graph, bfs_result),
        "VGG": VggModel.vgg16(batch_size=8).gpu_kernel(),
        "GCN": gcn_gpu_kernel(gcn),
        "RW-P1 (walk)": walk_kernel(walk_stats, er_graph_large),
        "RW-P2 (word2vec)": word2vec_kernel(
            w2v_stats, sgns, er_graph_large.num_nodes, 4096),
        "RW-P3 (train)": classifier_kernel(
            "train", classifier_dims, 128, 400_000, True),
        "RW-P4 (test)": classifier_kernel(
            "test", classifier_dims, 1024, 100_000, False),
    }

    reports = {name: k.report() for name, k in kernels.items()}
    base = reports["BFS"].metric_row()
    rows = []
    for name, report in reports.items():
        row = {"workload": name}
        for metric, value in report.metric_row().items():
            denom = base[metric] if base[metric] else 1.0
            row[f"{metric}/BFS"] = value / denom
        rows.append(row)
    emit("")
    emit(render_table(rows, title="Fig. 3 — GPU metrics normalized to BFS"))

    # Paper's qualitative claims (§IV-D): the pipeline phases show high
    # irregularity and low SM utilization compared to the regular
    # workloads, and the classifier kernels barely occupy the device.
    rw = reports["RW-P1 (walk)"]
    w2v = reports["RW-P2 (word2vec)"]
    assert rw.irregularity > reports["VGG"].irregularity
    assert w2v.irregularity > reports["VGG"].irregularity
    assert rw.irregularity > 0.3
    assert rw.sm_utilization < reports["VGG"].sm_utilization
    assert w2v.sm_utilization < reports["VGG"].sm_utilization
    assert reports["RW-P3 (train)"].sm_utilization < 0.1
    assert reports["RW-P4 (test)"].sm_utilization < 0.1
    # Load imbalance: the walk inherits the degree distribution's skew.
    assert rw.load_imbalance > reports["VGG"].load_imbalance

    recorder = ExperimentRecorder("fig03_workload_comparison")
    for name, report in reports.items():
        recorder.add(name, report.metric_row())
    recorder.save()
