"""Table III — execution-time breakdown across graph sizes, CPU vs GPU.

Paper (synthetic ER graphs, nodes fixed, edges swept to 200M): per-phase
times for rwalk / word2vec / training-per-epoch / testing on both CPU
and GPU.  Shape claims reproduced here:

1. times grow monotonically with graph size;
2. the GPU loses at small sizes (launch + PCIe transfer dominate) and
   wins at large sizes — a crossover;
3. classifier training dominates the end-to-end time.

Every ladder rung actually runs the walk and word2vec kernels (wall
times reported); CPU and GPU seconds come from the roofline/GPU models
fed with each rung's measured statistics, scaled 1:100 from the paper's
ladder (10k nodes, 1k..2M edges).
"""

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.graph import TemporalGraph, generators
from repro.hwmodel import classifier_kernel, walk_kernel, word2vec_kernel
from repro.hwmodel.gpu import cpu_time_seconds
from repro.hwmodel.profiler import (
    profile_classifier,
    profile_random_walk,
    profile_word2vec,
)
from repro.observability import Recorder, use_recorder
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

NODES = 10_000
EDGE_LADDER = [1_000, 10_000, 50_000, 200_000, 1_000_000, 2_000_000]
CLASSIFIER_DIMS = [(16, 32), (32, 1)]
EPOCHS = 30


def measure_rung(num_edges: int) -> dict:
    edges = generators.erdos_renyi_temporal(NODES, num_edges, seed=num_edges)
    graph = TemporalGraph.from_edge_list(edges)
    engine = TemporalWalkEngine(graph)

    # Wall times come from recorder spans rather than ad-hoc
    # perf_counter bracketing, so the breakdown here and the spans a
    # pipeline run emits are the same measurement.
    rec = Recorder()
    with use_recorder(rec):
        with rec.span("rwalk"):
            corpus = engine.run(WalkConfig(), seed=1)
        walk_stats = engine.last_stats

        sgns = SgnsConfig(dim=8, epochs=1)
        trainer = BatchedSgnsTrainer(sgns, batch_sentences=4096)
        with rec.span("word2vec"):
            trainer.train(corpus, graph.num_nodes, seed=2)
        w2v_stats = trainer.last_stats
    rwalk_wall = rec.span_seconds("rwalk")
    w2v_wall = rec.span_seconds("word2vec")

    # Classifier sample counts follow Fig. 7 (pos+neg per partition).
    train_samples = 2 * int(0.6 * num_edges)
    test_samples = 2 * int(0.2 * num_edges)

    walk_profile = profile_random_walk(walk_stats)
    w2v_profile = profile_word2vec(w2v_stats, sgns)
    train_profile = profile_classifier(
        "train", CLASSIFIER_DIMS, train_samples, 128, True)
    test_profile = profile_classifier(
        "test", CLASSIFIER_DIMS, test_samples, 1024, False)

    def cpu(profile):
        return cpu_time_seconds(profile.mix.total, profile.mix.memory * 8.0,
                                threads=64)

    gpu_reports = {
        "rwalk": walk_kernel(walk_stats, graph).report(),
        "word2vec": word2vec_kernel(w2v_stats, sgns, graph.num_nodes,
                                    4096).report(),
        "train": classifier_kernel("train", CLASSIFIER_DIMS, 128,
                                   train_samples, True).report(),
        "test": classifier_kernel("test", CLASSIFIER_DIMS, 1024,
                                  test_samples, False).report(),
    }
    return {
        "edges": num_edges,
        "rwalk wall": rwalk_wall,
        "w2v wall": w2v_wall,
        "rwalk cpu": cpu(walk_profile),
        "rwalk gpu": gpu_reports["rwalk"].time_seconds,
        "w2v cpu": cpu(w2v_profile),
        "w2v gpu": gpu_reports["word2vec"].time_seconds,
        "train/ep cpu": cpu(train_profile),
        "train/ep gpu": gpu_reports["train"].time_seconds,
        "test cpu": cpu(test_profile),
        "test gpu": gpu_reports["test"].time_seconds,
    }


def test_table3_time_breakdown(benchmark):
    benchmark.pedantic(lambda: measure_rung(50_000), rounds=1, iterations=1)

    rows = [measure_rung(m) for m in EDGE_LADDER]
    emit("")
    emit(render_table(rows, title="Table III — per-phase seconds "
                                  "(10k nodes, scaled 1:100 ladder)"))

    small, large = rows[0], rows[-1]
    # Monotone growth with graph size.
    for phase in ("rwalk cpu", "w2v cpu", "train/ep cpu"):
        values = [r[phase] for r in rows]
        assert values == sorted(values), phase
    # Crossover: GPU relative advantage improves with size, and at the
    # largest size the GPU wins both front-end kernels.
    def gpu_advantage(row, phase):
        return row[f"{phase} cpu"] / row[f"{phase} gpu"]
    for phase in ("rwalk", "w2v"):
        assert gpu_advantage(large, phase) > gpu_advantage(small, phase), phase
    assert gpu_advantage(large, "w2v") > 1.0
    # Small graphs: transfer/launch-dominated GPU loses on the walk.
    assert gpu_advantage(small, "rwalk") < 1.0

    # Training dominates end-to-end time (30 epochs, paper's insight 1).
    for device in ("cpu", "gpu"):
        end_to_end = (large[f"rwalk {device}"] + large[f"w2v {device}"]
                      + EPOCHS * large[f"train/ep {device}"]
                      + large[f"test {device}"])
        train_share = EPOCHS * large[f"train/ep {device}"] / end_to_end
        emit(f"{device}: training share of end-to-end = {train_share:.1%}")
        assert train_share > 0.5, device

    recorder = ExperimentRecorder("table3_time_breakdown")
    recorder.add("rows", rows)
    recorder.save()
