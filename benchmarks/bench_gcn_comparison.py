"""§IV-C — random-walk temporal learning vs GCN on feature-less graphs.

The paper motivates the walk-based pipeline against GCN: "the presented
algorithm works on feature-less graphs and uses a single-integer
vertex-identifier as a feature, whereas GCN requires vertex-wise long
feature vectors", and GCN "mostly works on static graphs and cannot
model the graph dynamics".  This bench makes both points measurable on
node classification:

1. a stationary dblp-shaped graph with no node features — GCN must fall
   back to degree+random features and loses to walk embeddings;
2. a drifting-community graph — GCN's static adjacency additionally
   blends stale epochs.
"""

import numpy as np

from repro.baselines.gcn import TrainableGcn
from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph, generators
from repro.tasks import NodeClassificationTask
from repro.tasks.node_classification import NodeClassificationConfig
from repro.tasks.splits import stratified_node_split
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def walk_accuracy(dataset, graph, seed, bias="softmax-recency"):
    corpus = TemporalWalkEngine(graph).run(
        WalkConfig(num_walks_per_node=10, max_walk_length=6, bias=bias),
        seed=seed,
    )
    embeddings, _ = train_embeddings(
        corpus, graph.num_nodes, SgnsConfig(dim=8, epochs=6), seed=seed + 1
    )
    config = NodeClassificationConfig(
        training=TrainSettings(epochs=25, learning_rate=0.05)
    )
    return NodeClassificationTask(config).run(
        embeddings, dataset.labels, seed=seed + 2
    ).accuracy


def gcn_accuracy(dataset, graph, seed):
    splits = stratified_node_split(dataset.labels, seed=seed + 2)
    gcn = TrainableGcn(graph, feature_dim=16, hidden_dim=32,
                       num_classes=dataset.num_classes, seed=seed)
    gcn.fit(dataset.labels, splits.train, epochs=200, lr=0.1)
    return gcn.accuracy(dataset.labels, splits.test)


def test_gcn_comparison(benchmark):
    stationary = generators.dblp3_like(scale=0.2, seed=31)
    stationary_graph = TemporalGraph.from_edge_list(
        stationary.edges.with_reverse_edges()
    )
    drifting = generators.drifting_temporal_sbm(
        num_nodes=400, num_classes=4, relabel_fraction=0.5, seed=32
    )
    drifting_graph = TemporalGraph.from_edge_list(
        drifting.edges.with_reverse_edges()
    )

    def run_all():
        seeds = (5, 25)
        rows = []
        for name, dataset, graph, bias in (
            ("dblp3 (stationary, feature-less)", stationary,
             stationary_graph, "softmax-recency"),
            ("drifting communities", drifting, drifting_graph,
             "softmax-late"),
        ):
            walk = float(np.mean(
                [walk_accuracy(dataset, graph, s, bias) for s in seeds]))
            gcn = float(np.mean(
                [gcn_accuracy(dataset, graph, s) for s in seeds]))
            chance = float(np.bincount(dataset.labels).max()
                           / len(dataset.labels))
            rows.append({"dataset": name, "temporal walks": walk,
                         "GCN": gcn, "chance": chance})
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("")
    emit(render_table(rows, title="§IV-C — walk pipeline vs GCN on "
                                  "feature-less temporal graphs"))

    for row in rows:
        # Both methods learn something...
        assert row["GCN"] > row["chance"] - 0.02, row["dataset"]
        # ...but the walk pipeline wins without needing node features.
        assert row["temporal walks"] > row["GCN"] + 0.05, row["dataset"]

    recorder = ExperimentRecorder("gcn_comparison")
    recorder.add("rows", rows)
    recorder.save()
