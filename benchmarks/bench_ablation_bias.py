"""Ablation — Eq. 1's temporal bias vs the uniform transition model.

§IV-A motivates the softmax transition probability over the "typical"
uniform model with temporal continuity (Fig. 2: the edge soonest after
the current one is the most correlated).  This ablation runs the
identical pipeline under all four implemented biases on link prediction
and reports accuracy plus the walk-length side effect (recency bias
chains more hops inside bursts; late bias exhausts the future faster).
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph
from repro.tasks import LinkPredictionTask
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

BIASES = ["uniform", "softmax-late", "softmax-recency", "linear"]


def test_ablation_transition_bias(benchmark, email_edges):
    graph = TemporalGraph.from_edge_list(email_edges.with_reverse_edges())
    task = LinkPredictionTask(LinkPredictionConfig(
        training=TrainSettings(epochs=15, learning_rate=0.05)))

    def evaluate(bias, seed):
        engine = TemporalWalkEngine(graph)
        corpus = engine.run(
            WalkConfig(num_walks_per_node=10, max_walk_length=6, bias=bias),
            seed=seed,
        )
        embeddings, _ = train_embeddings(
            corpus, graph.num_nodes, SgnsConfig(dim=8, epochs=5),
            seed=seed + 1,
        )
        result = task.run(embeddings, email_edges, seed=seed + 2)
        return result.auc, float(corpus.lengths.mean())

    def run_all():
        rows = []
        for bias in BIASES:
            outcomes = [evaluate(bias, seed) for seed in (11, 31, 51)]
            rows.append({
                "bias": bias,
                "lp auc": float(np.mean([o[0] for o in outcomes])),
                "mean walk length": float(np.mean([o[1] for o in outcomes])),
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("")
    emit(render_table(rows, title="Transition-bias ablation "
                                  "(ia-email shaped, link prediction)"))

    by_bias = {r["bias"]: r for r in rows}
    # Every bias yields a usable model on this dataset scale...
    for row in rows:
        assert row["lp auc"] > 0.8, row["bias"]
    # ...and the default softmax-recency is competitive with the best
    # (within 2 AUC points), supporting the paper's Eq. 1 choice without
    # overclaiming a gap the dataset may not expose.
    best = max(r["lp auc"] for r in rows)
    assert by_bias["softmax-recency"]["lp auc"] > best - 0.02

    recorder = ExperimentRecorder("ablation_bias")
    recorder.add("rows", rows)
    recorder.save()
