"""Roofline placement of the pipeline kernels (companion to Fig. 11).

Operational intensity explains the stall taxonomy: every pipeline
kernel sits left of the ridge point (memory/bandwidth side — matching
the walk's and word2vec's scoreboard-heavy stalls, and meaning even a
perfectly occupied classifier GEMM would be bandwidth-limited), while
dense VGG-class GEMM sits right of it (compute side).
"""

from repro.baselines import VggModel
from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.hwmodel.roofline import (
    Roofline,
    RooflinePoint,
    pipeline_roofline_points,
)
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_roofline_placement(benchmark, wiki_graph):
    def run_kernels():
        engine = TemporalWalkEngine(wiki_graph)
        corpus = engine.run(WalkConfig(), seed=1)
        sgns = SgnsConfig(dim=8, epochs=1)
        trainer = BatchedSgnsTrainer(sgns, batch_sentences=1024)
        trainer.train(corpus, wiki_graph.num_nodes, seed=2)
        return engine.last_stats, trainer.last_stats, sgns

    walk_stats, w2v_stats, sgns = benchmark.pedantic(
        run_kernels, rounds=1, iterations=1
    )

    roofline = Roofline.from_gpu()
    points = pipeline_roofline_points(
        walk_stats, w2v_stats, sgns, [(16, 32), (32, 1)], batch_size=128
    )
    vgg = VggModel.vgg16()
    points.append(RooflinePoint(
        name="vgg (contrast)", flops=vgg.total_flops(),
        bytes_moved=vgg.total_bytes(),
    ))

    rows = []
    for point in points:
        rows.append({
            "kernel": point.name,
            "flops/byte": point.operational_intensity,
            "bound": roofline.classify(point),
            "attainable gflops": roofline.attainable(
                point.operational_intensity) / 1e9,
        })
    emit("")
    emit(render_table(rows, title=f"Roofline placement (ridge at "
                                  f"{roofline.ridge_intensity:.1f} "
                                  "flops/byte)"))

    by_name = {r["kernel"]: r for r in rows}
    # The front-end kernels are bandwidth-side; dense VGG is compute-side.
    assert by_name["rwalk"]["bound"] == "memory-bound"
    assert by_name["word2vec"]["bound"] == "memory-bound"
    assert by_name["vgg (contrast)"]["bound"] == "compute-bound"
    # Intensity ordering: walk < word2vec < VGG.
    assert (by_name["rwalk"]["flops/byte"]
            < by_name["vgg (contrast)"]["flops/byte"])

    recorder = ExperimentRecorder("roofline")
    recorder.add("ridge", roofline.ridge_intensity)
    recorder.add("rows", rows)
    recorder.save()
