"""Extension bench — durable streaming ingest: WAL cost, recovery, staleness.

The streaming layer (:mod:`repro.stream`) makes three claims this bench
measures:

1. **WAL cost** — log-ahead durability (append + per-batch fsync before
   the in-memory apply) taxes ingest throughput; ``sync=False`` and
   no-WAL quantify the tax under each backpressure policy with a
   bounded queue.
2. **Recovery** — ``replay()`` reconstructs the full acknowledged
   stream, and its wall-clock cost scales with log size (the restart
   budget a deployment must plan for).
3. **Staleness trade-off** — the three refresh policies (every-n,
   staleness, affected-fraction) trade refresh work for embedding
   freshness; the curve reports refresh count/seconds against the
   link-prediction AUC the *published* (possibly stale) embeddings
   achieve at end of stream.

Saved to ``bench_results/stream_ingest.json``.
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig
from repro.graph import DynamicTemporalGraph, generators
from repro.graph.edges import TemporalEdgeList
from repro.stream import (
    AffectedFraction,
    EveryNEdges,
    IngestQueue,
    MaxStaleness,
    StreamController,
    WriteAheadLog,
    replay,
)
from repro.tasks import LinkPredictionTask
from repro.tasks.incremental import IncrementalEmbedder
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.walk import WalkConfig

from conftest import emit

POLICIES = ("block", "drop_oldest", "reject")
WAL_MODES = ("wal-sync", "wal-nosync", "no-wal")

INGEST_BATCHES = 100
INGEST_BATCH_EDGES = 250
QUEUE_EDGES = 5_000

RECOVERY_SIZES = (2_000, 8_000, 32_000)

STALENESS_BATCHES = 8


def _ingest_batches(rng, count, size, num_nodes=3_000):
    return [
        TemporalEdgeList(
            rng.integers(0, num_nodes, size=size),
            rng.integers(0, num_nodes, size=size),
            rng.random(size),
            num_nodes=num_nodes,
        )
        for _ in range(count)
    ]


def _throughput_run(policy: str, wal_mode: str, tmp: Path) -> dict:
    """Drain INGEST_BATCHES through the controller; edges/sec applied."""
    rng = np.random.default_rng(11)
    batches = _ingest_batches(rng, INGEST_BATCHES, INGEST_BATCH_EDGES)
    wal = None
    if wal_mode != "no-wal":
        wal = WriteAheadLog(tmp / f"{policy}-{wal_mode}",
                            sync=(wal_mode == "wal-sync"))
    queue = IngestQueue(max_edges=QUEUE_EDGES, policy=policy)
    controller = StreamController(DynamicTemporalGraph(), queue, wal=wal,
                                  idle_poll=0.002)
    start = time.perf_counter()
    with controller:
        for batch in batches:
            queue.put(batch, timeout=30.0)
    seconds = time.perf_counter() - start
    stats = controller.stats
    return {
        "policy": policy,
        "wal": wal_mode,
        "batches": stats.batches_applied,
        "edges": stats.edges_applied,
        "dropped": queue.dropped_edges,
        "rejected": queue.rejected_batches,
        "edges/s": round(stats.edges_applied / seconds, 0),
        "seconds": round(seconds, 3),
    }


def _recovery_run(num_edges: int, tmp: Path) -> dict:
    """Write a log of ``num_edges``, then time a cold replay."""
    rng = np.random.default_rng(13)
    wal_dir = tmp / f"recovery-{num_edges}"
    batches = _ingest_batches(rng, num_edges // INGEST_BATCH_EDGES,
                              INGEST_BATCH_EDGES)
    with WriteAheadLog(wal_dir, segment_max_bytes=256 * 1024) as wal:
        for batch in batches:
            wal.append(batch)
    result = replay(wal_dir)
    assert result.total_edges == num_edges
    # Bit-identical reconstruction of the acknowledged stream.
    expected = TemporalEdgeList.concatenate(batches)
    got = result.edge_list()
    assert np.array_equal(got.src, expected.src)
    assert np.array_equal(got.timestamps, expected.timestamps)
    wal_bytes = sum(p.stat().st_size for p in wal_dir.iterdir())
    return {
        "log edges": num_edges,
        "log MiB": round(wal_bytes / 2**20, 2),
        "segments": result.segments,
        "replay s": round(result.seconds, 4),
        "edges/s": round(num_edges / result.seconds, 0)
        if result.seconds > 0 else float("inf"),
    }


def _staleness_run(policy, edges, cut) -> dict:
    """Stream the 40% tail under ``policy``; AUC of published embeddings."""
    initial = edges.take(np.arange(cut))
    step = (len(edges) - cut) // STALENESS_BATCHES
    batches = [
        edges.take(np.arange(cut + i * step,
                             cut + (i + 1) * step
                             if i < STALENESS_BATCHES - 1 else len(edges)))
        for i in range(STALENESS_BATCHES)
    ]
    dynamic = DynamicTemporalGraph(initial)
    embedder = IncrementalEmbedder(
        dynamic,
        walk_config=WalkConfig(num_walks_per_node=6, max_walk_length=6),
        sgns_config=SgnsConfig(dim=8, epochs=3),
        seed=17,
    )
    embedder.rebuild()
    queue = IngestQueue(max_edges=100_000)
    controller = StreamController(
        dynamic, queue, embedder=embedder, policy=policy,
        idle_poll=0.01, final_refresh=False,
    )
    with controller:
        for batch in batches:
            queue.put(batch)
            time.sleep(0.03)  # paced stream: wall-clock policies can fire
    stats = controller.stats

    # Score the embeddings as published (possibly stale): restrict the
    # evaluation stream to nodes the last refresh actually covered.
    emb = embedder.embeddings
    full = dynamic.edge_list()
    known = (full.src < emb.num_nodes) & (full.dst < emb.num_nodes)
    eval_edges = TemporalEdgeList(
        full.src[known], full.dst[known], full.timestamps[known],
        num_nodes=emb.num_nodes,
    )
    task = LinkPredictionTask(LinkPredictionConfig(
        training=TrainSettings(epochs=12, learning_rate=0.05)))
    auc = task.run(emb, eval_edges, seed=19).auc
    return {
        "policy": policy.name,
        "refreshes": stats.refreshes,
        "refresh s": round(stats.refresh_seconds, 2),
        "stale edges": controller.pending_edges,
        "lp auc": round(auc, 4),
    }


def test_stream_ingest(benchmark):
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as tmp_name:
        tmp = Path(tmp_name)
        benchmark.pedantic(
            lambda: _throughput_run("block", "no-wal", tmp / "warmup"),
            rounds=1, iterations=1,
        )

        # 1. WAL cost x backpressure policy.
        throughput_rows = [
            _throughput_run(policy, wal_mode, tmp)
            for policy in POLICIES
            for wal_mode in WAL_MODES
        ]
        emit("")
        emit(render_table(
            throughput_rows,
            title="Streaming ingest throughput (WAL durability x "
                  "backpressure policy)",
        ))
        for row in throughput_rows:
            # The block policy never sheds load; shedding policies may.
            if row["policy"] == "block":
                assert row["edges"] == INGEST_BATCHES * INGEST_BATCH_EDGES
                assert row["dropped"] == 0 and row["rejected"] == 0
            assert row["edges"] > 0

        # 2. Recovery time vs log size.
        recovery_rows = [_recovery_run(size, tmp) for size in RECOVERY_SIZES]
        emit("")
        emit(render_table(recovery_rows,
                          title="WAL recovery: replay time vs log size"))

    # 3. Accuracy vs refresh cost across the three policies.
    edges = generators.ia_email_like(scale=0.008, seed=23).sorted_by_time()
    cut = int(0.6 * len(edges))
    tail = len(edges) - cut
    staleness_rows = [
        _staleness_run(policy, edges, cut)
        for policy in (
            EveryNEdges(max(1, tail // 4)),
            MaxStaleness(0.05),
            AffectedFraction(0.05),
        )
    ]
    emit("")
    emit(render_table(
        staleness_rows,
        title="Continuous refresh: accuracy vs staleness by policy",
    ))
    for row in staleness_rows:
        assert row["refreshes"] >= 1, f"{row['policy']} never refreshed"
        assert row["lp auc"] > 0.5, f"{row['policy']} embeddings useless"

    recorder = ExperimentRecorder("stream_ingest")
    recorder.add("throughput", throughput_rows)
    recorder.add("recovery", recovery_rows)
    recorder.add("staleness", staleness_rows)
    path = recorder.save()
    emit(f"saved: {path}")
