"""Fig. 9 — dynamic instruction breakdown of each kernel (ia-email, LP).

Paper: every kernel has BOTH heavy compute (36.6% average) and heavy
memory (30.4% average); the surprise is the walk kernel, whose Eq. 1
softmax makes it far more fp-heavy than a classic traversal.

The mixes are derived from the measured work statistics of the actually
executed kernels via the documented cost tables in
``repro.hwmodel.profiler``; a real BFS provides the contrast.
"""

from repro.baselines import bfs
from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.graph import TemporalGraph
from repro.hwmodel.profiler import (
    profile_bfs,
    profile_classifier,
    profile_random_walk,
    profile_word2vec,
)
from repro.observability import Recorder, use_recorder
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_fig09_instruction_mix(benchmark, email_edges):
    graph = TemporalGraph.from_edge_list(email_edges.with_reverse_edges())
    rec = Recorder()

    def run_kernels():
        with use_recorder(rec):
            engine = TemporalWalkEngine(graph)
            corpus = engine.run(WalkConfig(), seed=1)
            sgns = SgnsConfig(dim=8, epochs=2)
            trainer = BatchedSgnsTrainer(sgns, batch_sentences=1024)
            trainer.train(corpus, graph.num_nodes, seed=2)
        return engine.last_stats, trainer.last_stats, sgns

    walk_stats, w2v_stats, sgns = benchmark.pedantic(
        run_kernels, rounds=1, iterations=1
    )
    # The recorder's op counters and the kernels' own stats structs are
    # two views of the same execution; the profiles below are only
    # trustworthy if they agree.
    counters = rec.metrics()["counters"]
    assert counters["walk.edges_scanned"] == walk_stats.candidates_scanned
    assert counters["walk.search_iterations"] == walk_stats.search_iterations
    assert counters["walk.exp_evaluations"] == walk_stats.exp_evaluations
    assert counters["sgns.pairs"] == w2v_stats.pairs_trained
    assert counters["sgns.fp_ops"] == w2v_stats.fp_ops

    bfs_result = bfs(graph, 0)

    classifier_dims = [(16, 32), (32, 1)]
    train_samples = 30 * 2 * int(0.6 * len(email_edges))  # epochs x pos+neg
    profiles = [
        profile_bfs(bfs_result.edges_scanned, bfs_result.nodes_visited),
        profile_random_walk(walk_stats),
        profile_word2vec(w2v_stats, sgns),
        profile_classifier("train", classifier_dims, train_samples, 128, True),
        profile_classifier("test", classifier_dims,
                           2 * int(0.2 * len(email_edges)), 1024, False),
    ]

    rows = [{"kernel": p.name,
             **{k: v for k, v in p.fractions().items()}} for p in profiles]
    emit("")
    emit(render_table(rows, title="Fig. 9 — dynamic instruction mix "
                                  "(ia-email shaped, link prediction)"))

    by_name = {p.name: p.fractions() for p in profiles}
    pipeline = ["rwalk", "word2vec", "train", "test"]
    # Both compute and memory dominant in every pipeline kernel.
    for name in pipeline:
        assert by_name[name]["compute"] > 0.25, name
        assert by_name[name]["memory"] > 0.2, name
    # The walk's fp share dwarfs BFS's (which is zero) — the Fig. 9
    # surprise the paper attributes to Eq. 1.
    walk_fp = [p for p in profiles if p.name == "rwalk"][0]
    bfs_p = [p for p in profiles if p.name == "bfs"][0]
    assert bfs_p.mix.compute_fp == 0.0
    assert walk_fp.mix.compute_fp / walk_fp.mix.total > 0.1

    # Averages across pipeline kernels near the paper's 36.6% / 30.4%.
    avg_compute = sum(by_name[n]["compute"] for n in pipeline) / 4
    avg_memory = sum(by_name[n]["memory"] for n in pipeline) / 4
    emit(f"pipeline averages: compute {avg_compute:.1%} (paper 36.6%), "
         f"memory {avg_memory:.1%} (paper 30.4%)")
    assert 0.25 < avg_compute < 0.65
    assert 0.2 < avg_memory < 0.55

    recorder = ExperimentRecorder("fig09_instruction_mix")
    for p in profiles:
        recorder.add(p.name, p.fractions())
    recorder.save()
