"""Fig. 4 — power-law distribution of temporal random walk lengths.

Paper: on wiki-talk, most walks are 1-5 nodes long and the frequency of
longer walks decreases exponentially; this is the property that starves
sentence-at-a-time GPU word2vec (§V-B).  We regenerate the histogram on
the wiki-talk-shaped graph with a generous length cap so the tail is the
walk's own termination, not the cap.
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_bars, render_table
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_fig04_walk_length_distribution(benchmark, wiki_graph):
    engine = TemporalWalkEngine(wiki_graph)
    config = WalkConfig(num_walks_per_node=10, max_walk_length=20)

    corpus = benchmark.pedantic(
        lambda: engine.run(config, seed=1), rounds=3, iterations=1
    )

    fractions = corpus.length_fractions()
    rows = [
        {
            "walk length": int(length),
            "fraction": float(frac),
            "log10(fraction)": float(np.log10(max(frac, 1e-12))),
        }
        for length, frac in sorted(fractions.items())
    ]
    emit("")
    emit(render_table(rows, title="Fig. 4 — walk length distribution "
                                  "(wiki-talk shaped)"))
    emit("")
    emit(render_bars({int(k): float(v) for k, v in sorted(fractions.items())},
                     title="linear scale", width=40))

    # Paper's shape claims.
    short_mass = sum(v for k, v in fractions.items() if k <= 5)
    emit(f"mass at length <= 5: {short_mass:.3f}")
    assert short_mass > 0.8, "most walks must be short (Fig. 4)"
    # Exponential-ish decay: each bin past the mode is at most ~the
    # previous one.
    mode = max(fractions, key=fractions.get)
    tail = [fractions.get(k, 0.0) for k in range(mode, 20)]
    assert all(a >= b * 0.9 for a, b in zip(tail, tail[1:]))

    recorder = ExperimentRecorder("fig04_walk_lengths")
    recorder.add("fractions", {int(k): float(v) for k, v in fractions.items()})
    recorder.add("short_mass_le5", short_mass)
    recorder.save()


def test_fig04_other_datasets_similar(benchmark, stackoverflow_edges,
                                      email_edges):
    """Paper: "Other datasets also show similar patterns"."""
    from repro.graph import TemporalGraph

    def run_all():
        out = {}
        for name, edges in (("stackoverflow", stackoverflow_edges),
                            ("ia-email", email_edges)):
            graph = TemporalGraph.from_edge_list(edges)
            corpus = TemporalWalkEngine(graph).run(
                WalkConfig(num_walks_per_node=4, max_walk_length=20), seed=4
            )
            out[name] = corpus.length_fractions()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, fractions in results.items():
        short_mass = sum(v for k, v in fractions.items() if k <= 5)
        emit(f"{name}: mass at length <= 5 = {short_mass:.3f}, "
             f"max length = {max(fractions)}")
        assert short_mass > 0.75
