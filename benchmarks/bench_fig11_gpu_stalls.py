"""Fig. 11 — GPU stall-cycle characterization per kernel.

Paper (10M-node / 200M-edge synthetic ER graph): each kernel's dominant
stall differs — compute dependencies for the walk (54.1%), memory
(scoreboard) dependencies for word2vec (46.2%), and IMC cache misses for
classifier training/testing (23.6% / 30.6%) whose SM utilization is
under 10%; on average ~65% of stalls come from those three causes.

The stall model derives its weights from the measured kernel statistics
(divergence, dependence chains, occupancy, working sets) of the actually
executed workload on the scaled ER input.
"""

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.hwmodel import classifier_kernel, walk_kernel, word2vec_kernel
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit


def test_fig11_gpu_stalls(benchmark, er_graph_large):
    def run_kernels():
        engine = TemporalWalkEngine(er_graph_large)
        corpus = engine.run(
            WalkConfig(num_walks_per_node=4, max_walk_length=6), seed=1
        )
        sgns = SgnsConfig(dim=8, epochs=1)
        trainer = BatchedSgnsTrainer(sgns, batch_sentences=4096)
        trainer.train(corpus, er_graph_large.num_nodes, seed=2)
        return engine.last_stats, trainer.last_stats, sgns

    walk_stats, w2v_stats, sgns = benchmark.pedantic(
        run_kernels, rounds=1, iterations=1
    )

    classifier_dims = [(16, 32), (32, 1)]
    kernels = {
        "rwalk": walk_kernel(walk_stats, er_graph_large),
        "word2vec": word2vec_kernel(
            w2v_stats, sgns, er_graph_large.num_nodes, 4096),
        "train": classifier_kernel(
            "train", classifier_dims, 128, 2_000_000, True),
        "test": classifier_kernel(
            "test", classifier_dims, 1024, 400_000, False),
    }

    reports = {name: k.report() for name, k in kernels.items()}
    rows = []
    for name, report in reports.items():
        fractions = report.stalls.fractions()
        rows.append({"kernel": name, "sm_util": report.sm_utilization,
                     **fractions})
    emit("")
    emit(render_table(rows, title="Fig. 11 — modeled GPU stall breakdown "
                                  "(scaled 10M/200M ER)"))

    # The paper's per-kernel dominant stalls.
    assert reports["rwalk"].stalls.dominant() == "compute_dependency"
    assert reports["word2vec"].stalls.dominant() == "memory_scoreboard"
    assert reports["train"].stalls.dominant() == "imc_miss"
    assert reports["test"].stalls.dominant() == "imc_miss"
    # Classifier SM utilization below 10% (§VII-B).
    assert reports["train"].sm_utilization < 0.1
    assert reports["test"].sm_utilization < 0.1
    # "65.5% of stall cycles across kernels are caused by IMC misses and
    # memory and compute dependencies" — check the three causes dominate.
    big3 = 0.0
    for report in reports.values():
        fractions = report.stalls.fractions()
        big3 += (fractions["imc_miss"] + fractions["compute_dependency"]
                 + fractions["memory_scoreboard"])
    big3 /= len(reports)
    emit(f"average share of IMC + compute-dep + memory-dep: {big3:.1%} "
         "(paper: 65.5%)")
    assert big3 > 0.5

    recorder = ExperimentRecorder("fig11_gpu_stalls")
    for name, report in reports.items():
        recorder.add(name, report.stalls.fractions())
        recorder.add(f"{name}_sm_util", report.sm_utilization)
    recorder.add("big3_average", big3)
    recorder.save()
