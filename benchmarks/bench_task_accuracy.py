"""§VII-A — end-to-end task accuracy across all six Table II datasets.

The paper's algorithmic study runs link prediction on ia-email /
wiki-talk / stackoverflow and node classification on dblp3 / dblp5 /
brain at the recommended operating point (K=10, L=6, d=8), observing
that "the performance on link prediction tasks is better than node
classification".  This bench runs the full pipeline on all six
dataset-shaped graphs and reports the accuracy table.
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import SgnsConfig
from repro.graph import generators
from repro.tasks import Pipeline, PipelineConfig
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.node_classification import NodeClassificationConfig
from repro.tasks.training import TrainSettings
from repro.walk import WalkConfig

from conftest import emit

TRAIN = TrainSettings(epochs=25, learning_rate=0.05)
CONFIG = PipelineConfig(
    walk=WalkConfig(num_walks_per_node=10, max_walk_length=6),
    sgns=SgnsConfig(dim=8, epochs=5),
    treat_undirected=True,
    link_prediction=LinkPredictionConfig(training=TRAIN),
    node_classification=NodeClassificationConfig(training=TRAIN),
)

LP_DATASETS = ["ia-email", "wiki-talk", "stackoverflow"]
NC_DATASETS = ["dblp3", "dblp5", "brain"]


def test_task_accuracy_all_datasets(benchmark):
    def run_all():
        import zlib

        rows = []
        for name in LP_DATASETS:
            edges = generators.dataset_by_name(
                name, seed=zlib.crc32(name.encode()) % 997)
            result = Pipeline(CONFIG).run_link_prediction(edges, seed=7)
            rows.append({
                "dataset": name, "task": "link prediction",
                "accuracy": result.accuracy,
                "auc": result.task_result.auc,
                "chance": 0.5,
            })
        for name in NC_DATASETS:
            dataset = generators.dataset_by_name(
                name, seed=zlib.crc32(name.encode()) % 997)
            result = Pipeline(CONFIG).run_node_classification(dataset, seed=7)
            chance = float(np.bincount(dataset.labels).max()
                           / len(dataset.labels))
            rows.append({
                "dataset": name, "task": "node classification",
                "accuracy": result.accuracy, "auc": None, "chance": chance,
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("")
    emit(render_table(rows, title="§VII-A — end-to-end accuracy at the "
                                  "recommended operating point"))

    lp = [r for r in rows if r["task"] == "link prediction"]
    nc = [r for r in rows if r["task"] == "node classification"]
    # Every task clearly beats its chance level.
    for row in rows:
        assert row["accuracy"] > row["chance"] + 0.15, row["dataset"]
    # LP AUC is strong everywhere.
    for row in lp:
        assert row["auc"] > 0.85, row["dataset"]
    # The paper's relative claim, in excess-over-chance terms: LP's mean
    # margin over chance is competitive with NC's.
    lp_margin = np.mean([r["accuracy"] - r["chance"] for r in lp])
    emit(f"mean margin over chance: LP {lp_margin:.3f}, "
         f"NC {np.mean([r['accuracy'] - r['chance'] for r in nc]):.3f}")
    assert lp_margin > 0.3

    recorder = ExperimentRecorder("task_accuracy_all_datasets")
    recorder.add("rows", rows)
    recorder.save()
