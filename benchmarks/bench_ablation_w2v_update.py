"""Ablation — stale-batch update combining in batched word2vec.

The paper asserts that concurrently updating the embedding model during
batching "does not result in an accuracy loss" because updates are
sparse.  On power-law graphs that is only true with care: hub rows
receive thousands of same-batch contributions.  This ablation runs the
batched trainer with each combining mode on the hub-heavy email graph
and shows:

- ``sum`` (naive accumulation) lets hub rows blow up or overshoot;
- ``mean`` is stable but starves convergence;
- ``capped`` (the library default) converges like the sequential
  trainer while staying bounded — recovering the paper's claim.
"""

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.graph import TemporalGraph
from repro.tasks import LinkPredictionTask
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.embedding.embeddings import NodeEmbeddings
from repro.walk import TemporalWalkEngine, WalkConfig

from conftest import emit

MODES = ["sum", "mean", "sqrt", "capped"]


def test_ablation_update_modes(benchmark, email_edges):
    graph = TemporalGraph.from_edge_list(email_edges.with_reverse_edges())
    corpus = TemporalWalkEngine(graph).run(WalkConfig(), seed=1)

    def train(mode):
        config = SgnsConfig(dim=8, epochs=4, update_mode=mode)
        trainer = BatchedSgnsTrainer(config, batch_sentences=1024)
        model = trainer.train(corpus, graph.num_nodes, seed=2)
        return model, trainer.last_stats

    benchmark.pedantic(lambda: train("capped"), rounds=1, iterations=1)

    task = LinkPredictionTask(LinkPredictionConfig(
        training=TrainSettings(epochs=15, learning_rate=0.05)))

    rows = []
    results = {}
    for mode in MODES:
        model, stats = train(mode)
        max_norm = float(np.abs(model.w_in).max())
        finite = bool(np.isfinite(model.w_in).all())
        if finite and max_norm < 1e3:
            auc = task.run(NodeEmbeddings(model.w_in), email_edges,
                           seed=3).auc
        else:
            auc = float("nan")
        results[mode] = {"max|v|": max_norm, "finite": finite,
                         "final loss": stats.losses[-1], "lp auc": auc}
        rows.append({"update mode": mode, **results[mode]})

    emit("")
    emit(render_table(rows, title="Stale-batch update-combining ablation "
                                  "(hub-heavy email graph, batch=1024)"))

    # capped converges (loss drops well below the ln2*(1+K) start)...
    assert results["capped"]["final loss"] < 3.5
    # ...stays bounded...
    assert results["capped"]["max|v|"] < 100
    # ...and yields a usable model.
    assert results["capped"]["lp auc"] > 0.8
    # mean under-trains relative to capped.
    assert results["mean"]["final loss"] > results["capped"]["final loss"]
    # sum runs hot: larger norms than capped on hub graphs.
    assert results["sum"]["max|v|"] >= results["capped"]["max|v|"]

    recorder = ExperimentRecorder("ablation_w2v_update")
    recorder.add("results", results)
    recorder.save()
