"""Extension bench — sharded scatter/gather serving: QPS vs shard count.

The sharded tier (:mod:`repro.serving.sharding`) claims that
partitioning the embedding space across worker processes converts
per-query scan time into parallel per-shard scans, at the cost of one
query-vector fetch plus a scatter/gather round-trip per request.  This
bench drives an exact-scan top-k workload (the worst case for the
router: every request pays the full fan-out, no result caching, no hot
set) against a 10^5-node store at 1, 2, and 4 shards and reports
aggregate QPS, client-side latency percentiles, and the router-side
``serving.shard.*`` breakdown.

Gate: 4 shards must deliver >= 2x the aggregate top-k QPS of the
1-shard configuration — enforced when the host has >= 4 cores to run
the workers on.  As with ``bench_parallel_scaling``, speedup on this
host is bounded by its core count, so the JSON record carries
``cpu_count`` to tell "the tier does not scale" apart from "the
machine has one core"; the fan-out correctness invariants (zero
errors, zero degraded gathers, full fan-in at every shard count) are
enforced unconditionally.  Saved to
``bench_results/serving_shards.json``.
"""

import os

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.observability import Recorder, use_recorder
from repro.serving import (
    ShardPlan,
    ShardedFrontend,
    ShardedPublisher,
    ShardedServingConfig,
    run_load,
)

from conftest import emit

NUM_NODES = 100_000
DIM = 64
CLIENTS = 16
REQUESTS = 1_500
SHARD_COUNTS = (1, 2, 4)

# No result cache and a uniform (hot-set-free) pure top-k workload:
# every request pays a full per-shard scan, so the curve isolates the
# scatter/gather scaling instead of cache behavior.
CONFIG = ShardedServingConfig(cache_size=0, default_k=10)


def _cores_available() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _build_matrix() -> np.ndarray:
    rng = np.random.default_rng(81)
    return rng.standard_normal((NUM_NODES, DIM))


def _drive(matrix: np.ndarray, num_shards: int,
           num_requests: int = REQUESTS):
    """One closed-loop run at ``num_shards``; returns (report, recorder)."""
    recorder = Recorder()
    with use_recorder(recorder):
        with ShardedFrontend(ShardPlan(num_shards, "range"),
                             CONFIG) as frontend:
            ShardedPublisher(frontend).publish(matrix, generation=0)
            report = run_load(
                frontend,
                num_requests=num_requests,
                clients=CLIENTS,
                topk_fraction=1.0,
                hot_fraction=0.0,
                seed=82,
            )
    return report, recorder


def _row(num_shards, report, recorder):
    fanin = recorder.histograms.get("serving.shard.gather_fanin")
    overhead = recorder.histograms.get("serving.shard.router_overhead_s")
    return {
        "shards": num_shards,
        "qps": round(report.qps, 1),
        "p50 ms": round(report.p50_ms, 3),
        "p99 ms": round(report.p99_ms, 3),
        "mean fan-in": round(fanin.mean, 2) if fanin else 0.0,
        "router ms": (round(overhead.mean * 1e3, 3)
                      if overhead and overhead.count else 0.0),
        "degraded": int(
            recorder.counters.get("serving.shard.degraded_queries", 0)),
        "errors": report.errors,
    }


def test_serving_shard_scaling(benchmark):
    matrix = _build_matrix()
    benchmark.pedantic(
        lambda: _drive(matrix, 2, num_requests=300),
        rounds=1, iterations=1,
    )

    rows = []
    reports = {}
    for num_shards in SHARD_COUNTS:
        report, recorder = _drive(matrix, num_shards)
        reports[num_shards] = report
        rows.append(_row(num_shards, report, recorder))
        assert report.errors == 0
        assert recorder.counters.get(
            "serving.shard.degraded_queries", 0) == 0
        fanin = recorder.histograms["serving.shard.gather_fanin"]
        assert fanin.mean == float(num_shards)

    cores = _cores_available()
    emit("")
    emit(render_table(
        rows,
        title=f"Sharded serving: aggregate top-k QPS vs shard count "
              f"({cores} cores available)",
    ))
    speedup = reports[4].qps / reports[1].qps
    emit(f"4-shard aggregate QPS speedup over 1 shard: {speedup:.2f}x")
    if cores >= 4:
        assert speedup >= 2.0, (
            f"4-shard speedup {speedup:.2f}x < 2x "
            f"({reports[4].qps:.0f} vs {reports[1].qps:.0f} qps)"
        )
    else:
        emit(f"speedup gate skipped: {cores} core(s) cannot run 4 "
             f"workers in parallel")

    recorder = ExperimentRecorder("serving_shards")
    recorder.add("cpu_count", cores)
    for row in rows:
        recorder.add(f"shards_{row['shards']}", row)
    recorder.add("speedup", {
        "four_shards_over_one": speedup,
        "gate_enforced": cores >= 4,
    })
    recorder.save()
