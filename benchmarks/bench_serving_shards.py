"""Extension bench — sharded scatter/gather serving: QPS vs shard count.

The sharded tier (:mod:`repro.serving.sharding`) claims that
partitioning the embedding space across worker processes converts
per-query scan time into parallel per-shard scans, at the cost of one
query-vector fetch plus a scatter/gather round-trip per request.  This
bench drives an exact-scan top-k workload (the worst case for the
router: every request pays the full fan-out, no result caching, no hot
set) against a 10^5-node store at 1, 2, and 4 shards and reports
aggregate QPS, client-side latency percentiles, and the router-side
``serving.shard.*`` breakdown.

Gate: 4 shards must deliver >= 2x the aggregate top-k QPS of the
1-shard configuration — enforced when the host has >= 4 cores to run
the workers on.  As with ``bench_parallel_scaling``, speedup on this
host is bounded by its core count, so the JSON record carries
``cpu_count`` to tell "the tier does not scale" apart from "the
machine has one core"; the fan-out correctness invariants (zero
errors, zero degraded gathers, full fan-in at every shard count) are
enforced unconditionally.

Two availability sections ride along (PR 9): killing one replica of
every shard mid-run under ``replication_factor=2`` must cost zero
errors and zero degraded queries (answers stay bit-identical to the
oracle), and a live ``rebalance()`` under closed-loop load must
complete with zero errors while the sampler records the rebalance
wall-time and the in-flight QPS dip.  All sections accumulate into
``bench_results/serving_shards.json``.
"""

import json
import os
import threading
import time

import numpy as np

from repro.bench import ExperimentRecorder, render_table
from repro.observability import Recorder, use_recorder
from repro.serving import (
    EmbeddingStore,
    RecommendationIndex,
    ShardPlan,
    ShardedFrontend,
    ShardedPublisher,
    ShardedServingConfig,
    run_load,
)

from conftest import emit

NUM_NODES = 100_000
DIM = 64
CLIENTS = 16
REQUESTS = 1_500
SHARD_COUNTS = (1, 2, 4)

# No result cache and a uniform (hot-set-free) pure top-k workload:
# every request pays a full per-shard scan, so the curve isolates the
# scatter/gather scaling instead of cache behavior.
CONFIG = ShardedServingConfig(cache_size=0, default_k=10)


def _recorder_with_existing() -> ExperimentRecorder:
    """``serving_shards`` recorder pre-seeded with the saved record.

    ``ExperimentRecorder.save`` overwrites the whole file, and three
    test functions contribute sections to it — each loads what the
    others already saved so the sections accumulate in any run order.
    """
    recorder = ExperimentRecorder("serving_shards")
    path = recorder.results_dir / "serving_shards.json"
    if path.exists():
        with open(path, encoding="utf-8") as handle:
            recorder.data.update(json.load(handle))
    return recorder


def _oracle_check(frontend, matrix: np.ndarray, nodes, k: int = 10) -> None:
    """Assert the tier answers bit-identically to the oracle for
    ``nodes``."""
    store = EmbeddingStore()
    store.publish(matrix, generation=0)
    oracle = RecommendationIndex(store, cache_size=0)
    for node in nodes:
        ids, scores = frontend.top_k(int(node), k)
        exp_ids, exp_scores = oracle.top_k(int(node), k)
        np.testing.assert_array_equal(ids, exp_ids)
        np.testing.assert_array_equal(scores, exp_scores)


def _cores_available() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _build_matrix() -> np.ndarray:
    rng = np.random.default_rng(81)
    return rng.standard_normal((NUM_NODES, DIM))


def _drive(matrix: np.ndarray, num_shards: int,
           num_requests: int = REQUESTS):
    """One closed-loop run at ``num_shards``; returns (report, recorder)."""
    recorder = Recorder()
    with use_recorder(recorder):
        with ShardedFrontend(ShardPlan(num_shards, "range"),
                             CONFIG) as frontend:
            ShardedPublisher(frontend).publish(matrix, generation=0)
            report = run_load(
                frontend,
                num_requests=num_requests,
                clients=CLIENTS,
                topk_fraction=1.0,
                hot_fraction=0.0,
                seed=82,
            )
    return report, recorder


def _row(num_shards, report, recorder):
    fanin = recorder.histograms.get("serving.shard.gather_fanin")
    overhead = recorder.histograms.get("serving.shard.router_overhead_s")
    return {
        "shards": num_shards,
        "qps": round(report.qps, 1),
        "p50 ms": round(report.p50_ms, 3),
        "p99 ms": round(report.p99_ms, 3),
        "mean fan-in": round(fanin.mean, 2) if fanin else 0.0,
        "router ms": (round(overhead.mean * 1e3, 3)
                      if overhead and overhead.count else 0.0),
        "degraded": int(
            recorder.counters.get("serving.shard.degraded_queries", 0)),
        "errors": report.errors,
    }


def test_serving_shard_scaling(benchmark):
    matrix = _build_matrix()
    benchmark.pedantic(
        lambda: _drive(matrix, 2, num_requests=300),
        rounds=1, iterations=1,
    )

    rows = []
    reports = {}
    for num_shards in SHARD_COUNTS:
        report, recorder = _drive(matrix, num_shards)
        reports[num_shards] = report
        rows.append(_row(num_shards, report, recorder))
        assert report.errors == 0
        assert recorder.counters.get(
            "serving.shard.degraded_queries", 0) == 0
        fanin = recorder.histograms["serving.shard.gather_fanin"]
        assert fanin.mean == float(num_shards)

    cores = _cores_available()
    emit("")
    emit(render_table(
        rows,
        title=f"Sharded serving: aggregate top-k QPS vs shard count "
              f"({cores} cores available)",
    ))
    speedup = reports[4].qps / reports[1].qps
    emit(f"4-shard aggregate QPS speedup over 1 shard: {speedup:.2f}x")
    if cores >= 4:
        assert speedup >= 2.0, (
            f"4-shard speedup {speedup:.2f}x < 2x "
            f"({reports[4].qps:.0f} vs {reports[1].qps:.0f} qps)"
        )
    else:
        emit(f"speedup gate skipped: {cores} core(s) cannot run 4 "
             f"workers in parallel")

    recorder = _recorder_with_existing()
    recorder.add("cpu_count", cores)
    for row in rows:
        recorder.add(f"shards_{row['shards']}", row)
    recorder.add("speedup", {
        "four_shards_over_one": speedup,
        "gate_enforced": cores >= 4,
    })
    recorder.save()


AVAIL_NODES = 20_000


def test_serving_replica_kill_availability(benchmark):
    """Kill one replica of every shard mid-run at R=2: zero errors,
    zero degraded queries, answers stay bit-identical to the oracle."""
    rng = np.random.default_rng(83)
    matrix = rng.standard_normal((AVAIL_NODES, DIM))
    plan = ShardPlan(2, "range")
    config = ShardedServingConfig(cache_size=0, default_k=10,
                                  replication_factor=2)
    recorder = Recorder()
    with use_recorder(recorder):
        with ShardedFrontend(plan, config) as frontend:
            ShardedPublisher(frontend).publish(matrix, generation=0)
            killed = threading.Event()

            def killer() -> None:
                time.sleep(0.15)
                for shard in range(plan.num_shards):
                    frontend.kill_replica(shard, 0)
                killed.set()

            thread = threading.Thread(target=killer, daemon=True)
            thread.start()
            report = benchmark.pedantic(
                lambda: run_load(frontend, num_requests=2_000,
                                 clients=CLIENTS, topk_fraction=1.0,
                                 hot_fraction=0.0, seed=84),
                rounds=1, iterations=1,
            )
            thread.join()
            assert killed.is_set()
            assert frontend.alive_workers == plan.num_shards
            # The halved tier still answers bit for bit.
            _oracle_check(frontend, matrix, (0, 1, 9_999, 19_999))
    degraded = int(recorder.counters.get(
        "serving.shard.degraded_queries", 0))
    failovers = int(recorder.counters.get(
        "serving.shard.replica.failovers", 0))
    assert report.errors == 0
    assert degraded == 0
    emit("")
    emit(f"replica kill: one replica of each of {plan.num_shards} "
         f"shards killed mid-run — {report.qps:.0f} qps, "
         f"{report.errors} errors, {degraded} degraded, "
         f"{failovers} failovers")

    saved = _recorder_with_existing()
    saved.add("replica_kill", {
        "shards": plan.num_shards,
        "replicas": config.replication_factor,
        "killed_replicas": plan.num_shards,
        "qps": round(report.qps, 1),
        "p99_ms": round(report.p99_ms, 3),
        "errors": report.errors,
        "degraded_queries": degraded,
        "failovers": failovers,
    })
    saved.save()


def test_serving_rebalance_availability(benchmark):
    """Live rebalance 2 -> 4 shards under closed-loop load: zero
    errors, zero degraded queries; records the rebalance wall-time and
    the in-flight QPS dip."""
    rng = np.random.default_rng(85)
    matrix = rng.standard_normal((AVAIL_NODES, DIM))
    config = ShardedServingConfig(cache_size=0, default_k=10)
    recorder = Recorder()
    samples: list[tuple[float, float]] = []
    window: list[float] = []
    stop_sampling = threading.Event()

    def sampler() -> None:
        while not stop_sampling.wait(0.05):
            samples.append((
                time.monotonic(),
                recorder.counters.get("serving.shard.requests.topk", 0),
            ))

    with use_recorder(recorder):
        with ShardedFrontend(ShardPlan(2, "range"), config) as frontend:
            ShardedPublisher(frontend).publish(matrix, generation=0)

            def rebalancer() -> None:
                time.sleep(0.3)
                t0 = time.monotonic()
                rebalanced = frontend.rebalance(ShardPlan(4, "range"))
                window.extend((t0, time.monotonic(),
                               rebalanced.seconds,
                               rebalanced.install_seconds))

            threads = [threading.Thread(target=sampler, daemon=True),
                       threading.Thread(target=rebalancer, daemon=True)]
            for thread in threads:
                thread.start()
            report = benchmark.pedantic(
                lambda: run_load(frontend, num_requests=3_000,
                                 clients=CLIENTS, topk_fraction=1.0,
                                 hot_fraction=0.0, seed=86),
                rounds=1, iterations=1,
            )
            stop_sampling.set()
            for thread in threads:
                thread.join()
            assert frontend.plan.num_shards == 4
            # The migrated tier still answers bit for bit.
            _oracle_check(frontend, matrix, (7, 4_242, 19_998))
    degraded = int(recorder.counters.get(
        "serving.shard.degraded_queries", 0))
    assert report.errors == 0
    assert degraded == 0
    assert len(window) == 4, "rebalance did not run inside the load window"
    t_start, t_end, rebalance_s, install_s = window

    # Per-sample-interval QPS: baseline outside the rebalance window vs
    # the worst interval overlapping it (recorded, not gated — the dip
    # is hardware- and load-dependent).
    in_dip, out = [], []
    for (t0, c0), (t1, c1) in zip(samples, samples[1:]):
        if t1 <= t0:
            continue
        qps = (c1 - c0) / (t1 - t0)
        (in_dip if t0 <= t_end and t1 >= t_start else out).append(qps)
    baseline = float(np.median(out)) if out else 0.0
    dip = float(min(in_dip)) if in_dip else baseline
    emit("")
    emit(f"rebalance 2 -> 4 shards under load: {rebalance_s:.3f}s wall "
         f"({install_s:.3f}s install), {report.errors} errors, "
         f"{degraded} degraded; QPS {baseline:.0f} baseline -> "
         f"{dip:.0f} worst in-flight interval")

    saved = _recorder_with_existing()
    saved.add("rebalance", {
        "from_shards": 2,
        "to_shards": 4,
        "rebalance_seconds": round(rebalance_s, 4),
        "install_seconds": round(install_s, 4),
        "qps": round(report.qps, 1),
        "errors": report.errors,
        "degraded_queries": degraded,
        "baseline_interval_qps": round(baseline, 1),
        "min_inflight_interval_qps": round(dip, 1),
        "dip_fraction": (round(1.0 - dip / baseline, 4)
                         if baseline > 0 else 0.0),
    })
    saved.save()
