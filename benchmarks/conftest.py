"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one paper table or figure: it prints the
rows/series the paper reports (shape reproduction, not absolute numbers)
and records them as JSON under ``bench_results/`` via
:class:`repro.bench.ExperimentRecorder`.
"""

from __future__ import annotations

import sys

import pytest

from repro.graph import TemporalGraph, generators


def emit(text: str) -> None:
    """Print benchmark output so it survives pytest capture settings."""
    print(text)
    sys.stdout.flush()


@pytest.fixture(scope="session")
def wiki_edges():
    """wiki-talk-shaped directed interaction graph (Fig. 4/5 input)."""
    return generators.wiki_talk_like(scale=0.003, seed=101)


@pytest.fixture(scope="session")
def wiki_graph(wiki_edges):
    return TemporalGraph.from_edge_list(wiki_edges)


@pytest.fixture(scope="session")
def stackoverflow_edges():
    """stackoverflow-shaped graph (Fig. 8a / Fig. 10 input)."""
    return generators.stackoverflow_like(scale=0.0005, seed=102)


@pytest.fixture(scope="session")
def email_edges():
    """ia-email-shaped graph (Fig. 8b-d / Fig. 9 input)."""
    return generators.ia_email_like(scale=0.005, seed=103)


@pytest.fixture(scope="session")
def er_graph_large():
    """Synthetic Erdos-Renyi hardware-study graph (Fig. 3/11, Table III).

    Scaled ~1:100 from the paper's 10M-node / 200M-edge input.
    """
    edges = generators.erdos_renyi_temporal(100_000, 2_000_000, seed=104)
    return TemporalGraph.from_edge_list(edges)
