"""Quickstart: end-to-end link prediction in a dozen lines.

Runs the paper's full pipeline (Fig. 1) — temporal random walks,
word2vec node embeddings, Fig. 7 data preparation, and the 2-layer FNN
classifier — on a synthetic Enron-email-shaped temporal graph, using the
paper's recommended hyperparameters (K=10 walks/node, walk length L=6,
embedding dimension d=8; §VII-A).

Run:  python examples/quickstart.py
"""

from repro import Pipeline, PipelineConfig, compute_stats, generators
from repro.graph import TemporalGraph


def main() -> None:
    edges = generators.ia_email_like(scale=0.01, seed=0)
    stats = compute_stats(TemporalGraph.from_edge_list(edges))
    print(f"input graph: {stats.num_nodes} nodes, {stats.num_edges} temporal "
          f"edges, max out-degree {stats.max_degree}")

    pipeline = Pipeline(PipelineConfig(treat_undirected=True))
    result = pipeline.run_link_prediction(edges, seed=0)

    print(result.summary())
    print(f"walk corpus: {result.corpus_num_walks} walks, mean length "
          f"{result.corpus_mean_length:.2f}")
    print(f"test accuracy {result.accuracy:.3f}, ROC-AUC "
          f"{result.task_result.auc:.3f}")


if __name__ == "__main__":
    main()
