"""Link prediction as product recommendation.

The paper motivates link prediction with product recommendation
("predict the presence/absence of an edge between a given pair of
nodes", §I).  This example plays that scenario end to end on a
stackoverflow-shaped interaction graph:

1. build the temporal graph and train node embeddings;
2. train the link-prediction FNN on past interactions, test on future
   ones (the Fig. 7 chronological split);
3. use the trained model to rank candidate "recommendations" for a few
   active users and show that held-out future interactions rank above
   random pairs.

Run:  python examples/link_prediction_recommendation.py
"""

import numpy as np

from repro import Pipeline, PipelineConfig, generators
from repro.bench import render_table
from repro.embedding import SgnsConfig
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings


def main() -> None:
    edges = generators.stackoverflow_like(scale=0.0003, seed=1)
    print(f"interaction graph: {edges.num_nodes} users, {len(edges)} "
          "timestamped interactions")

    config = PipelineConfig(
        sgns=SgnsConfig(dim=8, epochs=5),
        treat_undirected=True,
        link_prediction=LinkPredictionConfig(
            hidden_dim=32,
            training=TrainSettings(epochs=25, learning_rate=0.05),
        ),
    )
    pipeline = Pipeline(config)
    result = pipeline.run_link_prediction(edges, seed=2)
    print(result.summary())

    # Rank "recommendations" with the trained classifier: held-out
    # future-edge partners should score above random users.
    embeddings = result.embeddings
    task = result.task_result
    ordered = edges.sorted_by_time()
    future = ordered.take(np.arange(int(0.8 * len(ordered)), len(ordered)))
    rng = np.random.default_rng(3)

    sampled = rng.choice(len(future), size=min(8, len(future)), replace=False)
    users = future.src[sampled]
    partners = future.dst[sampled]
    randoms = rng.integers(0, edges.num_nodes, size=len(sampled))
    score_true = task.score_link(embeddings, users, partners)
    score_rand = task.score_link(embeddings, users, randoms)

    rows = [
        {
            "user": int(u),
            "future partner": int(p),
            "P(link|future)": float(st),
            "random user": int(r),
            "P(link|random)": float(sr),
        }
        for u, p, r, st, sr in zip(users, partners, randoms,
                                   score_true, score_rand)
    ]
    print()
    print(render_table(rows, title="Classifier scores: future partner vs "
                                   "random user"))
    better = int(np.sum(score_true > score_rand))
    print(f"\nfuture partners outscore random users for {better}/"
          f"{len(rows)} sampled interactions")

    # Ranking view: where does the true partner land among 20 random
    # candidates? (MRR / Hits@k, the recommender-system metrics.)
    from repro.tasks import rank_link_predictions

    metrics = rank_link_predictions(
        task, embeddings, future, num_negatives=20, max_queries=200,
        forbidden=edges.edge_key_set(), seed=4,
    )
    print(f"ranking over {metrics.num_candidates} candidates: "
          f"MRR {metrics.mrr:.3f}, "
          + ", ".join(f"Hits@{k} {v:.2f}"
                      for k, v in sorted(metrics.hits_at.items())))


if __name__ == "__main__":
    main()
