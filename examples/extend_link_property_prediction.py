"""Adding a new task to the pipeline (§VIII-B, Fig. 12).

The paper shows how a user extends the framework with link *property*
prediction (predicting edge labels) by reusing the random-walk and
word2vec stages and writing only the task-specific data preparation.
This example is exactly that: walks and embeddings come from the shared
`Pipeline.embed` stage, and `LinkPropertyPredictionTask` supplies the new
data-prep + classifier.

The synthetic scenario: a wiki-talk-shaped interaction graph whose edges
are labeled "in-community" or "cross-community" (derived from a hidden
partition of the nodes); the task must recover the label from endpoint
embeddings.

Run:  python examples/extend_link_property_prediction.py
"""

import numpy as np

from repro import PipelineConfig, generators
from repro.embedding import SgnsConfig
from repro.tasks import Pipeline
from repro.tasks.link_property import LinkPropertyConfig
from repro.tasks.training import TrainSettings


def main() -> None:
    edges = generators.wiki_talk_like(scale=0.002, seed=11)
    # Hidden node partition -> edge labels (the property to predict).
    rng = np.random.default_rng(12)
    community = rng.integers(0, 2, edges.num_nodes)
    edge_labels = (
        community[edges.src] == community[edges.dst]
    ).astype(np.int64)
    print(f"graph: {edges.num_nodes} nodes, {len(edges)} edges; "
          f"{edge_labels.mean():.1%} in-community edges")

    config = PipelineConfig(
        sgns=SgnsConfig(dim=8, epochs=4),
        treat_undirected=True,
        link_property=LinkPropertyConfig(
            hidden_dim=32,
            training=TrainSettings(epochs=20, learning_rate=0.05),
        ),
    )
    # Reuse of stages, as Fig. 12 sketches: same pipeline object, same
    # walk and word2vec phases, new downstream task.
    result = Pipeline(config).run_link_property_prediction(
        edges, edge_labels, seed=13
    )
    print(result.summary())
    majority = max(edge_labels.mean(), 1 - edge_labels.mean())
    print(f"test accuracy {result.accuracy:.3f} vs majority-label baseline "
          f"{majority:.3f}")


if __name__ == "__main__":
    main()
