"""Node classification: identifying a researcher's area from co-authorship.

The paper's node-classification application is "identifying the
professional role of a user" (§I); its datasets are DBLP co-author
networks labeled by research area (Table II).  This example runs the
pipeline on the dblp5-shaped dataset, then demonstrates the paper's core
premise — that modeling a dynamic graph as static loses information — on
a *drifting-community* graph: the identical embedding + classifier stack
runs on temporal walks vs static DeepWalk walks.  (On the stationary
dblp graph itself, timestamps carry no label signal and static walks do
fine; the drift is what temporal validity pays for.)

Run:  python examples/node_classification_dblp.py
"""

import numpy as np

from repro import generators
from repro.baselines import run_static_walks
from repro.bench import render_table
from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph
from repro.tasks import NodeClassificationTask
from repro.tasks.node_classification import NodeClassificationConfig
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig


def classify(embeddings, labels, seed):
    config = NodeClassificationConfig(
        training=TrainSettings(epochs=25, learning_rate=0.05)
    )
    return NodeClassificationTask(config).run(embeddings, labels, seed=seed)


def main() -> None:
    dataset = generators.dblp5_like(scale=0.25, seed=4)
    labels = dataset.labels
    print(f"{dataset.name}: {dataset.edges.num_nodes} authors, "
          f"{len(dataset.edges)} temporal co-author edges, "
          f"{dataset.num_classes} research areas")
    print("class sizes:", np.bincount(labels).tolist())

    graph = TemporalGraph.from_edge_list(dataset.edges.with_reverse_edges())
    walk_config = WalkConfig(num_walks_per_node=10, max_walk_length=6)
    sgns_config = SgnsConfig(dim=8, epochs=5)

    corpus = TemporalWalkEngine(graph).run(walk_config, seed=5)
    embeddings, _ = train_embeddings(
        corpus, graph.num_nodes, sgns_config, seed=6
    )
    result = classify(embeddings, labels, seed=7)
    chance = np.bincount(labels).max() / len(labels)
    print(f"\ndblp5 pipeline: {result.summary()} "
          f"(majority-class chance {chance:.3f})")

    # ---- temporal vs static on a graph whose communities drift ----
    drifting = generators.drifting_temporal_sbm(
        num_nodes=400, num_classes=4, relabel_fraction=0.5, seed=8
    )
    dgraph = TemporalGraph.from_edge_list(
        drifting.edges.with_reverse_edges()
    )
    late_biased = WalkConfig(
        num_walks_per_node=10, max_walk_length=6, bias="softmax-late"
    )
    rows = []
    for name, walk_corpus in (
        ("temporal (CTDNE)", TemporalWalkEngine(dgraph).run(late_biased,
                                                            seed=9)),
        ("static (DeepWalk)", run_static_walks(dgraph, late_biased, seed=9)),
    ):
        emb, _ = train_embeddings(
            walk_corpus, dgraph.num_nodes, sgns_config, seed=10
        )
        rows.append({
            "walks": name,
            "test accuracy": classify(emb, drifting.labels, seed=11).accuracy,
        })
    rows.append({
        "walks": "majority-class chance",
        "test accuracy": np.bincount(drifting.labels).max()
        / len(drifting.labels),
    })
    print()
    print(render_table(
        rows,
        title="Drifting communities (labels = final state): temporal vs "
              "static walks",
    ))


if __name__ == "__main__":
    main()
