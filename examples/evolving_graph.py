"""Maintaining embeddings over an evolving graph.

§VII-B motivates the end-to-end timing study with a deployment reality:
"the graph evolves over time.  With this evolution, an entire pipeline
needs to run to account for new nodes/connections."  This example plays
that deployment: an email-shaped interaction stream arrives in batches,
and two strategies keep the node embeddings fresh —

1. **full rebuild**: re-run walk + word2vec from scratch per batch (the
   paper's assumed mode);
2. **incremental**: re-walk only the nodes whose temporal neighborhoods
   changed and fine-tune the existing model
   (`repro.tasks.IncrementalEmbedder`).

After each batch, both strategies are evaluated by link prediction on
the graph so far.

Run:  python examples/evolving_graph.py
"""

import numpy as np

from repro import generators
from repro.bench import render_table
from repro.embedding import SgnsConfig
from repro.graph import DynamicTemporalGraph
from repro.tasks import LinkPredictionTask
from repro.tasks.incremental import IncrementalEmbedder
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.walk import WalkConfig


def main() -> None:
    edges = generators.ia_email_like(scale=0.008, seed=20).sorted_by_time()
    cut = int(0.5 * len(edges))
    initial = edges.take(np.arange(cut))
    remaining = len(edges) - cut
    batches = [
        edges.take(np.arange(cut + i * remaining // 3,
                             cut + (i + 1) * remaining // 3))
        for i in range(3)
    ]
    print(f"initial graph: {initial.num_nodes} nodes, {len(initial)} edges; "
          f"then {len(batches)} arriving batches of ~{len(batches[0])} edges")

    task = LinkPredictionTask(LinkPredictionConfig(
        training=TrainSettings(epochs=12, learning_rate=0.05)))

    rows = []
    for strategy in ("incremental", "full rebuild"):
        dynamic = DynamicTemporalGraph(initial)
        embedder = IncrementalEmbedder(
            dynamic,
            walk_config=WalkConfig(num_walks_per_node=6, max_walk_length=6),
            sgns_config=SgnsConfig(dim=8, epochs=3),
            seed=21,
        )
        embedder.rebuild()
        for batch_index, batch in enumerate(batches):
            dynamic.append(batch)
            if strategy == "incremental":
                report = embedder.update()
            else:
                report = embedder.rebuild()
            auc = task.run(embedder.embeddings, dynamic.edge_list(),
                           seed=22).auc
            rows.append({
                "strategy": strategy,
                "batch": batch_index + 1,
                "nodes re-walked": report.affected_nodes,
                "update sec": round(report.seconds, 3),
                "lp auc": round(auc, 3),
            })

    print()
    print(render_table(rows, title="Per-batch maintenance cost and quality"))
    inc = [r for r in rows if r["strategy"] == "incremental"]
    reb = [r for r in rows if r["strategy"] == "full rebuild"]
    speedup = np.mean([r["update sec"] for r in reb]) / max(
        1e-9, np.mean([r["update sec"] for r in inc]))
    print(f"\nincremental updates are {speedup:.1f}x cheaper per batch, "
          f"final AUC {inc[-1]['lp auc']} vs {reb[-1]['lp auc']} for "
          "full rebuilds")


if __name__ == "__main__":
    main()
