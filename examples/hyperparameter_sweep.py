"""Finding the accuracy-complexity sweet spot (the Fig. 8 methodology).

The paper's algorithmic study sweeps walks/node, walk length and
embedding dimension, and reads off the saturation points (K=10, L=6,
d=8) that balance accuracy against runtime.  This example runs the same
methodology through the library's sweep API on an email-shaped graph
and reports each parameter's saturation point.

Run:  python examples/hyperparameter_sweep.py
"""

from repro import generators
from repro.bench import render_table
from repro.embedding import SgnsConfig
from repro.tasks import sweep_hyperparameter
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.walk import WalkConfig

SWEEPS = {
    "num_walks": [1, 2, 4, 8, 12, 16],
    "walk_length": [2, 3, 4, 6, 8],
    "dimension": [1, 2, 4, 8, 16, 32],
}


def main() -> None:
    # A low-burstiness interaction graph: future edges are not dominated
    # by repeats of past pairs, so hyperparameters have room to matter
    # (heavily bursty graphs saturate every sweep immediately).
    edges = generators.activity_driven_temporal(
        1200, 9000, seed=40, burstiness=0.1, growth=1.5
    )
    print(f"dataset: interaction-shaped, {edges.num_nodes} nodes, "
          f"{len(edges)} edges; task: link prediction")

    settings = dict(
        seeds=(1, 2),
        base_walk=WalkConfig(num_walks_per_node=10, max_walk_length=6),
        base_sgns=SgnsConfig(dim=8, epochs=5),
        lp_config=LinkPredictionConfig(
            training=TrainSettings(epochs=15, learning_rate=0.05)
        ),
    )

    knee_rows = []
    for parameter, values in SWEEPS.items():
        result = sweep_hyperparameter(parameter, values, edges, **settings)
        print()
        print(render_table(result.rows(),
                           title=f"accuracy vs {parameter}"))
        knee_rows.append({
            "parameter": parameter,
            "saturation point": result.saturation_point(tolerance=0.01),
            "paper's choice": {"num_walks": 10, "walk_length": 6,
                               "dimension": 8}[parameter],
        })

    print()
    print(render_table(knee_rows, title="Saturation points vs the paper's "
                                        "recommended operating point"))


if __name__ == "__main__":
    main()
