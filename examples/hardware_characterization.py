"""Hardware characterization of the pipeline's kernels.

Reproduces, on one synthetic Erdos-Renyi graph, the paper's hardware
study in miniature: the per-kernel dynamic instruction mix (Fig. 9), the
modeled GPU stall breakdown (Fig. 11), and the CPU thread-scaling curve
under static vs work-stealing scheduling (Fig. 10) — all driven by the
statistics the real kernels just produced.

Run:  python examples/hardware_characterization.py
"""

from repro import generators
from repro.bench import render_table
from repro.embedding import BatchedSgnsTrainer, SgnsConfig
from repro.graph import TemporalGraph
from repro.hwmodel import (
    classifier_kernel,
    profile_classifier,
    profile_random_walk,
    profile_word2vec,
    scaling_curve,
    walk_kernel,
    word2vec_kernel,
)
from repro.walk import TemporalWalkEngine, WalkConfig


def main() -> None:
    edges = generators.erdos_renyi_temporal(20_000, 400_000, seed=8)
    graph = TemporalGraph.from_edge_list(edges)
    print(f"synthetic ER graph: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges")

    engine = TemporalWalkEngine(graph)
    corpus = engine.run(WalkConfig(), seed=9)
    walk_stats = engine.last_stats

    sgns = SgnsConfig(dim=8, epochs=1)
    trainer = BatchedSgnsTrainer(sgns, batch_sentences=2048)
    trainer.train(corpus, graph.num_nodes, seed=10)
    w2v_stats = trainer.last_stats

    classifier_dims = [(16, 32), (32, 1)]

    # Fig. 9: dynamic instruction mixes.
    profiles = [
        profile_random_walk(walk_stats),
        profile_word2vec(w2v_stats, sgns),
        profile_classifier("train", classifier_dims, 50_000, 128, True),
        profile_classifier("test", classifier_dims, 10_000, 1024, False),
    ]
    rows = [{"kernel": p.name, **{k: round(v, 3) for k, v in
                                  p.fractions().items()}} for p in profiles]
    print()
    print(render_table(rows, title="Dynamic instruction mix per kernel "
                                   "(Fig. 9 analogue)"))

    # Fig. 11: modeled GPU stall breakdown.
    kernels = [
        walk_kernel(walk_stats, graph),
        word2vec_kernel(w2v_stats, sgns, graph.num_nodes, 2048),
        classifier_kernel("train", classifier_dims, 128, 50_000, True),
        classifier_kernel("test", classifier_dims, 1024, 10_000, False),
    ]
    rows = []
    for kernel in kernels:
        report = kernel.report()
        fractions = report.stalls.fractions()
        rows.append({
            "kernel": report.name,
            "dominant stall": report.stalls.dominant(),
            "share": round(max(fractions.values()), 2),
            "sm util": round(report.sm_utilization, 3),
        })
    print()
    print(render_table(rows, title="Modeled GPU stalls per kernel "
                                   "(Fig. 11 analogue)"))

    # Fig. 10: thread scaling over measured per-vertex work.
    work = walk_stats.work_per_start_node + 1.0
    threads = [1, 2, 4, 8, 16, 32, 64, 128, 256]
    dynamic = scaling_curve(work, threads, policy="dynamic")
    static = scaling_curve(work, threads, policy="static")
    rows = [{"threads": t,
             "work-stealing": round(dynamic[t], 1),
             "static": round(static[t], 1)} for t in threads]
    print()
    print(render_table(rows, title="Walk-kernel thread scaling "
                                   "(Fig. 10 analogue)"))


if __name__ == "__main__":
    main()
