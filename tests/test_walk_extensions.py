"""Unit tests for walk-engine extensions: time windows and edge starts."""

import numpy as np
import pytest

from repro.errors import WalkError
from repro.graph import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.walk import TemporalWalkEngine, WalkConfig


class TestTimeWindow:
    def test_invalid_window_rejected(self):
        with pytest.raises(WalkError):
            WalkConfig(time_window=0.0)

    def test_window_excludes_distant_edges(self):
        # 0 -> 1 at 0.1; from 1: edges at 0.15 (near) and 0.9 (far).
        edges = TemporalEdgeList(
            [0, 1, 1], [1, 2, 3], [0.1, 0.15, 0.9]
        )
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=50, max_walk_length=3,
                            time_window=0.1)
        corpus = TemporalWalkEngine(graph).run(
            config, seed=1, start_nodes=np.array([0])
        )
        third = corpus.matrix[corpus.lengths == 3, 2]
        assert set(third.tolist()) == {2}  # node 3's edge is out of window

    def test_no_window_reaches_both(self):
        edges = TemporalEdgeList(
            [0, 1, 1], [1, 2, 3], [0.1, 0.15, 0.9]
        )
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=100, max_walk_length=3)
        corpus = TemporalWalkEngine(graph).run(
            config, seed=1, start_nodes=np.array([0])
        )
        third = corpus.matrix[corpus.lengths == 3, 2]
        assert set(third.tolist()) == {2, 3}

    def test_first_hop_unconstrained(self):
        # The walk clock starts at -inf; the window must not bind there.
        edges = TemporalEdgeList([0], [1], [0.9])
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=5, max_walk_length=2,
                            time_window=0.01)
        corpus = TemporalWalkEngine(graph).run(
            config, seed=1, start_nodes=np.array([0])
        )
        assert np.all(corpus.lengths == 2)

    def test_window_shortens_walks(self, email_graph):
        narrow = TemporalWalkEngine(email_graph).run(
            WalkConfig(time_window=0.02), seed=2
        )
        wide = TemporalWalkEngine(email_graph).run(WalkConfig(), seed=2)
        assert narrow.lengths.mean() <= wide.lengths.mean()

    def test_windowed_walks_still_temporally_valid(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=5, max_walk_length=5,
                            time_window=0.3)
        corpus = TemporalWalkEngine(tiny_graph).run(config, seed=3)
        assert corpus.validate_temporal_order(tiny_graph)


class TestEdgeStarts:
    def test_contract(self, email_graph):
        config = WalkConfig(num_walks_per_node=1, max_walk_length=6)
        corpus = TemporalWalkEngine(email_graph).run_from_edges(
            config, num_walks=500, seed=4
        )
        assert corpus.num_walks == 500
        # Every walk starts with a real edge, so length >= 2.
        assert corpus.lengths.min() >= 2
        assert corpus.validate_temporal_order(email_graph)

    def test_first_hop_is_a_real_edge(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=1, max_walk_length=4)
        corpus = TemporalWalkEngine(tiny_graph).run_from_edges(
            config, num_walks=100, seed=5
        )
        keys = tiny_graph.edge_key_set()
        for i in range(corpus.num_walks):
            walk = corpus.walk(i)
            assert (int(walk[0]), int(walk[1])) in keys

    def test_late_bias_prefers_late_initial_edges(self):
        edges = TemporalEdgeList([0, 1], [1, 0], [0.05, 0.95])
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=1, max_walk_length=2,
                            bias="softmax-late", temperature=0.1)
        corpus = TemporalWalkEngine(graph).run_from_edges(
            config, num_walks=4000, seed=6
        )
        late_share = np.mean(corpus.matrix[:, 0] == 1)
        assert late_share > 0.9

    def test_empty_graph_rejected(self):
        graph = TemporalGraph.from_edge_list(TemporalEdgeList([], [], []))
        with pytest.raises(WalkError):
            TemporalWalkEngine(graph).run_from_edges(WalkConfig(), 10)

    def test_invalid_num_walks(self, tiny_graph):
        with pytest.raises(WalkError):
            TemporalWalkEngine(tiny_graph).run_from_edges(WalkConfig(), 0)

    def test_length_one_cap(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=1, max_walk_length=1)
        engine = TemporalWalkEngine(tiny_graph)
        corpus = engine.run_from_edges(config, num_walks=10, seed=7)
        assert np.all(corpus.lengths == 1)
        # No hop taken: no scan work may be booked either.
        assert engine.last_stats.total_steps == 0
        assert engine.last_stats.candidates_scanned == 0


class TestEdgeStartCounters:
    """Regression: the initial hop must be booked into every counter.

    Pre-fix, ``run_from_edges`` added the initial hop to ``total_steps``
    but never to ``candidates_scanned`` / ``work_per_start_node`` /
    ``search_iterations``, skewing ``mean_candidates_per_step`` and the
    hwmodel (Fig. 9-10) inputs for edge-start corpora.
    """

    def test_initial_hop_scan_work_booked(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=1, max_walk_length=2)
        engine = TemporalWalkEngine(tiny_graph)
        corpus = engine.run_from_edges(config, num_walks=64, seed=8)
        stats = engine.last_stats
        # At clock -inf the whole slice of each start node is valid.
        degrees = np.diff(tiny_graph.indptr)
        starts = corpus.start_nodes
        assert stats.total_steps == 64
        assert stats.candidates_scanned == int(degrees[starts].sum())
        expected_work = np.zeros(tiny_graph.num_nodes, dtype=np.int64)
        np.add.at(expected_work, starts, degrees[starts])
        assert np.array_equal(stats.work_per_start_node, expected_work)
        assert stats.search_iterations > 0
        assert stats.mean_candidates_per_step > 0

    def test_edge_start_matches_node_start_accounting(self, email_graph):
        """One-hop edge-start runs book exactly what node-start runs
        book from the same multiset of start nodes."""
        config = WalkConfig(num_walks_per_node=1, max_walk_length=2)
        edge_engine = TemporalWalkEngine(email_graph)
        corpus = edge_engine.run_from_edges(config, num_walks=200, seed=9)
        edge_stats = edge_engine.last_stats

        node_engine = TemporalWalkEngine(email_graph)
        node_engine.run(config, seed=10, start_nodes=corpus.start_nodes)
        node_stats = node_engine.last_stats

        assert edge_stats.total_steps == node_stats.total_steps
        assert edge_stats.candidates_scanned == node_stats.candidates_scanned
        assert edge_stats.search_iterations == node_stats.search_iterations
        assert np.array_equal(edge_stats.work_per_start_node,
                              node_stats.work_per_start_node)

    def test_owner_array_reused_across_calls(self, tiny_graph):
        engine = TemporalWalkEngine(tiny_graph)
        owner = engine._edge_owner()
        assert engine._edge_owner() is owner
        config = WalkConfig(num_walks_per_node=1, max_walk_length=3)
        engine.run_from_edges(config, num_walks=10, seed=11)
        assert engine._edge_owner() is owner


class TestLinearInitialEdgeBias:
    """Regression: ``bias='linear'`` silently fell back to uniform
    initial-edge sampling; it now draws from the global rank-linear
    distribution (weight n - rank, rank 0 = earliest timestamp)."""

    def test_linear_prefers_early_initial_edges(self):
        edges = TemporalEdgeList([0, 1], [1, 0], [0.05, 0.95])
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=1, max_walk_length=2,
                            bias="linear")
        corpus = TemporalWalkEngine(graph).run_from_edges(
            config, num_walks=6000, seed=12
        )
        # Weights 2:1 for the early edge (src 0) -> share ~= 2/3.
        early_share = np.mean(corpus.matrix[:, 0] == 0)
        assert 0.62 < early_share < 0.71

    def test_linear_rank_distribution_matches_closed_form(self):
        # 4 single-edge sources; ranks by time map 1:1 to sources.
        edges = TemporalEdgeList(
            [0, 1, 2, 3], [1, 2, 3, 0], [0.1, 0.2, 0.3, 0.4]
        )
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=1, max_walk_length=2,
                            bias="linear")
        corpus = TemporalWalkEngine(graph).run_from_edges(
            config, num_walks=20000, seed=13
        )
        shares = np.bincount(corpus.matrix[:, 0], minlength=4) / 20000
        expected = np.array([4, 3, 2, 1]) / 10.0
        assert np.allclose(shares, expected, atol=0.02)

    def test_linear_walks_stay_temporally_valid(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=1, max_walk_length=5,
                            bias="linear")
        corpus = TemporalWalkEngine(tiny_graph).run_from_edges(
            config, num_walks=100, seed=14
        )
        assert corpus.validate_temporal_order(tiny_graph)
