"""Unit tests for walk-engine extensions: time windows and edge starts."""

import numpy as np
import pytest

from repro.errors import WalkError
from repro.graph import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.walk import TemporalWalkEngine, WalkConfig


class TestTimeWindow:
    def test_invalid_window_rejected(self):
        with pytest.raises(WalkError):
            WalkConfig(time_window=0.0)

    def test_window_excludes_distant_edges(self):
        # 0 -> 1 at 0.1; from 1: edges at 0.15 (near) and 0.9 (far).
        edges = TemporalEdgeList(
            [0, 1, 1], [1, 2, 3], [0.1, 0.15, 0.9]
        )
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=50, max_walk_length=3,
                            time_window=0.1)
        corpus = TemporalWalkEngine(graph).run(
            config, seed=1, start_nodes=np.array([0])
        )
        third = corpus.matrix[corpus.lengths == 3, 2]
        assert set(third.tolist()) == {2}  # node 3's edge is out of window

    def test_no_window_reaches_both(self):
        edges = TemporalEdgeList(
            [0, 1, 1], [1, 2, 3], [0.1, 0.15, 0.9]
        )
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=100, max_walk_length=3)
        corpus = TemporalWalkEngine(graph).run(
            config, seed=1, start_nodes=np.array([0])
        )
        third = corpus.matrix[corpus.lengths == 3, 2]
        assert set(third.tolist()) == {2, 3}

    def test_first_hop_unconstrained(self):
        # The walk clock starts at -inf; the window must not bind there.
        edges = TemporalEdgeList([0], [1], [0.9])
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=5, max_walk_length=2,
                            time_window=0.01)
        corpus = TemporalWalkEngine(graph).run(
            config, seed=1, start_nodes=np.array([0])
        )
        assert np.all(corpus.lengths == 2)

    def test_window_shortens_walks(self, email_graph):
        narrow = TemporalWalkEngine(email_graph).run(
            WalkConfig(time_window=0.02), seed=2
        )
        wide = TemporalWalkEngine(email_graph).run(WalkConfig(), seed=2)
        assert narrow.lengths.mean() <= wide.lengths.mean()

    def test_windowed_walks_still_temporally_valid(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=5, max_walk_length=5,
                            time_window=0.3)
        corpus = TemporalWalkEngine(tiny_graph).run(config, seed=3)
        assert corpus.validate_temporal_order(tiny_graph)


class TestEdgeStarts:
    def test_contract(self, email_graph):
        config = WalkConfig(num_walks_per_node=1, max_walk_length=6)
        corpus = TemporalWalkEngine(email_graph).run_from_edges(
            config, num_walks=500, seed=4
        )
        assert corpus.num_walks == 500
        # Every walk starts with a real edge, so length >= 2.
        assert corpus.lengths.min() >= 2
        assert corpus.validate_temporal_order(email_graph)

    def test_first_hop_is_a_real_edge(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=1, max_walk_length=4)
        corpus = TemporalWalkEngine(tiny_graph).run_from_edges(
            config, num_walks=100, seed=5
        )
        keys = tiny_graph.edge_key_set()
        for i in range(corpus.num_walks):
            walk = corpus.walk(i)
            assert (int(walk[0]), int(walk[1])) in keys

    def test_late_bias_prefers_late_initial_edges(self):
        edges = TemporalEdgeList([0, 1], [1, 0], [0.05, 0.95])
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=1, max_walk_length=2,
                            bias="softmax-late", temperature=0.1)
        corpus = TemporalWalkEngine(graph).run_from_edges(
            config, num_walks=4000, seed=6
        )
        late_share = np.mean(corpus.matrix[:, 0] == 1)
        assert late_share > 0.9

    def test_empty_graph_rejected(self):
        graph = TemporalGraph.from_edge_list(TemporalEdgeList([], [], []))
        with pytest.raises(WalkError):
            TemporalWalkEngine(graph).run_from_edges(WalkConfig(), 10)

    def test_invalid_num_walks(self, tiny_graph):
        with pytest.raises(WalkError):
            TemporalWalkEngine(tiny_graph).run_from_edges(WalkConfig(), 0)

    def test_length_one_cap(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=1, max_walk_length=1)
        corpus = TemporalWalkEngine(tiny_graph).run_from_edges(
            config, num_walks=10, seed=7
        )
        assert np.all(corpus.lengths == 1)
