"""Unit tests for the link-prediction task."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.tasks.link_prediction import (
    LinkPredictionConfig,
    LinkPredictionTask,
    build_link_prediction_model,
)
from repro.tasks.training import TrainSettings


class TestModelArchitecture:
    def test_two_layers(self):
        model = build_link_prediction_model(16, 32, seed=1)
        linears = [l for l in model.layers if isinstance(l, Linear)]
        assert len(linears) == 2
        assert linears[0].in_features == 16
        assert linears[1].out_features == 1


class TestTaskRun:
    @pytest.fixture(scope="class")
    def result(self, email_embeddings, email_edges):
        config = LinkPredictionConfig(
            hidden_dim=16,
            training=TrainSettings(epochs=12, learning_rate=0.05),
        )
        return LinkPredictionTask(config).run(
            email_embeddings, email_edges, seed=3
        )

    def test_beats_chance(self, result):
        assert result.accuracy > 0.6
        assert result.auc > 0.65

    def test_timings_recorded(self, result):
        assert result.data_prep_seconds > 0
        assert result.train_seconds > 0
        assert result.test_seconds >= 0

    def test_history_length(self, result):
        assert result.history.epochs_run == 12

    def test_balanced_test_set(self, result, email_edges):
        # Test partition holds 20% positives plus equal negatives.
        expected = 2 * round(0.2 * len(email_edges))
        assert result.num_test == pytest.approx(expected, abs=4)

    def test_summary_text(self, result):
        text = result.summary()
        assert "link-prediction" in text
        assert "accuracy" in text

    def test_target_accuracy_stops_early(self, email_embeddings, email_edges):
        config = LinkPredictionConfig(
            training=TrainSettings(
                epochs=40, learning_rate=0.05, target_accuracy=0.55
            )
        )
        result = LinkPredictionTask(config).run(
            email_embeddings, email_edges, seed=4
        )
        assert result.history.stopped_early
        assert result.history.epochs_run < 40

    def test_deterministic_by_seed(self, email_embeddings, email_edges):
        config = LinkPredictionConfig(
            training=TrainSettings(epochs=3, learning_rate=0.05)
        )
        a = LinkPredictionTask(config).run(email_embeddings, email_edges, seed=5)
        b = LinkPredictionTask(config).run(email_embeddings, email_edges, seed=5)
        assert a.accuracy == b.accuracy
