"""Tests for the frontier-batched window-table walk kernel.

The contract under test (see ``docs/walk_kernels.md``): the batched
kernel is a drop-in replacement for the oracle engine — *bit-identical*
walks for the uniform and linear biases (both consume one rng draw per
active walk per step with the same arithmetic), and exactly the oracle's
softmax distribution (same cumulative-table numerics) for the softmax
biases, across directions, time windows, and window-table resolutions.
"""

import numpy as np
import pytest

from repro.errors import WalkError
from repro.graph import TemporalGraph, generators
from repro.graph.edges import TemporalEdgeList
from repro.walk import (
    KERNEL_CHOICES,
    BatchedWalkEngine,
    TemporalWalkEngine,
    WalkConfig,
    make_walk_engine,
    transition_probabilities,
)

pytestmark = pytest.mark.kernels


@pytest.fixture(scope="module")
def hub_graph():
    """Hub-heavy graph: deep slices exercise the window search."""
    edges = generators.ia_email_like(scale=0.004, seed=23)
    return TemporalGraph.from_edge_list(edges.with_reverse_edges())


def _corpora_equal(a, b):
    return (
        np.array_equal(a.matrix, b.matrix)
        and np.array_equal(a.lengths, b.lengths)
        and np.array_equal(a.start_nodes, b.start_nodes)
    )


class TestFactory:
    def test_kernel_choices(self):
        assert {"cdf", "gumbel", "batched"} <= KERNEL_CHOICES

    def test_selects_engine_class(self, tiny_graph):
        assert isinstance(
            make_walk_engine(tiny_graph, sampler="batched"), BatchedWalkEngine
        )
        base = make_walk_engine(tiny_graph, sampler="gumbel")
        assert type(base) is TemporalWalkEngine
        assert base.sampler == "gumbel"

    def test_unknown_sampler_rejected(self, tiny_graph):
        with pytest.raises(WalkError, match="unknown sampler"):
            make_walk_engine(tiny_graph, sampler="alias")


class TestBitIdentical:
    """Uniform and linear draws replay the oracle's rng stream exactly."""

    @pytest.mark.parametrize("bias", ["uniform", "linear"])
    @pytest.mark.parametrize("time_window", [None, 0.3])
    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_run(self, hub_graph, bias, time_window, direction):
        cfg = WalkConfig(
            bias=bias, num_walks_per_node=3, max_walk_length=6,
            time_window=time_window, direction=direction,
        )
        base = TemporalWalkEngine(hub_graph).run(cfg, seed=5)
        bat = BatchedWalkEngine(hub_graph).run(cfg, seed=5)
        assert _corpora_equal(base, bat)

    def test_run_from_edges(self, hub_graph):
        cfg = WalkConfig(bias="uniform", max_walk_length=6)
        base = TemporalWalkEngine(hub_graph).run_from_edges(
            cfg, num_walks=500, seed=9
        )
        bat = BatchedWalkEngine(hub_graph).run_from_edges(
            cfg, num_walks=500, seed=9
        )
        assert _corpora_equal(base, bat)

    def test_allow_equal_and_start_time(self, hub_graph):
        cfg = WalkConfig(
            bias="uniform", num_walks_per_node=2, max_walk_length=5,
            allow_equal=True, time_window=0.5,
        )
        t0 = float(np.median(hub_graph.ts))
        base = TemporalWalkEngine(hub_graph).run(cfg, seed=3, start_time=t0)
        bat = BatchedWalkEngine(hub_graph).run(cfg, seed=3, start_time=t0)
        assert _corpora_equal(base, bat)


class TestSuccessorTable:
    """Table bounds equal a brute-force scan for every edge and key."""

    @pytest.mark.parametrize("direction", ["forward", "backward"])
    @pytest.mark.parametrize("allow_equal", [False, True])
    @pytest.mark.parametrize("time_window", [None, 0.25])
    def test_exact(self, hub_graph, direction, allow_equal, time_window):
        g = hub_graph
        cfg = WalkConfig(
            direction=direction, allow_equal=allow_equal,
            time_window=time_window,
        )
        table = BatchedWalkEngine(g)._successor_table(cfg)
        rng = np.random.default_rng(0)
        for e in rng.integers(0, g.num_edges, size=64):
            dst = int(g.dst[e])
            t = float(g.ts[e])
            base, end = int(g.indptr[dst]), int(g.indptr[dst + 1])
            ts = g.ts[base:end]
            if direction == "forward":
                valid = ts >= t if allow_equal else ts > t
                if time_window is not None:
                    valid &= ts <= t + time_window
            else:
                valid = ts <= t if allow_equal else ts < t
                if time_window is not None:
                    valid &= ts >= t - time_window
            idx = np.flatnonzero(valid)
            lo, hi = int(table.lo[e]), int(table.hi[e])
            if len(idx):
                assert (lo, hi) == (base + idx[0], base + idx[-1] + 1)
            else:
                assert lo >= hi

    def test_cached_per_key(self, tiny_graph):
        engine = BatchedWalkEngine(tiny_graph)
        a = engine._successor_table(WalkConfig())
        b = engine._successor_table(WalkConfig(bias="uniform"))
        assert a is b  # key is (direction, allow_equal, time_window)
        c = engine._successor_table(WalkConfig(time_window=0.5))
        assert c is not a


class TestSoftmaxDistribution:
    """Sampled transitions match the analytic Eq. 1 distribution."""

    @pytest.mark.parametrize("bias", ["softmax-recency", "softmax-late"])
    @pytest.mark.parametrize("num_windows", [1, 3, 64])
    def test_first_step_matches_analytic(self, hub_graph, bias, num_windows):
        g = hub_graph
        hub = int(np.argmax(np.diff(g.indptr)))
        cfg = WalkConfig(
            bias=bias, num_walks_per_node=1, max_walk_length=2,
            num_windows=num_windows,
        )
        n = 30000
        corpus = BatchedWalkEngine(g).run(
            cfg, seed=17, start_nodes=np.full(n, hub, dtype=np.int64)
        )
        nxt = corpus.matrix[corpus.lengths > 1, 1]
        lo, hi = int(g.indptr[hub]), int(g.indptr[hub + 1])
        span = g.time_span() or 1.0
        p = transition_probabilities(g.ts[lo:hi], bias, span)
        want = np.zeros(g.num_nodes)
        np.add.at(want, g.dst[lo:hi], p)
        got = np.bincount(nxt, minlength=g.num_nodes) / len(nxt)
        # Total variation of an empirical multinomial over a hub with
        # hundreds of destinations is a few percent pure noise at this
        # sample size; a biased sampler shows up an order above that.
        assert 0.5 * np.abs(want - got).sum() < 0.06

    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_windowed_matches_oracle(self, hub_graph, direction):
        # Under a finite clock + time window, compare next-node
        # histograms against the oracle engine drawing from the same
        # truncated range.
        g = hub_graph
        hub = int(np.argmax(np.diff(g.indptr)))
        t0 = float(np.median(g.ts))
        cfg = WalkConfig(
            bias="softmax-recency", num_walks_per_node=1, max_walk_length=2,
            time_window=0.3, direction=direction,
        )
        starts = np.full(20000, hub, dtype=np.int64)
        a = TemporalWalkEngine(g).run(cfg, seed=21, start_nodes=starts,
                                      start_time=t0)
        b = BatchedWalkEngine(g).run(cfg, seed=22, start_nodes=starts,
                                     start_time=t0)
        fa = a.matrix[a.lengths > 1, 1]
        fb = b.matrix[b.lengths > 1, 1]
        assert abs(len(fa) - len(fb)) == 0  # termination is deterministic
        ha = np.bincount(fa, minlength=g.num_nodes) / max(len(fa), 1)
        hb = np.bincount(fb, minlength=g.num_nodes) / max(len(fb), 1)
        assert 0.5 * np.abs(ha - hb).sum() < 0.08

    def test_forced_chain_is_deterministic(self):
        edges = TemporalEdgeList.from_edges(
            [(0, 1, 0.1), (1, 2, 0.2), (2, 3, 0.3)], num_nodes=4
        )
        g = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(bias="softmax-late", num_walks_per_node=1,
                         max_walk_length=4)
        corpus = BatchedWalkEngine(g).run(cfg, seed=1)
        assert list(corpus.walk(0)) == [0, 1, 2, 3]

    def test_dead_range_fallback_matches_oracle(self):
        # After the (0 -> 1, t=0.25) hop, the valid candidates at node 1
        # are t=500 and t=1000; at temperature 0.01 both softmax-recency
        # weights underflow to zero relative to the slice's t=0 anchor,
        # so the mass over the range is zero and both engines must take
        # the deterministic earliest-edge fallback.
        edges = TemporalEdgeList.from_edges(
            [(0, 1, 0.25), (1, 2, 0.0), (1, 2, 500.0), (1, 3, 1000.0)],
            num_nodes=4,
        )
        g = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(bias="softmax-recency", num_walks_per_node=4,
                         max_walk_length=3, temperature=0.01)
        starts = np.zeros(8, dtype=np.int64)
        base = TemporalWalkEngine(g).run(cfg, seed=2, start_nodes=starts)
        bat = BatchedWalkEngine(g).run(cfg, seed=3, start_nodes=starts)
        for corpus in (base, bat):
            assert np.all(corpus.matrix[:, 1] == 1)
            assert np.all(corpus.matrix[:, 2] == 2)  # t=500, never t=1000

    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_temporal_validity(self, hub_graph, direction):
        cfg = WalkConfig(bias="softmax-recency", num_walks_per_node=2,
                         max_walk_length=6, direction=direction)
        corpus = BatchedWalkEngine(hub_graph).run(cfg, seed=13)
        assert corpus.validate_temporal_order(hub_graph, direction=direction)

    def test_wide_span_no_overflow(self):
        # Raw recency scores at t ~ 1e6 with temperature 1 would
        # under/overflow an unanchored exp; the per-slice anchoring the
        # kernel inherits from the step table must keep the distribution
        # exact under strict float error checking.
        rows = [(0, 1, 0.0)] + [
            (1, 2 + i, 1e6 + 0.5 * i) for i in range(4)
        ]
        g = TemporalGraph.from_edge_list(
            TemporalEdgeList.from_edges(rows, num_nodes=6)
        )
        cfg = WalkConfig(bias="softmax-recency", num_walks_per_node=1,
                         max_walk_length=3, temperature=1.0)
        with np.errstate(over="raise"):
            corpus = BatchedWalkEngine(g).run(
                cfg, seed=4, start_nodes=np.zeros(4000, dtype=np.int64)
            )
        nxt = corpus.matrix[corpus.lengths > 2, 2]
        got = np.bincount(nxt, minlength=6)[2:] / len(nxt)
        want = transition_probabilities(
            g.ts[g.indptr[1]:g.indptr[2]], "softmax-recency", 1.0
        )
        assert 0.5 * np.abs(got - want).sum() < 0.04


class TestStats:
    """Scan-model counters stay honest (fig09/fig10/hwmodel inputs)."""

    def test_counters_populated(self, hub_graph):
        engine = BatchedWalkEngine(hub_graph)
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=5)
        engine.run(cfg, seed=6)
        stats = engine.last_stats
        assert stats.candidates_scanned > 0
        assert stats.search_iterations > 0
        assert stats.cdf_search_iterations > 0
        assert stats.exp_evaluations > 0
        assert stats.work_per_start_node.sum() == stats.candidates_scanned

    def test_scan_model_matches_oracle(self, hub_graph):
        # candidates_scanned is a property of the walks' valid ranges,
        # not of the kernel: on a bit-identical uniform corpus the
        # batched kernel must book exactly the oracle's scan count.
        cfg = WalkConfig(bias="uniform", num_walks_per_node=2,
                         max_walk_length=5)
        base = TemporalWalkEngine(hub_graph)
        bat = BatchedWalkEngine(hub_graph)
        base.run(cfg, seed=8)
        bat.run(cfg, seed=8)
        assert (
            bat.last_stats.candidates_scanned
            == base.last_stats.candidates_scanned
        )
        assert np.array_equal(
            bat.last_stats.work_per_start_node,
            base.last_stats.work_per_start_node,
        )

    def test_table_build_reported(self, hub_graph):
        engine = BatchedWalkEngine(hub_graph)
        assert engine.table_bytes() == 0
        engine.run(WalkConfig(num_walks_per_node=1, max_walk_length=4),
                   seed=1)
        assert engine.table_bytes() > 0
        assert engine.table_build_seconds > 0.0
        built = engine.table_build_seconds
        engine.run(WalkConfig(num_walks_per_node=1, max_walk_length=4),
                   seed=2)
        assert engine.table_build_seconds == built  # cached, not rebuilt
