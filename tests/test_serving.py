"""Tests for the online serving layer (:mod:`repro.serving`).

Pins down the four contracts the serving design note promises:

- snapshot-swap atomicity: readers racing a publisher only ever see
  whole snapshots (never a half-written matrix), and a held snapshot
  stays internally consistent while newer ones land;
- freshness: once a post-``append()`` publish lands, no stale cached
  top-k is ever served again (the LRU is keyed by snapshot version);
- micro-batch flushing on all three triggers (size, delay, close) with
  exception propagation to every future of a failed batch;
- recorder instrumentation: the documented ``serving.*`` counters and
  histograms actually appear under load.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.embedding.trainer import SgnsConfig
from repro.errors import ServingError
from repro.graph.dynamic import DynamicTemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.observability import Recorder, use_recorder
from repro.serving import (
    BatchFuture,
    BatchScheduler,
    EmbeddingStore,
    RecommendationIndex,
    ServingConfig,
    ServingFrontend,
    run_load,
)
from repro.tasks.incremental import IncrementalEmbedder
from repro.walk.config import WalkConfig

pytestmark = pytest.mark.serving


def make_store(matrix: np.ndarray, generation: int = 0) -> EmbeddingStore:
    store = EmbeddingStore()
    store.publish(matrix, generation=generation)
    return store


def brute_force_topk(matrix: np.ndarray, node: int, k: int,
                     metric: str = "dot") -> tuple[np.ndarray, np.ndarray]:
    scores = matrix @ matrix[node]
    if metric == "cosine":
        norms = np.linalg.norm(matrix, axis=1)
        norms = np.where(norms == 0.0, 1.0, norms)
        scores = scores / (norms * norms[node])
    scores[node] = -np.inf
    order = np.lexsort((np.arange(len(scores)), -scores))
    k_eff = min(k, len(scores) - 1)
    return order[:k_eff], scores[order[:k_eff]]


# ---------------------------------------------------------------------------
# EmbeddingStore
# ---------------------------------------------------------------------------
class TestEmbeddingStore:
    def test_publish_copies_and_freezes(self):
        source = np.ones((4, 3))
        store = make_store(source, generation=0)
        snapshot = store.snapshot()
        source[:] = 99.0  # trainer keeps mutating its buffer
        assert np.all(snapshot.matrix == 1.0)
        assert not snapshot.matrix.flags.writeable
        assert not snapshot.norms.flags.writeable
        np.testing.assert_allclose(snapshot.norms, np.sqrt(3.0))
        assert snapshot.num_nodes == 4 and snapshot.dim == 3

    def test_empty_store_raises_until_first_publish(self):
        store = EmbeddingStore()
        assert store.empty
        assert store.version == 0 and store.generation == -1
        with pytest.raises(ServingError, match="no embeddings published"):
            store.snapshot()
        store.publish(np.ones((2, 2)), generation=5)
        assert not store.empty
        assert store.version == 1 and store.generation == 5

    def test_stale_generation_rejected_equal_allowed(self):
        store = make_store(np.ones((2, 2)), generation=3)
        with pytest.raises(ServingError, match="stale publish"):
            store.publish(np.ones((2, 2)), generation=2)
        # Equal generation = continued training on an unchanged graph.
        snapshot = store.publish(np.zeros((2, 2)), generation=3)
        assert snapshot.version == 2

    def test_rejects_non_matrix(self):
        store = EmbeddingStore()
        with pytest.raises(ServingError, match="2-D"):
            store.publish(np.ones(4), generation=0)

    def test_swap_is_atomic_under_concurrent_readers(self):
        """Readers racing publishes only ever see whole snapshots.

        Every published matrix is constant-valued, so a torn read would
        show up as a snapshot whose entries disagree with each other or
        with its precomputed norms.
        """
        store = make_store(np.zeros((50, 8)))
        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                snapshot = store.snapshot()
                matrix = snapshot.matrix
                value = matrix[0, 0]
                if not np.all(matrix == value):
                    failures.append("torn matrix")
                expected = np.sqrt(8.0) * abs(value)
                if not np.allclose(snapshot.norms, expected):
                    failures.append("norms from a different matrix")

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        for version in range(1, 120):
            store.publish(np.full((50, 8), float(version)),
                          generation=version)
        stop.set()
        for thread in readers:
            thread.join()
        assert not failures
        assert store.version == 120

    def test_held_snapshot_stays_consistent_after_swap(self):
        store = make_store(np.full((3, 2), 1.0), generation=0)
        held = store.snapshot()
        store.publish(np.full((3, 2), 2.0), generation=1)
        # Stale-read semantics: the old reference still sees old data.
        assert np.all(held.matrix == 1.0)
        assert np.all(store.snapshot().matrix == 2.0)

    def test_wait_for_generation(self):
        store = make_store(np.ones((2, 2)), generation=0)
        assert store.wait_for_generation(0, timeout=0.1)
        assert not store.wait_for_generation(1, timeout=0.05)
        publisher = threading.Timer(
            0.05, lambda: store.publish(np.ones((2, 2)), generation=1))
        publisher.start()
        try:
            assert store.wait_for_generation(1, timeout=5.0)
        finally:
            publisher.join()

    def test_subscribe_and_publish_counter(self):
        recorder = Recorder()
        seen: list[int] = []
        with use_recorder(recorder):
            store = EmbeddingStore()
            store.subscribe(lambda snapshot: seen.append(snapshot.version))
            store.publish(np.ones((2, 2)), generation=0)
            store.publish(np.ones((2, 2)), generation=1)
        assert seen == [1, 2]
        assert recorder.counters["serving.store.publishes"] == 2
        assert recorder.gauges["serving.store.generation"] == 1

    def test_subscriber_exception_is_isolated_and_counted(self):
        """Regression: a raising subscriber used to propagate out of
        ``publish`` *after* the snapshot swap — the publisher saw a
        failure for a publish that had in fact landed, and later
        subscribers were skipped entirely."""
        recorder = Recorder()
        seen: list[int] = []

        def exploding(snapshot) -> None:
            raise RuntimeError("publish hook boom")

        with use_recorder(recorder):
            store = EmbeddingStore()
            store.subscribe(exploding)
            store.subscribe(lambda snapshot: seen.append(snapshot.version))
            snapshot = store.publish(np.ones((2, 2)), generation=0)
        assert snapshot.version == 1       # the publish itself landed
        assert seen == [1]                 # later subscribers still ran
        assert recorder.counters["serving.store.subscriber_errors"] == 1

    def test_unsubscribe(self):
        store = EmbeddingStore()
        seen: list[int] = []
        callback = lambda snapshot: seen.append(snapshot.version)  # noqa: E731
        store.subscribe(callback)
        store.publish(np.ones((2, 2)), generation=0)
        assert store.unsubscribe(callback) is True
        assert store.unsubscribe(callback) is False  # already removed
        store.publish(np.ones((2, 2)), generation=1)
        assert seen == [1]


# ---------------------------------------------------------------------------
# BatchScheduler
# ---------------------------------------------------------------------------
class TestBatchScheduler:
    def test_flush_on_size_trigger(self):
        recorder = Recorder()
        with use_recorder(recorder):
            with BatchScheduler(lambda batch: [x * 2 for x in batch],
                                max_batch_size=4, max_delay=30.0) as sched:
                futures = [sched.submit(i) for i in range(4)]
                assert [f.result(timeout=5.0) for f in futures] == [0, 2, 4, 6]
        assert recorder.counters.get("serving.batch.flush_size", 0) >= 1
        assert recorder.counters.get("serving.batch.flush_delay", 0) == 0
        assert recorder.histograms["serving.batch.size"].max == 4

    def test_flush_on_delay_trigger(self):
        recorder = Recorder()
        with use_recorder(recorder):
            with BatchScheduler(lambda batch: [x + 1 for x in batch],
                                max_batch_size=100,
                                max_delay=0.03) as sched:
                start = time.monotonic()
                future_a = sched.submit(1)
                future_b = sched.submit(2)
                assert future_a.result(timeout=5.0) == 2
                assert future_b.result(timeout=5.0) == 3
                elapsed = time.monotonic() - start
        # The batch could not fill, so it waited out max_delay.
        assert elapsed >= 0.03
        assert recorder.counters.get("serving.batch.flush_delay", 0) >= 1
        assert recorder.counters.get("serving.batch.flush_size", 0) == 0

    def test_flush_on_close_trigger(self):
        recorder = Recorder()
        with use_recorder(recorder):
            sched = BatchScheduler(lambda batch: list(batch),
                                   max_batch_size=100, max_delay=30.0)
            sched.start()
            future = sched.submit("payload")
            sched.close()
        assert future.result(timeout=0) == "payload"
        assert recorder.counters.get("serving.batch.flush_close", 0) >= 1

    def test_process_exception_fails_whole_batch_but_not_scheduler(self):
        calls = []

        def process(batch):
            calls.append(list(batch))
            if len(calls) == 1:
                raise ValueError("boom")
            return [x for x in batch]

        with BatchScheduler(process, max_batch_size=2,
                            max_delay=30.0) as sched:
            futures = [sched.submit(i) for i in range(2)]
            for future in futures:
                with pytest.raises(ValueError, match="boom"):
                    future.result(timeout=5.0)
            # The scheduler survives a failed batch.
            ok = [sched.submit(i) for i in (5, 6)]
            assert [f.result(timeout=5.0) for f in ok] == [5, 6]

    def test_result_count_mismatch_is_serving_error(self):
        with BatchScheduler(lambda batch: [0],  # wrong length for 2
                            max_batch_size=2, max_delay=30.0) as sched:
            futures = [sched.submit(i) for i in range(2)]
            for future in futures:
                with pytest.raises(ServingError, match="results for"):
                    future.result(timeout=5.0)

    def test_submit_lifecycle_errors(self):
        sched = BatchScheduler(lambda batch: batch)
        with pytest.raises(ServingError, match="not started"):
            sched.submit(1)
        sched.start()
        sched.close()
        with pytest.raises(ServingError, match="closed"):
            sched.submit(1)
        with pytest.raises(ServingError, match="closed"):
            sched.start()

    def test_config_validation(self):
        with pytest.raises(ServingError, match="max_batch_size"):
            BatchScheduler(lambda batch: batch, max_batch_size=0)
        with pytest.raises(ServingError, match="max_delay"):
            BatchScheduler(lambda batch: batch, max_delay=-1.0)

    def test_batch_future_timeout_and_resolved(self):
        pending = BatchFuture(threading.Condition())
        assert not pending.done()
        with pytest.raises(FutureTimeoutError):
            pending.result(timeout=0.01)
        done = BatchFuture.resolved("value")
        assert done.done()
        assert done.result(timeout=0) == "value"


# ---------------------------------------------------------------------------
# RecommendationIndex
# ---------------------------------------------------------------------------
class TestRecommendationIndex:
    @pytest.mark.parametrize("metric", ["dot", "cosine"])
    def test_matches_brute_force_across_blocks(self, rng, metric):
        matrix = rng.standard_normal((37, 6))
        store = make_store(matrix)
        # block_size=10 forces multiple blocks incl. a ragged last one.
        index = RecommendationIndex(store, block_size=10, metric=metric)
        for node in (0, 9, 10, 36):
            ids, scores = index.top_k(node, 5)
            expected_ids, expected_scores = brute_force_topk(
                matrix, node, 5, metric)
            np.testing.assert_array_equal(ids, expected_ids)
            np.testing.assert_allclose(scores, expected_scores)
            assert node not in ids  # self-exclusion

    def test_k_capped_at_catalog_minus_self(self, rng):
        matrix = rng.standard_normal((5, 3))
        index = RecommendationIndex(make_store(matrix))
        ids, scores = index.top_k(2, 100)
        assert len(ids) == 4 and len(scores) == 4

    def test_cache_hit_skips_gemm(self, rng):
        matrix = rng.standard_normal((30, 4))
        recorder = Recorder()
        with use_recorder(recorder):
            index = RecommendationIndex(make_store(matrix))
            cold = index.top_k(3, 5)
            gemm_after_cold = recorder.counters["serving.index.gemm_rows"]
            assert recorder.counters["serving.index.cache_misses"] == 1
            warm = index.top_k(3, 5)
            assert recorder.counters["serving.index.gemm_rows"] == (
                gemm_after_cold
            )
            assert recorder.counters["serving.index.cache_hits"] == 1
        np.testing.assert_array_equal(cold[0], warm[0])
        # Different k is a different cache entry.
        with use_recorder(recorder):
            index.top_k(3, 4)
            assert recorder.counters["serving.index.cache_misses"] == 2

    def test_cache_invalidated_by_version_bump(self, rng):
        first = rng.standard_normal((20, 4))
        second = rng.standard_normal((20, 4))
        store = make_store(first, generation=0)
        index = RecommendationIndex(store)
        index.top_k(1, 3)  # warm
        assert index.cached(1, 3) is not None
        store.publish(second, generation=1)
        # The first post-publish read drops every stale entry.
        assert index.cached(1, 3) is None
        ids, scores = index.top_k(1, 3)
        expected_ids, expected_scores = brute_force_topk(second, 1, 3)
        np.testing.assert_array_equal(ids, expected_ids)
        np.testing.assert_allclose(scores, expected_scores)

    def test_publish_racing_batch_pins_one_version(self, rng):
        """Bug: ``top_k_batch`` took one snapshot but its cache lookups
        re-fetched the *current* snapshot per request; a publish landing
        mid-batch let newer-generation cache hits mix into a batch
        whose misses were computed from the older matrix.  Fix: lookups
        are pinned to the batch's snapshot."""
        first = rng.standard_normal((20, 4))
        second = rng.standard_normal((20, 4))
        store = make_store(first, generation=0)
        index = RecommendationIndex(store)
        real_snapshot = store.snapshot
        raced = False

        def racing_snapshot():
            nonlocal raced
            snap = real_snapshot()
            if not raced:
                # A publish plus a competing reader land right after
                # the batch takes its snapshot: the reader's query
                # fills the cache at the new version.
                raced = True
                store.publish(second, generation=1)
                index.top_k(5, 3)
            return snap

        store.snapshot = racing_snapshot
        try:
            results = index.top_k_batch([(5, 3), (6, 3)])
        finally:
            store.snapshot = real_snapshot
        # Every result in the batch answers from the batch's snapshot.
        for node, (ids, scores) in zip([5, 6], results):
            expected_ids, expected_scores = brute_force_topk(first, node, 3)
            np.testing.assert_array_equal(ids, expected_ids)
            np.testing.assert_allclose(scores, expected_scores)
        # And the older-snapshot lookups did not roll the cache back:
        # the newer generation's entry is still served.
        hit = index.cached(5, 3)
        assert hit is not None
        np.testing.assert_array_equal(
            hit[0], brute_force_topk(second, 5, 3)[0]
        )

    def test_lru_eviction(self, rng):
        matrix = rng.standard_normal((20, 4))
        recorder = Recorder()
        with use_recorder(recorder):
            index = RecommendationIndex(make_store(matrix), cache_size=2)
            index.top_k(0, 3)
            index.top_k(1, 3)
            index.top_k(2, 3)  # evicts node 0
            assert len(index) == 2
            assert recorder.counters["serving.index.cache_evictions"] == 1
            assert index.cached(0, 3) is None
            assert index.cached(2, 3) is not None

    def test_batch_dedupes_repeated_nodes(self, rng):
        matrix = rng.standard_normal((25, 4))
        recorder = Recorder()
        with use_recorder(recorder):
            index = RecommendationIndex(make_store(matrix))
            results = index.top_k_batch([(7, 3), (7, 3), (8, 3)])
            assert recorder.counters["serving.index.cache_misses"] == 2
        np.testing.assert_array_equal(results[0][0], results[1][0])
        expected_ids, _ = brute_force_topk(matrix, 8, 3)
        np.testing.assert_array_equal(results[2][0], expected_ids)

    def test_validation(self, rng):
        index = RecommendationIndex(make_store(rng.standard_normal((5, 2))))
        with pytest.raises(ServingError, match="out of range"):
            index.top_k(5, 2)
        with pytest.raises(ServingError, match="k must be"):
            index.top_k(0, 0)
        with pytest.raises(ServingError, match="cache_size"):
            RecommendationIndex(EmbeddingStore(), cache_size=-1)
        with pytest.raises(ServingError, match="metric"):
            RecommendationIndex(EmbeddingStore(), metric="euclid")


# ---------------------------------------------------------------------------
# ServingFrontend + freshness end-to-end
# ---------------------------------------------------------------------------
FAST_CONFIG = ServingConfig(max_batch_size=8, max_delay=0.002)


class TestServingFrontend:
    def test_score_link_matches_dot(self, rng):
        matrix = rng.standard_normal((12, 5))
        with ServingFrontend(make_store(matrix), FAST_CONFIG) as frontend:
            score = frontend.score_link(3, 7, timeout=5.0)
        assert score == pytest.approx(float(matrix[3] @ matrix[7]))

    def test_score_link_out_of_range(self, rng):
        matrix = rng.standard_normal((4, 3))
        with ServingFrontend(make_store(matrix), FAST_CONFIG) as frontend:
            with pytest.raises(ServingError, match="out of range"):
                frontend.score_link(0, 4, timeout=5.0)

    def test_top_k_and_default_k(self, rng):
        matrix = rng.standard_normal((15, 4))
        config = ServingConfig(max_batch_size=8, max_delay=0.002,
                               default_k=3)
        with ServingFrontend(make_store(matrix), config) as frontend:
            ids, scores = frontend.top_k(2, timeout=5.0)
            assert len(ids) == 3
            expected_ids, _ = brute_force_topk(matrix, 2, 3)
            np.testing.assert_array_equal(ids, expected_ids)

    def test_config_validation(self):
        with pytest.raises(ServingError, match="max_batch_size"):
            ServingConfig(max_batch_size=0)
        with pytest.raises(ServingError, match="default_k"):
            ServingConfig(default_k=0)
        with pytest.raises(ServingError, match="metric"):
            ServingConfig(metric="hamming")

    def test_no_stale_topk_after_append_and_publish(self, rng):
        """The ISSUE freshness contract, end to end.

        Warm the top-k cache on generation 0, append an edge batch,
        run the incremental update (which publishes), and verify the
        next top-k reflects the new snapshot — never the cached one.
        """
        src = rng.integers(0, 30, size=200)
        dst = rng.integers(0, 30, size=200)
        ts = np.sort(rng.random(200))
        edges = TemporalEdgeList(src[:150], dst[:150], ts[:150],
                                 num_nodes=30)
        batch = TemporalEdgeList(src[150:], dst[150:], ts[150:],
                                 num_nodes=30)
        dynamic = DynamicTemporalGraph(edges)
        store = EmbeddingStore()
        embedder = IncrementalEmbedder(
            dynamic,
            walk_config=WalkConfig(num_walks_per_node=2, max_walk_length=4),
            sgns_config=SgnsConfig(dim=4, epochs=1),
            seed=11,
            store=store,
        )
        embedder.rebuild()
        with ServingFrontend(store, FAST_CONFIG) as frontend:
            stale_ids, stale_scores = frontend.top_k(0, 5, timeout=5.0)
            assert frontend.index.cached(0, 5) is not None
            version_before = store.version

            dynamic.append(batch)
            embedder.update()  # publishes the post-append snapshot

            assert store.version > version_before
            assert store.generation == dynamic.generation == 1
            fresh_ids, fresh_scores = frontend.top_k(0, 5, timeout=5.0)
            expected_ids, expected_scores = brute_force_topk(
                np.asarray(store.snapshot().matrix), 0, 5)
            np.testing.assert_array_equal(fresh_ids, expected_ids)
            np.testing.assert_allclose(fresh_scores, expected_scores)

    def test_concurrent_load_and_metric_presence(self, rng):
        matrix = rng.standard_normal((60, 6))
        recorder = Recorder()
        with use_recorder(recorder):
            with ServingFrontend(make_store(matrix), FAST_CONFIG) as frontend:
                report = run_load(frontend, num_requests=400, clients=4,
                                  topk_fraction=0.5, k=5, seed=3)
        assert report.requests >= 400
        assert report.errors == 0
        assert report.score_requests + report.topk_requests == (
            report.requests
        )
        assert report.qps > 0 and report.p99_ms >= report.p50_ms >= 0
        # The documented metric catalog actually shows up under load.
        for counter in ("serving.requests.score", "serving.requests.topk",
                        "serving.index.cache_misses",
                        "serving.index.gemm_rows",
                        "serving.store.publishes"):
            assert recorder.counters.get(counter, 0) > 0, counter
        for histogram in ("serving.latency.score_s",
                          "serving.latency.topk_s", "serving.batch.size",
                          "serving.batch.wait_s"):
            assert recorder.histograms[histogram].count > 0, histogram
        flushes = sum(
            value for name, value in recorder.counters.items()
            if name.startswith("serving.batch.flush_")
        )
        assert flushes > 0
        assert report.as_row()["errors"] == 0

    def test_run_load_validation(self, rng):
        matrix = rng.standard_normal((5, 2))
        with ServingFrontend(make_store(matrix), FAST_CONFIG) as frontend:
            with pytest.raises(ServingError, match="num_requests"):
                run_load(frontend, num_requests=0)
            with pytest.raises(ServingError, match="clients"):
                run_load(frontend, clients=0)
            with pytest.raises(ServingError, match="topk_fraction"):
                run_load(frontend, topk_fraction=1.5)

    def test_run_load_issues_exactly_num_requests(self, rng):
        """Regression: every client tape was rounded up to
        ``ceil(num_requests / clients)``, so 10 requests over 4 clients
        issued 12.  The remainder must spread one request each over the
        first few clients instead."""
        matrix = rng.standard_normal((20, 4))
        with ServingFrontend(make_store(matrix), FAST_CONFIG) as frontend:
            report = run_load(frontend, num_requests=10, clients=4,
                              topk_fraction=0.5, k=3, seed=0)
        assert report.requests == 10
        assert report.score_requests + report.topk_requests == 10

    def test_run_load_clean_run_emits_no_error_counter(self, rng):
        """Regression: the error counter was guarded with ``if errors:``
        on a ``[0] * clients`` list — always truthy — so every clean
        run exported a spurious ``loadgen.errors = 0``."""
        matrix = rng.standard_normal((20, 4))
        recorder = Recorder()
        with use_recorder(recorder):
            with ServingFrontend(make_store(matrix),
                                 FAST_CONFIG) as frontend:
                report = run_load(frontend, num_requests=20, clients=3,
                                  topk_fraction=0.5, k=3, seed=0)
        assert report.errors == 0
        assert "loadgen.errors" not in recorder.counters

    def test_run_load_counts_errors_when_requests_fail(self):
        """The guard must not eat *real* errors: a frontend that always
        raises ServingError yields errors == requests and the counter."""

        class ExplodingFrontend:
            num_nodes = 10

            def top_k(self, node, k=None):
                raise ServingError("boom")

            def score_link(self, src, dst):
                raise ServingError("boom")

        recorder = Recorder()
        with use_recorder(recorder):
            report = run_load(ExplodingFrontend(), num_requests=9,
                              clients=2, topk_fraction=0.5, seed=0)
        assert report.requests == 9
        assert report.errors == 9
        assert recorder.counters["loadgen.errors"] == 9
