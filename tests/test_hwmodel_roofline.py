"""Unit tests for the roofline model."""

import pytest

from repro.errors import ModelError
from repro.hwmodel.gpu import GpuConfig
from repro.hwmodel.roofline import (
    Roofline,
    RooflinePoint,
    pipeline_roofline_points,
)


@pytest.fixture()
def roofline():
    return Roofline(peak_flops_per_second=1e12,
                    bandwidth_bytes_per_second=1e11)


class TestRooflinePoint:
    def test_operational_intensity(self):
        point = RooflinePoint("k", flops=100.0, bytes_moved=50.0)
        assert point.operational_intensity == 2.0

    def test_zero_bytes_rejected(self):
        with pytest.raises(ModelError):
            _ = RooflinePoint("k", flops=1.0,
                              bytes_moved=0.0).operational_intensity


class TestRoofline:
    def test_ridge(self, roofline):
        assert roofline.ridge_intensity == 10.0

    def test_attainable_below_ridge_is_bandwidth_limited(self, roofline):
        assert roofline.attainable(2.0) == pytest.approx(2e11)

    def test_attainable_above_ridge_is_peak(self, roofline):
        assert roofline.attainable(100.0) == pytest.approx(1e12)

    def test_attainable_invalid_intensity(self, roofline):
        with pytest.raises(ModelError):
            roofline.attainable(0.0)

    def test_classification(self, roofline):
        low = RooflinePoint("low", 10.0, 10.0)     # intensity 1
        high = RooflinePoint("high", 1000.0, 10.0)  # intensity 100
        assert roofline.classify(low) == "memory-bound"
        assert roofline.classify(high) == "compute-bound"

    def test_efficiency(self, roofline):
        point = RooflinePoint("k", 10.0, 10.0,
                              achieved_flops_per_second=1e11)
        # Attainable at intensity 1 = 1e11: efficiency 1.0.
        assert roofline.efficiency(point) == pytest.approx(1.0)

    def test_efficiency_unknown_when_unmeasured(self, roofline):
        assert roofline.efficiency(RooflinePoint("k", 1.0, 1.0)) is None

    def test_from_gpu_defaults(self):
        roofline = Roofline.from_gpu(GpuConfig())
        assert roofline.ridge_intensity == pytest.approx(
            19.5e12 / 1555e9, rel=1e-6
        )


class TestPipelinePoints:
    def test_points_from_measured_stats(self, email_walk_stats):
        from repro.embedding.trainer import SgnsConfig, TrainerStats

        points = pipeline_roofline_points(
            email_walk_stats,
            TrainerStats(pairs_trained=1000),
            SgnsConfig(dim=8),
            [(16, 32), (32, 1)],
            batch_size=128,
        )
        names = [p.name for p in points]
        assert names == ["rwalk", "word2vec", "train", "test"]
        for point in points:
            assert point.operational_intensity > 0
        # SGNS touches (2+K) rows for (1+K) score's worth of flops:
        # modest intensity, below dense-GEMM territory.
        w2v = points[1]
        assert w2v.operational_intensity < 2.0
