"""Unit tests for individual layers."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Linear, ReLU, Residual, Sequential, Sigmoid, Tanh


class TestLinear:
    def test_forward_affine(self):
        layer = Linear(2, 3, seed=1)
        layer.weight.data[:] = np.array([[1.0, 0.0, 2.0], [0.0, 1.0, 3.0]])
        layer.bias.data[:] = np.array([1.0, 2.0, 3.0])
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[2.0, 3.0, 8.0]])

    def test_backward_before_forward_rejected(self):
        with pytest.raises(TrainingError):
            Linear(2, 2, seed=1).backward(np.ones((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(TrainingError):
            Linear(0, 3)

    def test_xavier_bounds(self):
        layer = Linear(100, 100, seed=2)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit

    def test_flop_accounting(self):
        layer = Linear(4, 5, seed=1)
        x = np.ones((8, 4))
        layer.forward(x)
        assert layer.flops == 2 * 8 * 4 * 5
        assert layer.gemm_calls == 1
        layer.backward(np.ones((8, 5)))
        assert layer.gemm_calls == 3

    def test_bias_grad_sums_over_batch(self):
        layer = Linear(2, 2, seed=1)
        x = np.ones((5, 2))
        layer.forward(x)
        layer.backward(np.ones((5, 2)))
        assert np.allclose(layer.bias.grad, 5.0)


class TestActivations:
    def test_relu_masks_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]
        grad = relu.backward(np.array([[10.0, 10.0]]))
        assert grad.tolist() == [[0.0, 10.0]]

    def test_sigmoid_range(self):
        out = Sigmoid().forward(np.array([[-100.0, 0.0, 100.0]]))
        assert np.all((out >= 0) & (out <= 1))
        assert out[0, 1] == pytest.approx(0.5)

    def test_sigmoid_gradient_peak_at_zero(self):
        s = Sigmoid()
        s.forward(np.array([[0.0]]))
        assert s.backward(np.array([[1.0]]))[0, 0] == pytest.approx(0.25)

    def test_tanh_odd_function(self):
        t = Tanh()
        out = t.forward(np.array([[-2.0, 2.0]]))
        assert out[0, 0] == pytest.approx(-out[0, 1])

    @pytest.mark.parametrize("cls", [ReLU, Sigmoid, Tanh])
    def test_backward_before_forward_rejected(self, cls):
        with pytest.raises(TrainingError):
            cls().backward(np.ones((1, 1)))


class TestResidual:
    def test_forward_adds_skip(self):
        inner = Linear(3, 3, seed=1)
        inner.weight.data[:] = 0.0
        inner.bias.data[:] = 1.0
        block = Residual(inner)
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(block.forward(x), x + 1.0)

    def test_backward_adds_skip_gradient(self):
        inner = Linear(2, 2, seed=1)
        inner.weight.data[:] = 0.0
        block = Residual(inner)
        block.forward(np.ones((1, 2)))
        grad = block.backward(np.array([[1.0, 1.0]]))
        # Inner path contributes W^T grad = 0; skip path passes grad.
        assert np.allclose(grad, [[1.0, 1.0]])
