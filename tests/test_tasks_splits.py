"""Unit tests for temporal edge splits and stratified node splits (Fig. 7)."""

import numpy as np
import pytest

from repro.errors import DataPreparationError
from repro.tasks.splits import stratified_node_split, temporal_edge_split


class TestTemporalEdgeSplit:
    def test_default_fractions(self, email_edges):
        splits = temporal_edge_split(email_edges, seed=1)
        n = len(email_edges)
        assert splits.total == n
        assert len(splits.test) == pytest.approx(0.2 * n, abs=2)
        assert len(splits.train) == pytest.approx(0.6 * n, abs=2)
        assert len(splits.valid) == pytest.approx(0.2 * n, abs=2)

    def test_test_partition_is_chronological_tail(self, email_edges):
        splits = temporal_edge_split(email_edges, seed=1)
        cutoff = splits.test.timestamps.min()
        assert splits.train.timestamps.max() <= cutoff
        assert splits.valid.timestamps.max() <= cutoff

    def test_partitions_disjoint(self, email_edges):
        splits = temporal_edge_split(email_edges, seed=1)
        # Compare by positional identity: indices within the sorted list.
        ordered = email_edges.sorted_by_time()
        def keys(part):
            return set(zip(part.src.tolist(), part.dst.tolist(),
                           part.timestamps.tolist()))
        total = len(keys(ordered))
        union = keys(splits.train) | keys(splits.valid) | keys(splits.test)
        assert len(union) == total  # no triple appears in two partitions

    def test_deterministic_by_seed(self, email_edges):
        a = temporal_edge_split(email_edges, seed=5)
        b = temporal_edge_split(email_edges, seed=5)
        assert np.array_equal(a.train.src, b.train.src)

    def test_fractions_over_one_rejected(self, email_edges):
        with pytest.raises(DataPreparationError):
            temporal_edge_split(email_edges, 0.7, 0.3, 0.2)

    def test_fraction_out_of_range_rejected(self, email_edges):
        with pytest.raises(DataPreparationError):
            temporal_edge_split(email_edges, train_fraction=-0.1)

    def test_too_few_edges_rejected(self):
        from repro.graph.edges import TemporalEdgeList
        edges = TemporalEdgeList([0], [1], [0.5])
        with pytest.raises(DataPreparationError):
            temporal_edge_split(edges)

    def test_partial_fractions_leave_remainder_unused(self, email_edges):
        splits = temporal_edge_split(email_edges, 0.3, 0.1, 0.2, seed=1)
        assert splits.total < len(email_edges)


class TestStratifiedNodeSplit:
    def test_every_class_in_every_partition(self):
        labels = np.repeat([0, 1, 2], 30)
        splits = stratified_node_split(labels, seed=1)
        for part in (splits.train, splits.valid, splits.test):
            assert set(labels[part]) == {0, 1, 2}

    def test_partitions_disjoint_and_complete(self):
        labels = np.repeat([0, 1], 25)
        splits = stratified_node_split(labels, seed=2)
        union = np.concatenate([splits.train, splits.valid, splits.test])
        assert sorted(union.tolist()) == list(range(50))

    def test_class_balance_preserved(self):
        labels = np.repeat([0, 1], [80, 20])
        splits = stratified_node_split(labels, seed=3)
        train_labels = labels[splits.train]
        assert np.mean(train_labels == 0) == pytest.approx(0.8, abs=0.05)

    def test_fractions_respected(self):
        labels = np.repeat([0, 1], 100)
        splits = stratified_node_split(labels, 0.5, 0.25, seed=4)
        assert len(splits.train) == pytest.approx(100, abs=4)
        assert len(splits.valid) == pytest.approx(50, abs=4)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(DataPreparationError):
            stratified_node_split(np.zeros(10, dtype=int), 0.8, 0.3)
