"""Unit tests for WalkConfig validation."""

import pytest

from repro.errors import WalkError
from repro.walk.config import WalkConfig


class TestWalkConfig:
    def test_defaults_are_paper_operating_point(self):
        cfg = WalkConfig()
        assert cfg.num_walks_per_node == 10
        assert cfg.max_walk_length == 6
        assert cfg.bias == "softmax-recency"

    def test_max_steps(self):
        assert WalkConfig(max_walk_length=6).max_steps == 5
        assert WalkConfig(max_walk_length=1).max_steps == 0

    def test_invalid_num_walks(self):
        with pytest.raises(WalkError):
            WalkConfig(num_walks_per_node=0)

    def test_invalid_length(self):
        with pytest.raises(WalkError):
            WalkConfig(max_walk_length=0)

    def test_invalid_bias(self):
        with pytest.raises(WalkError, match="unknown bias"):
            WalkConfig(bias="bogus")

    def test_invalid_temperature(self):
        with pytest.raises(WalkError):
            WalkConfig(temperature=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            WalkConfig().bias = "uniform"
