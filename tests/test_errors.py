"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.GraphError,
        errors.GraphFormatError,
        errors.WalkError,
        errors.EmbeddingError,
        errors.TrainingError,
        errors.DataPreparationError,
        errors.ModelError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_format_error_is_graph_error(self):
        assert issubclass(errors.GraphFormatError, errors.GraphError)

    def test_catching_base_catches_library_failures(self):
        from repro.graph.edges import TemporalEdgeList

        with pytest.raises(errors.ReproError):
            TemporalEdgeList([0], [1, 2], [0.1])

    def test_library_errors_are_not_builtin_value_errors(self):
        # Callers distinguishing library failures from bugs rely on the
        # hierarchy being separate from ValueError.
        assert not issubclass(errors.ReproError, ValueError)
