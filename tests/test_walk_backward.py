"""Unit tests for reverse-time (backward) walks."""

import numpy as np
import pytest

from repro.errors import WalkError
from repro.graph import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.walk import TemporalWalkEngine, WalkConfig


class TestBackwardWalks:
    def test_invalid_direction_rejected(self):
        with pytest.raises(WalkError):
            WalkConfig(direction="sideways")

    def test_timestamps_strictly_decrease(self, email_graph):
        config = WalkConfig(num_walks_per_node=4, max_walk_length=6,
                            direction="backward")
        corpus = TemporalWalkEngine(email_graph).run(config, seed=1)
        assert corpus.validate_temporal_order(email_graph, "backward")

    def test_backward_walk_violates_forward_order(self, email_graph):
        config = WalkConfig(num_walks_per_node=4, max_walk_length=6,
                            direction="backward")
        corpus = TemporalWalkEngine(email_graph).run(config, seed=1)
        # With real multi-hop walks, reverse-time traversal cannot also
        # be forward-valid.
        assert corpus.lengths.max() >= 3
        assert not corpus.validate_temporal_order(email_graph, "forward")

    def test_chain_graph_backward_reachability(self):
        # 0 ->(t=0.3) 1 ->(t=0.1) 2: only backward walks traverse both.
        edges = TemporalEdgeList([0, 1], [1, 2], [0.3, 0.1])
        graph = TemporalGraph.from_edge_list(edges)
        forward = TemporalWalkEngine(graph).run(
            WalkConfig(num_walks_per_node=10, max_walk_length=3),
            seed=2, start_nodes=np.array([0]),
        )
        backward = TemporalWalkEngine(graph).run(
            WalkConfig(num_walks_per_node=10, max_walk_length=3,
                       direction="backward"),
            seed=2, start_nodes=np.array([0]),
        )
        assert forward.lengths.max() == 2   # 0 -> 1 then stuck (0.1 < 0.3)
        assert backward.lengths.max() == 3  # 0 -> 1 -> 2 going back in time

    def test_backward_window(self):
        # From node 0 (clock 0.9 after first hop), edges at 0.85 (near
        # past) and 0.1 (distant past).
        edges = TemporalEdgeList([0, 1, 1], [1, 2, 3], [0.9, 0.85, 0.1])
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=40, max_walk_length=3,
                            direction="backward", time_window=0.2)
        corpus = TemporalWalkEngine(graph).run(
            config, seed=3, start_nodes=np.array([0])
        )
        third = corpus.matrix[corpus.lengths == 3, 2]
        assert set(third.tolist()) == {2}

    def test_edge_starts_reject_backward(self, tiny_graph):
        config = WalkConfig(direction="backward")
        with pytest.raises(WalkError, match="forward"):
            TemporalWalkEngine(tiny_graph).run_from_edges(config, 5)

    @pytest.mark.parametrize("sampler", ["cdf", "gumbel"])
    def test_both_samplers_support_backward(self, email_graph, sampler):
        config = WalkConfig(num_walks_per_node=2, max_walk_length=5,
                            direction="backward")
        corpus = TemporalWalkEngine(email_graph, sampler=sampler).run(
            config, seed=4
        )
        assert corpus.validate_temporal_order(email_graph, "backward")

    def test_backward_default_start_time_is_plus_inf(self, tiny_graph):
        # Every edge of the start node is a valid first hop backward.
        config = WalkConfig(num_walks_per_node=20, max_walk_length=2,
                            direction="backward")
        corpus = TemporalWalkEngine(tiny_graph).run(
            config, seed=5, start_nodes=np.array([0])
        )
        assert set(corpus.matrix[:, 1].tolist()) <= {1, 2, 3}
        assert corpus.lengths.max() == 2