"""Fault injection: supervised recovery is bit-identical, leak-free.

The tentpole guarantee under test: a walk or word2vec run whose workers
crash, hang, straggle, or return corrupted payloads recovers through
the supervisor (:mod:`repro.parallel.supervisor`) and produces output
bit-identical to an undisturbed run with the same seed — and no
shared-memory segment ever leaks, whatever the failure path.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.embedding.trainer import SgnsConfig
from repro.errors import FaultInjected, ReproError, WorkerError
from repro.faults import ENV_VAR, FaultPlan, FaultSpec
from repro.parallel import SupervisorConfig, run_parallel_walks, run_supervised
from repro.parallel.sgns import ParallelSgnsTrainer
from repro.parallel.shared_graph import SharedCsrGraph
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.pipeline import Pipeline, PipelineConfig
from repro.tasks.training import TrainSettings
from repro.walk.config import WalkConfig

pytestmark = pytest.mark.faults

SMALL_WALK = WalkConfig(num_walks_per_node=2, max_walk_length=4)


def shm_entries() -> set[str]:
    """Names of live POSIX shared-memory segments (this machine's)."""
    shm = Path("/dev/shm")
    if not shm.exists():
        pytest.skip("no /dev/shm on this platform")
    return {entry.name for entry in shm.iterdir()
            if entry.name.startswith("psm_")}


# ---------------------------------------------------------------------------
# Spec / plan parsing
# ---------------------------------------------------------------------------


def test_fault_spec_parse_full():
    spec = FaultSpec.parse("sgns:delay:*:2:0.5")
    assert spec == FaultSpec(site="sgns", kind="delay", shard=None,
                             times=2, delay_seconds=0.5)


def test_fault_spec_parse_shard():
    spec = FaultSpec.parse("walks:crash:1")
    assert spec.site == "walks" and spec.kind == "crash" and spec.shard == 1
    assert spec.times == 1


@pytest.mark.parametrize("text", [
    "walks",                 # no kind
    "walks:explode",         # unknown kind
    "walk:crash",            # typo'd site would otherwise never fire
    "after-sgns:error",      # unknown pipeline site
    "walks:crash:x",         # non-integer shard
    "walks:crash:0:0",       # times < 1
    "walks:delay:0:1:-2",    # negative delay
])
def test_fault_spec_parse_rejects_bad_specs(text):
    with pytest.raises(ReproError):
        FaultSpec.parse(text)


def test_fault_plan_parse_and_match():
    plan = FaultPlan.parse("walks:crash:0, sgns:error:*:2")
    assert plan
    assert plan.match("walks", shard=0, attempt=0) is not None
    assert plan.match("walks", shard=1, attempt=0) is None
    assert plan.match("walks", shard=0, attempt=1) is None  # times=1
    assert plan.match("sgns", shard=3, attempt=1) is not None
    assert plan.match("sgns", shard=3, attempt=2) is None


def test_fault_plan_from_env():
    assert not FaultPlan.from_env(environ={})
    plan = FaultPlan.from_env(environ={ENV_VAR: "walks:hang"})
    assert plan.specs == (FaultSpec(site="walks", kind="hang"),)


def test_fault_plan_fire_error():
    plan = FaultPlan.parse("after-walks:error")
    with pytest.raises(FaultInjected):
        plan.fire("after-walks")
    plan.fire("after-word2vec")  # non-matching site is a no-op


def test_controlplane_sites_registered():
    from repro.faults import CONTROLPLANE_SITES, SITES

    assert set(CONTROLPLANE_SITES) <= set(SITES)
    plan = FaultPlan.parse(
        "controlplane.health:error:*:1, controlplane.respawn:crash:0:2")
    assert plan.match("controlplane.health", shard=0, attempt=0) is not None
    assert plan.match("controlplane.health", shard=0, attempt=1) is None
    assert plan.match("controlplane.respawn", shard=0, attempt=1) is not None
    assert plan.match("controlplane.respawn", shard=1, attempt=0) is None
    with pytest.raises(ReproError):
        FaultSpec.parse("controlplane.respwan:crash")  # typo'd site


# ---------------------------------------------------------------------------
# run_supervised unit behavior (module-level fns so workers can run them)
# ---------------------------------------------------------------------------


def _square(value):
    return value * value


def test_run_supervised_plain_success():
    results, reports = run_supervised(
        _square, [(i,) for i in range(5)], workers=2,
        fault_plan=FaultPlan(),
    )
    assert results == [0, 1, 4, 9, 16]
    assert [r.outcome for r in reports] == ["ok"] * 5
    assert all(r.attempts == 1 for r in reports)


@pytest.mark.parametrize("kind", ["crash", "error", "corrupt"])
def test_run_supervised_retries_one_shot_faults(kind):
    plan = FaultPlan.parse(f"shards:{kind}:2:1")
    results, reports = run_supervised(
        _square, [(i,) for i in range(4)], workers=2, fault_plan=plan,
    )
    assert results == [0, 1, 4, 9]
    assert reports[2].outcome == "ok"
    assert reports[2].attempts == 2
    assert len(reports[2].failures) == 1
    assert all(reports[i].attempts == 1 for i in (0, 1, 3))


def test_run_supervised_timeout_recovers_hang():
    plan = FaultPlan.parse("shards:hang:1:1")
    sup = SupervisorConfig(shard_timeout=1.0)
    results, reports = run_supervised(
        _square, [(i,) for i in range(3)], workers=3,
        supervisor=sup, fault_plan=plan,
    )
    assert results == [0, 1, 4]
    assert reports[1].attempts == 2
    assert "timed out" in reports[1].failures[0]


def test_run_supervised_degrades_to_serial():
    plan = FaultPlan.parse("shards:crash:1:99")  # never stops crashing
    sup = SupervisorConfig(max_retries=1)
    results, reports = run_supervised(
        _square, [(i,) for i in range(3)], workers=2,
        supervisor=sup, serial_fn=_square, fault_plan=plan,
    )
    assert results == [0, 1, 4]
    assert reports[1].outcome == "degraded"
    assert reports[1].attempts == 2  # initial + 1 retry, then in-process


def test_run_supervised_raises_without_fallback():
    plan = FaultPlan.parse("shards:crash:0:99")
    sup = SupervisorConfig(max_retries=0, fallback_serial=False)
    with pytest.raises(WorkerError, match="failed permanently"):
        run_supervised(
            _square, [(0,), (1,)], workers=2,
            supervisor=sup, serial_fn=_square, fault_plan=plan,
        )


def test_run_supervised_reports_clean_exceptions():
    plan = FaultPlan.parse("shards:error:0:1")
    results, reports = run_supervised(
        _square, [(2,)], workers=1, fault_plan=plan,
    )
    assert results == [4]
    assert "FaultInjected" in reports[0].failures[0]


def test_supervisor_config_validation():
    with pytest.raises(WorkerError):
        SupervisorConfig(max_retries=-1)
    with pytest.raises(WorkerError):
        SupervisorConfig(shard_timeout=0.0)


# ---------------------------------------------------------------------------
# Walk-phase recovery: bit-identical corpora, no leaked segments
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def clean_parallel_walks(email_graph):
    corpus, stats = run_parallel_walks(
        email_graph, SMALL_WALK, workers=2, seed=5,
        fault_plan=FaultPlan(),
    )
    return corpus, stats


@pytest.mark.parametrize("spec", [
    "walks:crash:0:1",
    "walks:crash:*:1",
    "walks:error:1:1",
    "walks:corrupt:0:1",
    "walks:delay:1:1:0.2",
])
def test_walk_recovery_bit_identical(email_graph, clean_parallel_walks, spec):
    before = shm_entries()
    corpus, stats = run_parallel_walks(
        email_graph, SMALL_WALK, workers=2, seed=5,
        fault_plan=FaultPlan.parse(spec),
    )
    clean_corpus, clean_stats = clean_parallel_walks
    np.testing.assert_array_equal(corpus.matrix, clean_corpus.matrix)
    np.testing.assert_array_equal(corpus.lengths, clean_corpus.lengths)
    assert stats.total_steps == clean_stats.total_steps
    assert stats.candidates_scanned == clean_stats.candidates_scanned
    assert shm_entries() <= before


def test_walk_hung_worker_recovered_by_timeout(email_graph,
                                               clean_parallel_walks):
    before = shm_entries()
    reports = []
    corpus, _ = run_parallel_walks(
        email_graph, SMALL_WALK, workers=2, seed=5,
        supervisor=SupervisorConfig(shard_timeout=1.5),
        fault_plan=FaultPlan.parse("walks:hang:1:1"),
        shard_reports=reports,
    )
    np.testing.assert_array_equal(corpus.matrix,
                                  clean_parallel_walks[0].matrix)
    assert reports[1].attempts == 2
    assert "timed out" in reports[1].failures[0]
    assert shm_entries() <= before


def test_walk_degraded_shard_still_bit_identical(email_graph,
                                                 clean_parallel_walks):
    """A shard that never survives a worker runs in-process, same bits."""
    before = shm_entries()
    reports = []
    corpus, stats = run_parallel_walks(
        email_graph, SMALL_WALK, workers=2, seed=5,
        supervisor=SupervisorConfig(max_retries=1),
        fault_plan=FaultPlan.parse("walks:crash:0:99"),
        shard_reports=reports,
    )
    clean_corpus, clean_stats = clean_parallel_walks
    np.testing.assert_array_equal(corpus.matrix, clean_corpus.matrix)
    assert stats.total_steps == clean_stats.total_steps
    assert reports[0].outcome == "degraded"
    assert reports[1].outcome == "ok"
    assert shm_entries() <= before


def test_walk_worker_error_without_fallback_raises(email_graph):
    before = shm_entries()
    with pytest.raises(WorkerError, match="failed permanently"):
        run_parallel_walks(
            email_graph, SMALL_WALK, workers=2, seed=5,
            supervisor=SupervisorConfig(max_retries=0,
                                        fallback_serial=False),
            fault_plan=FaultPlan.parse("walks:crash:*:99"),
        )
    assert shm_entries() <= before


# ---------------------------------------------------------------------------
# Shared-memory leak hygiene
# ---------------------------------------------------------------------------


class _ExplodingGraph:
    """Graph stand-in whose ``ts`` access fails mid-copy."""

    def __init__(self, graph):
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        self.indptr = graph.indptr
        self.dst = graph.dst

    @property
    def ts(self):
        raise RuntimeError("disk fell off")


def test_shared_graph_create_failure_unlinks_segment(email_graph):
    before = shm_entries()
    with pytest.raises(RuntimeError, match="disk fell off"):
        SharedCsrGraph.create(_ExplodingGraph(email_graph))
    assert shm_entries() <= before


def test_shared_graph_close_unlinks(email_graph):
    before = shm_entries()
    shared = SharedCsrGraph.create(email_graph)
    name = shared.spec.block_name
    assert name.lstrip("/") in shm_entries()
    shared.close()
    assert name.lstrip("/") not in shm_entries()
    assert shm_entries() <= before


# ---------------------------------------------------------------------------
# SGNS-phase recovery
# ---------------------------------------------------------------------------


def test_sgns_shard_crash_recovery_bit_identical(email_corpus, email_graph):
    config = SgnsConfig(dim=4, epochs=2)
    clean = ParallelSgnsTrainer(
        config, workers=2, fault_plan=FaultPlan(),
    ).train(email_corpus, email_graph.num_nodes, seed=3)
    faulted_trainer = ParallelSgnsTrainer(
        config, workers=2, fault_plan=FaultPlan.parse("sgns:crash:1:1"),
    )
    faulted = faulted_trainer.train(email_corpus, email_graph.num_nodes,
                                    seed=3)
    np.testing.assert_array_equal(faulted.w_in, clean.w_in)
    np.testing.assert_array_equal(faulted.w_out, clean.w_out)
    crashed = [r for r in faulted_trainer.last_shard_reports
               if r.attempts > 1]
    assert crashed, "the injected crash should have forced a retry"


# ---------------------------------------------------------------------------
# End-to-end acceptance: faulted pipeline == clean pipeline
# ---------------------------------------------------------------------------


def _small_config(**overrides) -> PipelineConfig:
    settings = dict(
        walk=SMALL_WALK,
        sgns=SgnsConfig(dim=4, epochs=1),
        workers=2,
        link_prediction=LinkPredictionConfig(
            training=TrainSettings(epochs=3)
        ),
    )
    settings.update(overrides)
    return PipelineConfig(**settings)


def test_pipeline_with_worker_faults_matches_clean_run(email_edges):
    clean = Pipeline(
        _small_config(faults=FaultPlan())
    ).run_link_prediction(email_edges, seed=5)
    faulted = Pipeline(
        _small_config(
            faults=FaultPlan.parse("walks:crash:0:1,sgns:crash:1:1"),
        )
    ).run_link_prediction(email_edges, seed=5)
    np.testing.assert_array_equal(faulted.embeddings.matrix,
                                  clean.embeddings.matrix)
    assert faulted.accuracy == clean.accuracy
    assert faulted.task_result.auc == clean.task_result.auc


def test_pipeline_hang_in_phase1_recovers_via_timeout(email_edges):
    clean = Pipeline(
        _small_config(faults=FaultPlan())
    ).run_link_prediction(email_edges, seed=5)
    faulted = Pipeline(
        _small_config(
            faults=FaultPlan.parse("walks:hang:1:1"),
            supervisor=SupervisorConfig(shard_timeout=1.5),
        )
    ).run_link_prediction(email_edges, seed=5)
    np.testing.assert_array_equal(faulted.embeddings.matrix,
                                  clean.embeddings.matrix)
    assert faulted.accuracy == clean.accuracy


# ---------------------------------------------------------------------------
# CLI: die mid-run, resume from the checkpoint
# ---------------------------------------------------------------------------


def test_cli_resume_after_interrupt(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    base = [
        "linkpred", "--dataset", "ia-email",
        "--walks", "2", "--length", "4", "--dim", "4",
        "--w2v-epochs", "1", "--epochs", "3", "--seed", "7",
    ]
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert main(base) == 0
    clean_out = capsys.readouterr().out
    clean_acc = re.search(r"accuracy=\S+", clean_out).group(0)

    ck = ["--checkpoint-dir", str(tmp_path / "ck")]
    monkeypatch.setenv(ENV_VAR, "after-word2vec:error")
    assert main(base + ck) == 1
    err = capsys.readouterr().err
    assert "injected fault" in err

    monkeypatch.delenv(ENV_VAR)
    assert main(base + ck + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "cached phases: walks, embeddings" in out
    assert clean_acc in out
