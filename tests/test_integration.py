"""End-to-end integration tests: determinism, persistence, composition."""

import numpy as np
import pytest

from repro import (
    NodeEmbeddings,
    Pipeline,
    PipelineConfig,
    generators,
    read_wel,
    write_wel,
)
from repro.embedding import SgnsConfig
from repro.tasks import LinkPredictionTask
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.training import TrainSettings
from repro.walk import WalkConfig, WalkCorpus


FAST = PipelineConfig(
    walk=WalkConfig(num_walks_per_node=4, max_walk_length=5),
    sgns=SgnsConfig(dim=8, epochs=2),
    treat_undirected=True,
    link_prediction=LinkPredictionConfig(
        training=TrainSettings(epochs=5, learning_rate=0.05)
    ),
)


class TestDeterminism:
    def test_full_pipeline_reproducible(self, email_edges):
        a = Pipeline(FAST).run_link_prediction(email_edges, seed=9)
        b = Pipeline(FAST).run_link_prediction(email_edges, seed=9)
        assert a.accuracy == b.accuracy
        assert a.task_result.auc == b.task_result.auc
        assert np.array_equal(a.embeddings.matrix, b.embeddings.matrix)

    def test_different_seeds_differ(self, email_edges):
        a = Pipeline(FAST).run_link_prediction(email_edges, seed=9)
        b = Pipeline(FAST).run_link_prediction(email_edges, seed=10)
        assert not np.array_equal(a.embeddings.matrix, b.embeddings.matrix)


class TestPersistenceComposition:
    def test_wel_round_trip_preserves_results(self, email_edges, tmp_path):
        direct = Pipeline(FAST).run_link_prediction(email_edges, seed=9)
        path = tmp_path / "graph.wel"
        write_wel(email_edges, path)
        reloaded = read_wel(path, normalize=False)
        via_disk = Pipeline(FAST).run_link_prediction(reloaded, seed=9)
        assert via_disk.accuracy == pytest.approx(direct.accuracy)

    def test_embeddings_persist_and_reuse(self, email_edges, tmp_path):
        pipeline = Pipeline(FAST)
        result = pipeline.run_link_prediction(email_edges, seed=9)
        path = tmp_path / "emb.npz"
        result.embeddings.save(path)
        restored = NodeEmbeddings.load(path)
        task = LinkPredictionTask(FAST.link_prediction)
        fresh = task.run(restored, email_edges, seed=11)
        assert fresh.auc > 0.6

    def test_corpus_persist_and_retrain(self, email_edges, tmp_path):
        pipeline = Pipeline(FAST)
        _, _, _, _, corpus = pipeline.embed(email_edges, seed=9)
        path = tmp_path / "walks.npz"
        corpus.save(path)
        reloaded = WalkCorpus.load(path)
        from repro.embedding import train_embeddings

        num_nodes = int(corpus.matrix.max()) + 1
        a, _ = train_embeddings(corpus, num_nodes,
                                SgnsConfig(dim=4, epochs=1), seed=3)
        b, _ = train_embeddings(reloaded, num_nodes,
                                SgnsConfig(dim=4, epochs=1), seed=3)
        assert np.array_equal(a.matrix, b.matrix)


class TestCrossDatasetRobustness:
    @pytest.mark.parametrize("factory,kwargs", [
        (generators.erdos_renyi_temporal, {"num_nodes": 300,
                                           "num_edges": 3000}),
        (generators.activity_driven_temporal, {"num_nodes": 600,
                                               "num_edges": 4000,
                                               "burstiness": 0.5}),
    ])
    def test_pipeline_runs_on_generator_families(self, factory, kwargs):
        edges = factory(seed=5, **kwargs)
        result = Pipeline(FAST).run_link_prediction(edges, seed=6)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.timings.total > 0

    def test_pipeline_handles_graph_with_isolated_nodes(self):
        from repro.graph.edges import TemporalEdgeList

        rng = np.random.default_rng(1)
        # 100 connected nodes + ids up to 149 never referenced.
        edges = TemporalEdgeList(
            rng.integers(0, 100, 400), rng.integers(0, 100, 400),
            rng.random(400), num_nodes=150,
        )
        result = Pipeline(FAST).run_link_prediction(edges, seed=2)
        assert result.embeddings.num_nodes == 150
