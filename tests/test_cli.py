"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.io import LabeledTemporalDataset, read_wel


FAST = ["--walks", "4", "--length", "5", "--dim", "4",
        "--w2v-epochs", "1", "--epochs", "3", "--seed", "1"]


class TestGenerate:
    def test_er_wel(self, tmp_path, capsys):
        out = tmp_path / "er.wel"
        code = main(["generate", "--nodes", "100", "--edges", "500",
                     "-o", str(out)])
        assert code == 0
        edges = read_wel(out)
        assert edges.num_nodes == 100
        assert len(edges) == 500
        assert "wrote" in capsys.readouterr().out

    def test_dataset_shape_wel(self, tmp_path):
        out = tmp_path / "email.wel"
        code = main(["generate", "--dataset", "ia-email",
                     "--scale", "0.001", "-o", str(out)])
        assert code == 0
        assert len(read_wel(out)) > 100

    def test_labeled_dataset_npz(self, tmp_path):
        out = tmp_path / "dblp.npz"
        code = main(["generate", "--dataset", "dblp3", "--scale", "0.1",
                     "-o", str(out)])
        assert code == 0
        dataset = LabeledTemporalDataset.load(out)
        assert dataset.num_classes == 3

    def test_labeled_dataset_needs_npz(self, tmp_path, capsys):
        out = tmp_path / "dblp.wel"
        code = main(["generate", "--dataset", "dblp3", "-o", str(out)])
        assert code == 2
        assert "npz" in capsys.readouterr().err


class TestPreprocess:
    def test_normalizes_and_sorts(self, tmp_path):
        raw = tmp_path / "raw.txt"
        raw.write_text("# comment\n0 1 300\n1 2 100\n2 0 200\n")
        out = tmp_path / "clean.wel"
        code = main(["preprocess", "-i", str(raw), "-o", str(out)])
        assert code == 0
        edges = read_wel(out, normalize=False)
        assert edges.is_time_sorted()
        assert edges.timestamps.min() == 0.0
        assert edges.timestamps.max() == 1.0

    def test_missing_input_fails_cleanly(self, tmp_path, capsys):
        code = main(["preprocess", "-i", str(tmp_path / "nope.txt"),
                     "-o", str(tmp_path / "out.wel")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_input_fails_cleanly(self, tmp_path, capsys):
        raw = tmp_path / "raw.txt"
        raw.write_text("0 1\n")
        code = main(["preprocess", "-i", str(raw),
                     "-o", str(tmp_path / "out.wel")])
        assert code == 1


class TestLinkpred:
    def test_on_generated_file(self, tmp_path, capsys):
        wel = tmp_path / "g.wel"
        main(["generate", "--dataset", "ia-email", "--scale", "0.002",
              "--seed", "3", "-o", str(wel)])
        code = main(["linkpred", "--input", str(wel), *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "link-prediction" in out
        assert "accuracy" in out

    def test_on_named_shape(self, capsys):
        code = main(["linkpred", "--dataset", "ia-email", *FAST])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out


class TestNodeclass:
    def test_on_named_shape(self, capsys):
        code = main(["nodeclass", "--dataset", "dblp3", *FAST])
        assert code == 0
        assert "node-classification" in capsys.readouterr().out

    def test_on_bundle(self, tmp_path, capsys):
        npz = tmp_path / "d.npz"
        main(["generate", "--dataset", "dblp3", "--scale", "0.1",
              "--seed", "2", "-o", str(npz)])
        code = main(["nodeclass", "--input", str(npz), *FAST])
        assert code == 0
        assert "node-classification" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_linkpred_writes_metrics_and_trace(self, tmp_path, capsys):
        from repro.observability import validate_pipeline_observability

        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.jsonl"
        code = main(["linkpred", "--dataset", "ia-email", *FAST,
                     "--metrics-out", str(metrics),
                     "--trace-out", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote metrics: {metrics}" in out
        assert f"wrote trace: {trace}" in out
        result = validate_pipeline_observability(metrics, trace)
        counters = result["metrics"]["counters"]
        assert counters["sgns.pairs"] > 0
        assert counters["train.epochs"] == 3
        names = {row["name"] for row in result["spans"]}
        assert "train_epoch" in names and "sgns_epoch" in names

    def test_characterize_records_kernel_counters(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        code = main(["characterize", "--nodes", "500", "--edges", "4000",
                     *FAST, "--metrics-out", str(metrics)])
        assert code == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["walk.edges_scanned"] > 0
        assert counters["sgns.fp_ops"] > 0

    def test_no_flags_write_nothing(self, tmp_path, capsys):
        code = main(["linkpred", "--dataset", "ia-email", *FAST])
        assert code == 0
        assert "wrote metrics" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestSweep:
    def test_sweep_named_dataset(self, capsys):
        code = main(["sweep", "--dataset", "ia-email",
                     "--parameter", "num_walks", "--values", "1,2",
                     "--seeds", "1", *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy vs num_walks" in out
        assert "saturation point" in out

    def test_sweep_requires_known_parameter(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--dataset", "ia-email",
                  "--parameter", "window", "--values", "1"])


class TestCharacterize:
    def test_prints_all_tables(self, capsys):
        code = main(["characterize", "--nodes", "2000", "--edges", "20000",
                     *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "instruction mix" in out
        assert "GPU kernels" in out
        assert "thread scaling" in out


class TestServeSim:
    def test_closed_loop_run_with_live_updates(self, capsys):
        code = main(["serve-sim", "--nodes", "200", "--edges", "1500",
                     "--requests", "300", "--clients", "2",
                     "--update-batches", "1", "--update-interval", "0.01",
                     "--walks", "2", "--length", "4", "--dim", "4",
                     "--w2v-epochs", "1", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Closed-loop load" in out
        assert "Serving internals" in out
        assert "ingest: generation 1" in out

    def test_metrics_export(self, tmp_path, capsys):
        metrics = tmp_path / "serve_metrics.json"
        code = main(["serve-sim", "--nodes", "150", "--edges", "1000",
                     "--requests", "200", "--clients", "2",
                     "--walks", "2", "--length", "4", "--dim", "4",
                     "--w2v-epochs", "1", "--seed", "2",
                     "--metrics-out", str(metrics)])
        assert code == 0
        import json

        recorded = json.loads(metrics.read_text())
        assert recorded["counters"]["serving.store.publishes"] == 1
        assert "serving.latency.score_s" in recorded["histograms"]


class TestStreamSim:
    STREAM_FAST = ["--nodes", "200", "--edges", "1500",
                   "--requests", "200", "--clients", "2",
                   "--batches", "3", "--batch-interval", "0.01",
                   "--walks", "2", "--length", "4", "--dim", "4",
                   "--w2v-epochs", "1", "--seed", "1"]

    def test_stream_then_replay_matches(self, tmp_path, capsys):
        wal_dir = tmp_path / "wal"
        code = main(["stream-sim", "--wal-dir", str(wal_dir),
                     "--refresh-policy", "every-n",
                     "--refresh-edges", "200", *self.STREAM_FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "Closed-loop load" in out
        assert "Streaming ingest" in out
        assert "block backpressure" in out

        # Crash-recovery verification path: the WAL alone reconstructs
        # the whole graph (initial batch included).
        code = main(["stream-sim", "--wal-dir", str(wal_dir),
                     "--replay-only"])
        assert code == 0
        replay_out = capsys.readouterr().out
        assert "recovered from WAL" in replay_out
        assert "1500" in replay_out  # every edge is durable

    def test_metrics_export_has_stream_counters(self, tmp_path):
        metrics = tmp_path / "stream_metrics.json"
        code = main(["stream-sim", "--wal-dir", str(tmp_path / "wal"),
                     "--backpressure", "drop_oldest",
                     "--refresh-policy", "affected",
                     "--affected-fraction", "0.05",
                     "--metrics-out", str(metrics), *self.STREAM_FAST])
        assert code == 0
        import json

        recorded = json.loads(metrics.read_text())
        assert recorded["counters"]["stream.wal.batches"] >= 4
        assert recorded["counters"]["stream.controller.batches"] >= 3
        assert "stream.wal.fsync_seconds" in recorded["histograms"]


class TestPipelineSim:
    PIPE_FAST = ["--nodes", "200", "--edges", "1500",
                 "--requests", "200", "--clients", "2",
                 "--batches", "2", "--batch-interval", "0.01",
                 "--refresh-edges", "150", "--shards", "2",
                 "--replicas", "2", "--walks", "2", "--length", "4",
                 "--dim", "4", "--w2v-epochs", "1",
                 "--health-period", "0.05", "--seed", "1"]

    def test_end_to_end_stream_to_serve(self, tmp_path, capsys):
        """The one-command loop: stream ingest → incremental refresh →
        sharded publish → routed queries, supervised by the control
        plane — every stage's counters land in one metrics document."""
        import json

        metrics = tmp_path / "pipeline_metrics.json"
        code = main(["pipeline-sim", "--wal-dir", str(tmp_path / "wal"),
                     "--metrics-out", str(metrics), *self.PIPE_FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "Closed-loop load" in out
        assert "Streaming ingest" in out
        assert "Sharded tier" in out
        assert "Control plane" in out
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["stream.controller.batches"] > 0
        assert counters["serving.shard.publishes"] > 0
        assert counters["serving.controlplane.sweeps"] > 0
        assert counters.get("loadgen.errors", 0) == 0
        assert counters.get("serving.shard.gather_drops", 0) == 0

    def test_chaos_kill_is_respawned(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "pipeline_metrics.json"
        args = [arg for arg in self.PIPE_FAST]
        args[args.index("--requests") + 1] = "400"  # outlast the kill
        code = main(["pipeline-sim", "--kill-replica", "0:1:0.05",
                     "--metrics-out", str(metrics), *args])
        assert code == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["serving.controlplane.respawns"] >= 1
        assert counters.get("loadgen.errors", 0) == 0
        assert counters.get("serving.shard.degraded_queries", 0) == 0
