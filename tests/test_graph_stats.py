"""Unit tests for graph statistics."""

import numpy as np
import pytest

from repro.graph import TemporalGraph, compute_stats, generators
from repro.graph.stats import degree_histogram, gini, powerlaw_exponent_estimate


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_single_owner_approaches_one(self):
        values = np.zeros(1000)
        values[0] = 100.0
        assert gini(values) > 0.99

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    def test_scale_invariant(self, rng):
        v = rng.random(200)
        assert gini(v) == pytest.approx(gini(10 * v))


class TestComputeStats:
    def test_tiny_graph(self, tiny_graph):
        stats = compute_stats(tiny_graph)
        assert stats.num_nodes == 5
        assert stats.num_edges == 8
        assert stats.max_degree == 4
        assert stats.mean_degree == pytest.approx(8 / 5)
        assert stats.num_isolated == 1  # node 4 has no out-edges

    def test_as_row_keys(self, tiny_graph):
        row = compute_stats(tiny_graph).as_row()
        assert {"nodes", "edges", "max_deg", "mean_deg"} <= set(row)

    def test_empty_graph(self):
        from repro.graph.edges import TemporalEdgeList
        g = TemporalGraph.from_edge_list(TemporalEdgeList([], [], []))
        stats = compute_stats(g)
        assert stats.num_nodes == 0
        assert stats.mean_degree == 0.0


class TestDegreeHistogram:
    def test_counts_sum_to_nodes(self, tiny_graph):
        values, counts = degree_histogram(tiny_graph)
        assert counts.sum() == tiny_graph.num_nodes

    def test_empty(self):
        from repro.graph.edges import TemporalEdgeList
        g = TemporalGraph.from_edge_list(TemporalEdgeList([], [], []))
        values, counts = degree_histogram(g)
        assert len(values) == 0


class TestPowerlawEstimate:
    def test_heavy_tail_has_small_exponent(self):
        edges = generators.activity_driven_temporal(3000, 30000, seed=1)
        g = TemporalGraph.from_edge_list(edges)
        alpha = powerlaw_exponent_estimate(g)
        assert 1.2 < alpha < 3.5

    def test_er_has_larger_tail_exponent_than_heavy_tail(self):
        # Above the mean degree (10), ER's Poisson tail decays far faster
        # than the activity-driven power law; d_min must sit in the tail
        # for the Hill estimator to discriminate.
        heavy = TemporalGraph.from_edge_list(
            generators.activity_driven_temporal(3000, 30000, seed=1)
        )
        er = TemporalGraph.from_edge_list(
            generators.erdos_renyi_temporal(3000, 30000, seed=1)
        )
        assert (
            powerlaw_exponent_estimate(er, d_min=10)
            > powerlaw_exponent_estimate(heavy, d_min=10) + 1.0
        )

    def test_no_qualifying_degrees(self):
        from repro.graph.edges import TemporalEdgeList
        g = TemporalGraph.from_edge_list(TemporalEdgeList([], [], []))
        assert np.isnan(powerlaw_exponent_estimate(g))
