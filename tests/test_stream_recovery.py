"""Crash-recovery tests: kill a WAL writer mid-write, assert replay.

The crash-safety contract (ISSUE satellite): after ``os._exit`` at any
injected fault site, ``replay()`` reconstructs **exactly** the
acknowledged prefix — same src/dst/timestamps bit-for-bit, same
``num_nodes`` — and the recovered graph's generation markers are usable
by an :class:`~repro.tasks.incremental.IncrementalEmbedder`.

Each case launches ``stream_crash_child.py`` in a subprocess with a
``REPRO_FAULTS`` crash spec, waits for exit code 73 (the injected-crash
code), then replays the torn WAL directory in-process.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.embedding.trainer import SgnsConfig
from repro.faults import CRASH_EXIT_CODE
from repro.stream import StreamController, WriteAheadLog, replay
from repro.tasks.incremental import IncrementalEmbedder
from repro.walk.config import WalkConfig

pytestmark = [pytest.mark.stream, pytest.mark.faults]

TESTS_DIR = Path(__file__).resolve().parent
CHILD = TESTS_DIR / "stream_crash_child.py"
SRC_DIR = TESTS_DIR.parent / "src"

# Import the child module so parent and child share one batch tape.
_spec = importlib.util.spec_from_file_location("stream_crash_child", CHILD)
_child = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_child)
generate_batches = _child.generate_batches

NUM_BATCHES = 8
BATCH_SIZE = 15


def run_child(wal_dir, ack_file, mode, faults, *, segment_max_bytes=64 * 1024):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    env["REPRO_FAULTS"] = faults
    return subprocess.run(
        [sys.executable, str(CHILD), str(wal_dir), str(ack_file), mode,
         str(NUM_BATCHES), str(BATCH_SIZE), str(segment_max_bytes)],
        env=env, capture_output=True, text=True, timeout=120,
    )


def read_acks(ack_file) -> list[int]:
    if not Path(ack_file).exists():
        return []
    lines = Path(ack_file).read_text().strip().splitlines()
    return [int(line.split(":")[0]) for line in lines]


def assert_replay_is_acked_prefix(wal_dir, acked_batches: int) -> None:
    """The core invariant: replay == acknowledged prefix, bit-identical."""
    expected = generate_batches(NUM_BATCHES, BATCH_SIZE)[:acked_batches]
    result = replay(wal_dir)
    assert len(result.batches) == acked_batches
    for got, want in zip(result.batches, expected):
        assert np.array_equal(got.src, want.src)
        assert np.array_equal(got.dst, want.dst)
        assert np.array_equal(got.timestamps, want.timestamps)
        assert got.num_nodes == want.num_nodes
    assert result.total_edges == acked_batches * BATCH_SIZE


class TestCrashMidSegmentWrite:
    def test_crash_mid_record_write_fresh_segment(self, tmp_path):
        """Die halfway through batch 0's records: nothing was acked."""
        wal_dir, acks = tmp_path / "wal", tmp_path / "acks"
        proc = run_child(wal_dir, acks, "wal", "stream.wal.write:crash:0")
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        assert read_acks(acks) == []
        result = replay(wal_dir)
        assert result.batches == []
        assert result.truncated_bytes > 0  # the torn half-batch

    def test_crash_mid_record_write_after_rotation(self, tmp_path):
        """Die mid-write in a later, rotated segment (shard 5)."""
        wal_dir, acks = tmp_path / "wal", tmp_path / "acks"
        proc = run_child(wal_dir, acks, "wal", "stream.wal.write:crash:5",
                         segment_max_bytes=1024)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        assert read_acks(acks) == [0, 1, 2, 3, 4]
        assert_replay_is_acked_prefix(wal_dir, 5)
        result = replay(wal_dir)
        assert result.segments > 1          # rotation really happened
        assert result.truncated_bytes > 0   # and the tail really tore

    def test_crash_before_commit_loses_exactly_inflight_batch(self, tmp_path):
        """Die after batch 3's records but before its commit record."""
        wal_dir, acks = tmp_path / "wal", tmp_path / "acks"
        proc = run_child(wal_dir, acks, "wal", "stream.wal.fsync:crash:3")
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        assert read_acks(acks) == [0, 1, 2]
        assert_replay_is_acked_prefix(wal_dir, 3)
        # The un-acked batch is present as bytes but must not replay:
        # all of its records (sans commit) get truncated.
        from repro.stream.wal import RECORD_SIZE
        assert replay(wal_dir).truncated_bytes == BATCH_SIZE * RECORD_SIZE

    def test_crash_in_controller_drain(self, tmp_path):
        """Die as the controller picks batch 2 off the queue."""
        wal_dir, acks = tmp_path / "wal", tmp_path / "acks"
        proc = run_child(wal_dir, acks, "controller",
                         "stream.controller.drain:crash:2")
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        # Drain crashes before any write: batches 0-1 are durable.
        assert_replay_is_acked_prefix(wal_dir, 2)

    def test_no_fault_control_run(self, tmp_path):
        """Sanity: without faults the child exits 0 and everything lands."""
        wal_dir, acks = tmp_path / "wal", tmp_path / "acks"
        proc = run_child(wal_dir, acks, "wal", "")
        assert proc.returncode == 0, proc.stderr
        assert read_acks(acks) == list(range(NUM_BATCHES))
        assert_replay_is_acked_prefix(wal_dir, NUM_BATCHES)
        assert replay(wal_dir).truncated_bytes == 0


class TestRecoveredGraphIsUsable:
    def test_reopen_after_crash_continues_cleanly(self, tmp_path):
        wal_dir, acks = tmp_path / "wal", tmp_path / "acks"
        proc = run_child(wal_dir, acks, "wal", "stream.wal.fsync:crash:4",
                         segment_max_bytes=1024)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        with WriteAheadLog(wal_dir, segment_max_bytes=1024) as wal:
            assert wal.committed_batches == 4
            # Repair truncated the tear; appending resumes the sequence.
            wal.append(generate_batches(NUM_BATCHES, BATCH_SIZE)[4])
        assert_replay_is_acked_prefix(wal_dir, 5)
        assert replay(wal_dir).truncated_bytes == 0

    def test_recovered_markers_drive_incremental_embedder(self, tmp_path):
        wal_dir, acks = tmp_path / "wal", tmp_path / "acks"
        proc = run_child(wal_dir, acks, "wal", "stream.wal.fsync:crash:6")
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        dynamic, result = StreamController.recover(wal_dir)
        assert dynamic.generation == 6
        assert dynamic.num_edges == 6 * BATCH_SIZE
        embedder = IncrementalEmbedder(
            dynamic,
            walk_config=WalkConfig(num_walks_per_node=2, max_walk_length=4),
            sgns_config=SgnsConfig(dim=4, epochs=1),
            seed=11,
        )
        embedder.rebuild()
        # New post-recovery edges flow through the replayed marker chain.
        dynamic.append(generate_batches(NUM_BATCHES, BATCH_SIZE)[6])
        report = embedder.update()
        assert not report.full_rebuild
        assert report.generation == dynamic.generation == 7
