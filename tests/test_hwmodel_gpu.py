"""Unit tests for the GPU execution/stall model (Fig. 3, 5, 6, 11)."""

import numpy as np
import pytest

from repro.embedding.trainer import SgnsConfig, TrainerStats
from repro.errors import ModelError
from repro.hwmodel.gpu import (
    GpuConfig,
    GpuKernelModel,
    StallBreakdown,
    Word2vecGpuModel,
    classifier_kernel,
    cpu_time_seconds,
    walk_kernel,
    word2vec_kernel,
)


def basic_kernel(**overrides):
    params = dict(
        name="k", items=1e6, fp_per_item=50.0, loads_per_item=20.0,
        bytes_per_item=100.0, serial_fp_chain=2.0, irregular_fraction=0.3,
        divergence_cv=0.5, working_set_bytes=1e8,
    )
    params.update(overrides)
    return GpuKernelModel(**params)


class TestStallBreakdown:
    def test_fractions_normalize(self):
        stalls = StallBreakdown(imc_miss=1.0, compute_dependency=3.0)
        fracs = stalls.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert stalls.dominant() == "compute_dependency"

    def test_empty_fractions(self):
        assert all(v == 0.0 for v in StallBreakdown().fractions().values())


class TestGpuKernelModel:
    def test_validation(self):
        with pytest.raises(ModelError):
            basic_kernel(items=-1)
        with pytest.raises(ModelError):
            basic_kernel(irregular_fraction=1.5)

    def test_report_metrics_in_range(self):
        report = basic_kernel().report()
        assert 0.0 <= report.sm_utilization <= 1.0
        assert 0.0 <= report.l2_hit_rate <= 1.0
        assert 0.0 <= report.dram_bw_utilization <= 1.0
        assert report.time_seconds > 0

    def test_more_work_takes_longer(self):
        fast = basic_kernel(items=1e5).report()
        slow = basic_kernel(items=1e7).report()
        assert slow.time_seconds > fast.time_seconds

    def test_irregularity_grows_with_divergence(self):
        calm = basic_kernel(divergence_cv=0.0, irregular_fraction=0.0).report()
        wild = basic_kernel(divergence_cv=2.0, irregular_fraction=0.8).report()
        assert wild.irregularity > calm.irregularity

    def test_working_set_controls_l2(self):
        small = basic_kernel(working_set_bytes=1e6).report()
        huge = basic_kernel(working_set_bytes=1e10).report()
        assert small.l2_hit_rate > huge.l2_hit_rate

    def test_launches_add_overhead(self):
        one = basic_kernel(kernel_launches=1).report()
        many = basic_kernel(kernel_launches=100000).report()
        assert many.launch_seconds > one.launch_seconds
        assert many.time_seconds > one.time_seconds

    def test_serial_chain_drives_compute_stalls(self):
        pipelined = basic_kernel(serial_fp_chain=1.0).report()
        chained = basic_kernel(serial_fp_chain=8.0).report()
        assert (
            chained.stalls.fractions()["compute_dependency"]
            > pipelined.stalls.fractions()["compute_dependency"]
        )

    def test_metric_row_keys(self):
        row = basic_kernel().report().metric_row()
        assert set(row) == {"sm_util", "l2_hit", "dram_bw",
                            "imbalance", "irregularity"}


class TestKernelConstructors:
    def test_walk_kernel_dominant_stall(self, email_walk_stats, email_graph):
        report = walk_kernel(email_walk_stats, email_graph).report()
        # Fig. 11: compute dependencies dominate the walk kernel (Eq. 1).
        assert report.stalls.dominant() == "compute_dependency"

    def test_word2vec_kernel_dominant_stall(self):
        stats = TrainerStats(pairs_trained=100000, updates=100)
        report = word2vec_kernel(stats, SgnsConfig(dim=8), 10000, 1024).report()
        # Fig. 11: memory (scoreboard) dependencies dominate word2vec.
        assert report.stalls.dominant() == "memory_scoreboard"

    def test_classifier_kernels_dominant_stall(self):
        for training in (True, False):
            report = classifier_kernel(
                "clf", [(16, 32), (32, 1)], 128, 100000, training=training
            ).report()
            # Fig. 11: IMC misses dominate the tiny-GEMM classifier.
            assert report.stalls.dominant() == "imc_miss"

    def test_classifier_sm_utilization_low(self):
        # §VII-B: classifier SM utilization below 10%.
        report = classifier_kernel(
            "clf", [(16, 32), (32, 1)], 128, 100000
        ).report()
        assert report.sm_utilization < 0.1


class TestWord2vecGpuModel:
    @pytest.fixture()
    def model(self):
        return Word2vecGpuModel(num_sentences=50000, pairs_per_sentence=10)

    def test_batching_speedup_saturates(self, model):
        speedups = model.batching_speedups([1, 16, 256, 4096, 16384])
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[16] > 5
        assert speedups[4096] > 50
        # Fig. 5 shape: large, saturating, order-of-hundreds speedup.
        assert speedups[16384] < 1000
        assert abs(speedups[16384] - speedups[4096]) < 0.5 * speedups[4096]

    def test_optimization_ladder_monotone(self, model):
        ladder = model.optimization_ladder()
        values = [ladder["batch"], ladder["no-pad"],
                  ladder["coalesce"], ladder["par-red"]]
        assert values == sorted(values)
        assert ladder["batch"] > 50        # batching is the big win
        assert ladder["par-red"] > ladder["batch"]

    def test_invalid_batch(self, model):
        with pytest.raises(ModelError):
            model.batched_time(0)

    def test_larger_dim_slower(self):
        small = Word2vecGpuModel(1000, 10, dim=8).batched_time(1024)
        large = Word2vecGpuModel(1000, 10, dim=128).batched_time(1024)
        assert large > small


class TestCpuModel:
    def test_more_threads_faster_until_memory_bound(self):
        t1 = cpu_time_seconds(1e12, 1e9, threads=1)
        t64 = cpu_time_seconds(1e12, 1e9, threads=64)
        assert t64 < t1

    def test_memory_bound_floor(self):
        bound = cpu_time_seconds(1.0, 1e12, threads=128)
        config_bw = 380.0e9
        assert bound == pytest.approx(1e12 / config_bw)
