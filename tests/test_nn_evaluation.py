"""Unit tests for extended classification metrics."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.evaluation import (
    ClassificationReport,
    classification_report,
    confusion_matrix,
)


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        t = np.array([0, 1, 2, 1])
        matrix = confusion_matrix(t, t)
        assert np.array_equal(matrix, np.diag([1, 2, 1]))

    def test_off_diagonal_placement(self):
        # true class 0 predicted as 1 lands in C[0, 1].
        matrix = confusion_matrix(np.array([1]), np.array([0]),
                                  num_classes=2)
        assert matrix[0, 1] == 1
        assert matrix.sum() == 1

    def test_explicit_num_classes(self):
        matrix = confusion_matrix(np.array([0]), np.array([0]),
                                  num_classes=5)
        assert matrix.shape == (5, 5)

    def test_total_preserved(self, rng):
        p = rng.integers(0, 4, 100)
        t = rng.integers(0, 4, 100)
        assert confusion_matrix(p, t).sum() == 100

    def test_length_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            confusion_matrix(np.array([0]), np.array([0, 1]))

    def test_negative_class_rejected(self):
        with pytest.raises(TrainingError):
            confusion_matrix(np.array([-1]), np.array([0]))


class TestClassificationReport:
    def test_perfect_predictions(self):
        t = np.array([0, 0, 1, 1, 2])
        report = classification_report(t, t)
        assert np.allclose(report.precision, 1.0)
        assert np.allclose(report.recall, 1.0)
        assert report.macro_f1 == 1.0
        assert report.support.tolist() == [2, 2, 1]

    def test_known_values(self):
        # true:      0 0 1 1
        # predicted: 0 1 1 1
        report = classification_report(np.array([0, 1, 1, 1]),
                                       np.array([0, 0, 1, 1]))
        assert report.precision[0] == pytest.approx(1.0)      # 1/1
        assert report.recall[0] == pytest.approx(0.5)         # 1/2
        assert report.precision[1] == pytest.approx(2 / 3)
        assert report.recall[1] == pytest.approx(1.0)
        f1_0 = 2 * 1.0 * 0.5 / 1.5
        assert report.f1[0] == pytest.approx(f1_0)

    def test_never_predicted_class_zero_precision(self):
        report = classification_report(np.array([0, 0]), np.array([0, 1]),
                                       num_classes=2)
        assert report.precision[1] == 0.0
        assert report.recall[1] == 0.0
        assert report.f1[1] == 0.0

    def test_rows_structure(self):
        report = classification_report(np.array([0, 1]), np.array([0, 1]))
        rows = report.rows()
        assert len(rows) == 2
        assert set(rows[0]) == {"class", "precision", "recall", "f1",
                                "support"}

    def test_macro_average_definition(self, rng):
        p = rng.integers(0, 3, 200)
        t = rng.integers(0, 3, 200)
        report = classification_report(p, t)
        assert report.macro_f1 == pytest.approx(report.f1.mean())
