"""Unit tests for WalkCorpus."""

import numpy as np
import pytest

from repro.errors import WalkError
from repro.walk.corpus import PAD, WalkCorpus


def make_corpus() -> WalkCorpus:
    matrix = np.array([
        [0, 1, 2, PAD],
        [1, PAD, PAD, PAD],
        [2, 3, PAD, PAD],
        [3, 4, 1, 0],
    ])
    lengths = np.array([3, 1, 2, 4])
    return WalkCorpus(matrix, lengths)


class TestConstruction:
    def test_shape_properties(self):
        corpus = make_corpus()
        assert corpus.num_walks == 4
        assert corpus.max_walk_length == 4
        assert len(corpus) == 4

    def test_start_nodes_default(self):
        corpus = make_corpus()
        assert corpus.start_nodes.tolist() == [0, 1, 2, 3]

    def test_rejects_1d_matrix(self):
        with pytest.raises(WalkError):
            WalkCorpus(np.array([1, 2, 3]), np.array([3]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(WalkError):
            WalkCorpus(np.zeros((2, 3), dtype=int), np.array([1]))

    def test_rejects_out_of_range_lengths(self):
        with pytest.raises(WalkError):
            WalkCorpus(np.zeros((2, 3), dtype=int), np.array([0, 2]))
        with pytest.raises(WalkError):
            WalkCorpus(np.zeros((2, 3), dtype=int), np.array([4, 2]))


class TestAccess:
    def test_walk_trims_padding(self):
        corpus = make_corpus()
        assert corpus.walk(0).tolist() == [0, 1, 2]
        assert corpus.walk(1).tolist() == [1]

    def test_sentences_filters_short(self):
        corpus = make_corpus()
        sentences = list(corpus.sentences(min_length=2))
        assert len(sentences) == 3

    def test_total_nodes(self):
        assert make_corpus().total_nodes() == 10

    def test_node_frequencies(self):
        freqs = make_corpus().node_frequencies(5)
        # Node 1 appears in walks 0, 1 and 3.
        assert freqs[1] == 3
        assert freqs.sum() == 10


class TestHistogram:
    def test_length_histogram(self):
        values, counts = make_corpus().length_histogram()
        assert dict(zip(values.tolist(), counts.tolist())) == {
            1: 1, 2: 1, 3: 1, 4: 1
        }

    def test_length_fractions_sum_to_one(self):
        fractions = make_corpus().length_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_power_law_shape_on_directed_temporal_graph(self, email_edges):
        # Fig. 4: on the *directed* interaction graph most walks are
        # short, and frequency decays with length (the wiki-talk power
        # law).  The undirected view does not show this — reverse edges
        # keep walks alive — which is why the fixture builds directed.
        from repro.graph import TemporalGraph
        from repro.walk import TemporalWalkEngine, WalkConfig

        g = TemporalGraph.from_edge_list(email_edges)
        corpus = TemporalWalkEngine(g).run(
            WalkConfig(num_walks_per_node=4, max_walk_length=8), seed=5
        )
        fractions = corpus.length_fractions()
        mode = max(fractions, key=fractions.get)
        # Fig. 4: mass is centered on lengths 1-5 and the frequency of
        # longer walks decays steeply.
        assert mode <= 3
        assert sum(v for k, v in fractions.items() if k <= 5) > 0.8
        assert fractions.get(8, 0.0) < 0.05
        # Monotone decay past the mode.
        tail = [fractions.get(k, 0.0) for k in range(mode, 9)]
        assert all(a >= b for a, b in zip(tail, tail[1:]))


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        corpus = make_corpus()
        path = tmp_path / "corpus.npz"
        corpus.save(path)
        back = WalkCorpus.load(path)
        assert np.array_equal(back.matrix, corpus.matrix)
        assert np.array_equal(back.lengths, corpus.lengths)
        assert np.array_equal(back.start_nodes, corpus.start_nodes)

    def test_load_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, matrix=np.zeros((1, 2), dtype=int))
        with pytest.raises(WalkError, match="missing arrays"):
            WalkCorpus.load(path)


class TestValidation:
    def test_validate_accepts_real_walks(self, tiny_graph):
        matrix = np.array([[0, 2, 3, PAD]])
        corpus = WalkCorpus(matrix, np.array([3]))
        assert corpus.validate_temporal_order(tiny_graph)

    def test_validate_rejects_nonexistent_edge(self, tiny_graph):
        matrix = np.array([[0, 4, PAD, PAD]])  # no edge 0 -> 4
        corpus = WalkCorpus(matrix, np.array([2]))
        assert not corpus.validate_temporal_order(tiny_graph)

    def test_validate_rejects_time_violation(self, tiny_graph):
        # 0 -> 3 uses t=0.9; 3 -> 4 needs t > 0.9 but the edge is at 0.8.
        matrix = np.array([[0, 3, 4, PAD]])
        corpus = WalkCorpus(matrix, np.array([3]))
        assert not corpus.validate_temporal_order(tiny_graph)
