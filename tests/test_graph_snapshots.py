"""Unit tests for snapshot views."""

import numpy as np
import pytest

from repro.graph.snapshots import snapshot_at, snapshot_sequence, window_edge_lists


class TestSnapshotAt:
    def test_filters_future_edges(self, tiny_graph):
        snap = snapshot_at(tiny_graph, 0.4)
        assert snap.num_nodes == tiny_graph.num_nodes
        assert np.all(snap.ts <= 0.4)

    def test_full_time_keeps_all(self, tiny_graph):
        snap = snapshot_at(tiny_graph, 1.0)
        assert snap.num_edges == tiny_graph.num_edges

    def test_before_everything_is_empty(self, tiny_graph):
        assert snapshot_at(tiny_graph, -1.0).num_edges == 0


class TestSnapshotSequence:
    def test_cumulative_growth(self, tiny_graph):
        snaps = snapshot_sequence(tiny_graph, 4)
        sizes = [s.num_edges for s in snaps]
        assert sizes == sorted(sizes)
        assert sizes[-1] == tiny_graph.num_edges

    def test_single_snapshot_is_full_graph(self, tiny_graph):
        snaps = snapshot_sequence(tiny_graph, 1)
        assert snaps[0].num_edges == tiny_graph.num_edges

    def test_invalid_count(self, tiny_graph):
        with pytest.raises(ValueError):
            snapshot_sequence(tiny_graph, 0)


class TestWindows:
    def test_windows_partition_edges(self, tiny_graph):
        windows = window_edge_lists(tiny_graph, 3)
        assert sum(len(w) for w in windows) == tiny_graph.num_edges

    def test_windows_are_chronological(self, tiny_graph):
        windows = window_edge_lists(tiny_graph, 3)
        previous_max = -np.inf
        for w in windows:
            if len(w) == 0:
                continue
            assert w.timestamps.min() >= previous_max
            previous_max = w.timestamps.max()

    def test_invalid_count(self, tiny_graph):
        with pytest.raises(ValueError):
            window_edge_lists(tiny_graph, 0)
