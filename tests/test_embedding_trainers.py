"""Unit tests for the sequential and batched SGNS trainers."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.embedding import (
    BatchedSgnsTrainer,
    SequentialSgnsTrainer,
    SgnsConfig,
    train_embeddings,
)


class TestSgnsConfig:
    def test_defaults_match_paper(self):
        cfg = SgnsConfig()
        assert cfg.dim == 8  # Fig. 8d's saturation point

    @pytest.mark.parametrize("field,value", [
        ("dim", 0), ("window", 0), ("negatives", 0), ("epochs", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(EmbeddingError):
            SgnsConfig(**{field: value})


class TestSequentialTrainer:
    def test_loss_decreases(self, email_corpus, email_graph):
        trainer = SequentialSgnsTrainer(SgnsConfig(dim=8, epochs=2))
        trainer.train(email_corpus, email_graph.num_nodes, seed=1)
        stats = trainer.last_stats
        first = np.mean(stats.losses[:20])
        last = np.mean(stats.losses[-20:])
        assert last < first

    def test_stats_counters(self, email_corpus, email_graph):
        trainer = SequentialSgnsTrainer(SgnsConfig(dim=4, epochs=1))
        trainer.train(email_corpus, email_graph.num_nodes, seed=1)
        stats = trainer.last_stats
        assert stats.pairs_trained > 0
        assert stats.updates == stats.sentences  # one update per sentence
        assert stats.fp_ops > 0
        assert stats.wall_seconds > 0

    def test_deterministic_by_seed(self, email_corpus, email_graph):
        a = SequentialSgnsTrainer(SgnsConfig(dim=4, epochs=1)).train(
            email_corpus, email_graph.num_nodes, seed=2
        )
        b = SequentialSgnsTrainer(SgnsConfig(dim=4, epochs=1)).train(
            email_corpus, email_graph.num_nodes, seed=2
        )
        assert np.allclose(a.w_in, b.w_in)

    def test_subsampling_reduces_pairs(self, email_corpus, email_graph):
        plain = SequentialSgnsTrainer(SgnsConfig(dim=4, epochs=1))
        plain.train(email_corpus, email_graph.num_nodes, seed=3)
        sub = SequentialSgnsTrainer(
            SgnsConfig(dim=4, epochs=1, subsample_threshold=1e-4)
        )
        sub.train(email_corpus, email_graph.num_nodes, seed=3)
        assert sub.last_stats.pairs_trained < plain.last_stats.pairs_trained


class TestBatchedTrainer:
    def test_one_update_per_batch(self, email_corpus, email_graph):
        trainer = BatchedSgnsTrainer(SgnsConfig(dim=4, epochs=1),
                                     batch_sentences=128)
        trainer.train(email_corpus, email_graph.num_nodes, seed=1)
        sentences = sum(1 for _ in email_corpus.sentences(min_length=2))
        expected_batches = -(-sentences // 128)
        assert trainer.last_stats.updates <= expected_batches

    def test_loss_decreases(self, email_corpus, email_graph):
        trainer = BatchedSgnsTrainer(SgnsConfig(dim=8, epochs=3),
                                     batch_sentences=256)
        trainer.train(email_corpus, email_graph.num_nodes, seed=1)
        losses = trainer.last_stats.losses
        assert losses[-1] < losses[0]

    def test_batch_size_one_matches_sequential_update_count(
        self, email_corpus, email_graph
    ):
        batched = BatchedSgnsTrainer(SgnsConfig(dim=4, epochs=1),
                                     batch_sentences=1)
        batched.train(email_corpus, email_graph.num_nodes, seed=1)
        sequential = SequentialSgnsTrainer(SgnsConfig(dim=4, epochs=1))
        sequential.train(email_corpus, email_graph.num_nodes, seed=1)
        # batch=1 sends every sentence through its own update, like the
        # sequential trainer (empty-pair sentences may differ by rng).
        assert batched.last_stats.updates == pytest.approx(
            sequential.last_stats.updates, rel=0.05
        )

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchedSgnsTrainer(SgnsConfig(), batch_sentences=0)

    def test_embeddings_bounded_on_hub_graph(self, email_corpus, email_graph):
        # The stale-batch stabilization (capped mode) must keep hub rows
        # finite where naive summation can explode.
        trainer = BatchedSgnsTrainer(SgnsConfig(dim=8, epochs=3),
                                     batch_sentences=1024)
        model = trainer.train(email_corpus, email_graph.num_nodes, seed=1)
        assert np.isfinite(model.w_in).all()
        assert np.abs(model.w_in).max() < 100.0


class TestTrainEmbeddingsFrontDoor:
    def test_batched_path(self, email_corpus, email_graph):
        emb, stats = train_embeddings(
            email_corpus, email_graph.num_nodes,
            SgnsConfig(dim=4, epochs=1), batch_sentences=256, seed=1,
        )
        assert emb.matrix.shape == (email_graph.num_nodes, 4)
        assert stats.pairs_trained > 0

    def test_sequential_path(self, email_corpus, email_graph):
        emb, stats = train_embeddings(
            email_corpus, email_graph.num_nodes,
            SgnsConfig(dim=4, epochs=1), batch_sentences=None, seed=1,
        )
        assert emb.dim == 4
        assert stats.updates == stats.sentences

    def test_cowalkers_more_similar_than_random(self, email_embeddings,
                                                email_corpus):
        # Nodes adjacent within walks should embed closer than random
        # pairs — the similarity-preservation property of Def. III.3.
        sims_near, sims_far = [], []
        rng = np.random.default_rng(0)
        n = email_embeddings.num_nodes
        for i in range(0, email_corpus.num_walks, 5):
            walk = email_corpus.walk(i)
            if len(walk) < 2:
                continue
            sims_near.append(
                email_embeddings.cosine_similarity(int(walk[0]), int(walk[1]))
            )
            sims_far.append(
                email_embeddings.cosine_similarity(
                    int(walk[0]), int(rng.integers(0, n))
                )
            )
        assert np.mean(sims_near) > np.mean(sims_far) + 0.05
