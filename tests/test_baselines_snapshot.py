"""Unit tests for the snapshot-model baseline."""

import numpy as np
import pytest

from repro.baselines import snapshot_embeddings
from repro.embedding import SgnsConfig
from repro.errors import ModelError
from repro.graph import TemporalGraph, generators
from repro.walk import WalkConfig


@pytest.fixture(scope="module")
def small_graph():
    edges = generators.ia_email_like(scale=0.002, seed=71)
    return TemporalGraph.from_edge_list(edges.with_reverse_edges())


FAST_WALK = WalkConfig(num_walks_per_node=3, max_walk_length=5)
FAST_SGNS = SgnsConfig(dim=8, epochs=1)


class TestSnapshotEmbeddings:
    def test_shape(self, small_graph):
        emb = snapshot_embeddings(
            small_graph, num_snapshots=3, walk_config=FAST_WALK,
            sgns_config=FAST_SGNS, seed=1,
        )
        assert emb.matrix.shape == (small_graph.num_nodes, 8)

    def test_single_snapshot_equals_static_model(self, small_graph):
        emb = snapshot_embeddings(
            small_graph, num_snapshots=1, walk_config=FAST_WALK,
            sgns_config=FAST_SGNS, seed=2,
        )
        assert np.isfinite(emb.matrix).all()

    def test_invalid_snapshot_count(self, small_graph):
        with pytest.raises(ModelError):
            snapshot_embeddings(small_graph, num_snapshots=0)

    def test_isolated_nodes_stay_zero(self):
        from repro.graph.edges import TemporalEdgeList
        edges = TemporalEdgeList([0, 1], [1, 0], [0.2, 0.8], num_nodes=4)
        graph = TemporalGraph.from_edge_list(edges)
        emb = snapshot_embeddings(
            graph, num_snapshots=2, walk_config=FAST_WALK,
            sgns_config=FAST_SGNS, seed=3,
        )
        # Nodes 2, 3 never appear in any snapshot with out-edges.
        assert np.all(emb.matrix[3] == 0.0)

    def test_embeddings_carry_signal(self, small_graph):
        emb = snapshot_embeddings(
            small_graph, num_snapshots=3, walk_config=FAST_WALK,
            sgns_config=SgnsConfig(dim=8, epochs=3), seed=4,
        )
        rng = np.random.default_rng(0)
        src = np.repeat(np.arange(small_graph.num_nodes),
                        np.diff(small_graph.indptr))
        near, far = [], []
        for e in rng.choice(small_graph.num_edges, size=150):
            near.append(emb.cosine_similarity(int(src[e]),
                                              int(small_graph.dst[e])))
            far.append(emb.cosine_similarity(
                int(src[e]), int(rng.integers(0, small_graph.num_nodes))))
        assert np.mean(near) > np.mean(far)
