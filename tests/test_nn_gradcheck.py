"""Finite-difference gradient verification of every layer/loss combination.

These are the ground-truth correctness tests for the FNN substrate: the
analytic backward passes must agree with numerical differentiation to
high precision on the exact architectures the paper's tasks use.
"""

import numpy as np
import pytest

from repro.nn import (
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    Linear,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
    gradient_check,
)

TOLERANCE = 1e-5


@pytest.fixture()
def x(rng):
    return rng.normal(size=(6, 5))


class TestGradientChecks:
    def test_linear_bce(self, x, rng):
        model = Sequential(Linear(5, 1, seed=1))
        err = gradient_check(model, BCEWithLogitsLoss(), x,
                             rng.integers(0, 2, 6).astype(float))
        assert err < TOLERANCE

    def test_paper_link_prediction_architecture(self, x, rng):
        # 2-layer FNN + BCE (§IV-B link prediction).
        model = Sequential(Linear(5, 8, seed=1), ReLU(), Linear(8, 1, seed=2))
        err = gradient_check(model, BCEWithLogitsLoss(), x,
                             rng.integers(0, 2, 6).astype(float))
        assert err < TOLERANCE

    def test_paper_node_classification_architecture(self, x, rng):
        # 3-layer FNN + NLL (§IV-B node classification).
        model = Sequential(
            Linear(5, 8, seed=1), ReLU(),
            Linear(8, 6, seed=2), ReLU(),
            Linear(6, 4, seed=3),
        )
        err = gradient_check(model, CrossEntropyLoss(), x,
                             rng.integers(0, 4, 6))
        assert err < TOLERANCE

    def test_sigmoid_stack(self, x, rng):
        model = Sequential(Linear(5, 4, seed=1), Sigmoid(), Linear(4, 3, seed=2))
        err = gradient_check(model, CrossEntropyLoss(), x, rng.integers(0, 3, 6))
        assert err < TOLERANCE

    def test_tanh_stack(self, x, rng):
        model = Sequential(Linear(5, 4, seed=1), Tanh(), Linear(4, 1, seed=2))
        err = gradient_check(model, BCEWithLogitsLoss(), x,
                             rng.integers(0, 2, 6).astype(float))
        assert err < TOLERANCE

    def test_residual_classifier(self, x, rng):
        # §VIII-A's ResNet-style variant.
        model = Sequential(
            Linear(5, 8, seed=1), ReLU(),
            Residual(Sequential(Linear(8, 8, seed=2), ReLU(),
                                Linear(8, 8, seed=3))),
            Linear(8, 3, seed=4),
        )
        err = gradient_check(model, CrossEntropyLoss(), x, rng.integers(0, 3, 6))
        assert err < TOLERANCE

    def test_deep_residual_stack(self, x, rng):
        blocks = [
            Residual(Sequential(Linear(8, 8, seed=i), Tanh()))
            for i in range(5, 8)
        ]
        model = Sequential(Linear(5, 8, seed=1), *blocks, Linear(8, 1, seed=9))
        err = gradient_check(model, BCEWithLogitsLoss(), x,
                             rng.integers(0, 2, 6).astype(float))
        assert err < TOLERANCE
