"""Unit tests for negative edge sampling (Fig. 7 step 3)."""

import numpy as np
import pytest

from repro.errors import DataPreparationError
from repro.graph.edges import TemporalEdgeList
from repro.tasks.negative_sampling import sample_negative_edges


class TestNegativeSampling:
    def test_count_matches_positives_by_default(self, email_edges):
        forbidden = email_edges.edge_key_set()
        negatives = sample_negative_edges(
            email_edges, forbidden, email_edges.num_nodes, seed=1
        )
        assert len(negatives) == len(email_edges)

    def test_negatives_absent_from_graph(self, email_edges):
        forbidden = email_edges.edge_key_set()
        negatives = sample_negative_edges(
            email_edges, forbidden, email_edges.num_nodes, seed=1
        )
        assert not (negatives.edge_key_set() & forbidden)

    def test_no_self_loops(self, email_edges):
        negatives = sample_negative_edges(
            email_edges, email_edges.edge_key_set(), email_edges.num_nodes,
            seed=2,
        )
        assert np.all(negatives.src != negatives.dst)

    def test_negatives_mutually_distinct(self, email_edges):
        negatives = sample_negative_edges(
            email_edges, email_edges.edge_key_set(), email_edges.num_nodes,
            seed=3,
        )
        assert len(negatives.edge_key_set()) == len(negatives)

    def test_explicit_count(self, email_edges):
        negatives = sample_negative_edges(
            email_edges, email_edges.edge_key_set(), email_edges.num_nodes,
            count=17, seed=4,
        )
        assert len(negatives) == 17

    def test_zero_count(self, email_edges):
        negatives = sample_negative_edges(
            email_edges, set(), email_edges.num_nodes, count=0
        )
        assert len(negatives) == 0

    def test_timestamps_inherited_from_positives(self, tiny_edges):
        negatives = sample_negative_edges(
            tiny_edges, tiny_edges.edge_key_set(), 50, count=8, seed=5
        )
        assert set(negatives.timestamps.tolist()) <= set(
            tiny_edges.timestamps.tolist()
        )

    def test_empty_positives_rejected(self):
        empty = TemporalEdgeList([], [], [], num_nodes=5)
        with pytest.raises(DataPreparationError):
            sample_negative_edges(empty, set(), 5, count=3)

    def test_too_few_nodes_rejected(self, tiny_edges):
        with pytest.raises(DataPreparationError):
            sample_negative_edges(tiny_edges, set(), 1, count=1)

    def test_dense_graph_rejected(self):
        # Complete directed graph on 4 nodes: nothing left to sample.
        src, dst = zip(*[(i, j) for i in range(4) for j in range(4) if i != j])
        edges = TemporalEdgeList(src, dst, np.linspace(0, 1, len(src)))
        with pytest.raises(DataPreparationError, match="too dense"):
            sample_negative_edges(edges, edges.edge_key_set(), 4)

    def test_rejection_rounds_preserve_dst_only_src(self):
        # Regression: a rejected candidate used to keep whatever src its
        # previous round drew, so under heavy rejection the fraction of
        # src-corrupted negatives drifted far above
        # corrupt_both_probability and dst-only negatives detached from
        # their base positive.  A small node set with many requested
        # negatives forces collisions, hence many rejection rounds.
        rng = np.random.default_rng(7)
        num_nodes = 20
        n_pos = 120
        src = rng.integers(0, num_nodes, size=n_pos)
        dst = (src + rng.integers(1, num_nodes, size=n_pos)) % num_nodes
        positives = TemporalEdgeList(src, dst, np.linspace(0, 1, n_pos),
                                     num_nodes=num_nodes)
        count = 150
        negatives = sample_negative_edges(
            positives, positives.edge_key_set(), num_nodes,
            count=count, corrupt_both_probability=0.25, seed=8,
        )
        base_src = positives.src[np.arange(count) % n_pos]
        src_changed = float(np.mean(negatives.src != base_src))
        # Each accepted negative's src differs from its base only when
        # its *final* round corrupted both endpoints, so the observed
        # fraction must stay near 0.25 regardless of rejection count
        # (the compounding pre-fix sampler measures ~0.39 here).
        assert 0.1 < src_changed < 0.3

    def test_deterministic_by_seed(self, email_edges):
        a = sample_negative_edges(
            email_edges, email_edges.edge_key_set(), email_edges.num_nodes,
            count=50, seed=6,
        )
        b = sample_negative_edges(
            email_edges, email_edges.edge_key_set(), email_edges.num_nodes,
            count=50, seed=6,
        )
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)
