"""Tests for the control-plane autoscaler
(:mod:`repro.serving.controlplane`, PR 10).

The contracts pinned here:

- **auto-respawn**: a killed replica is detected by the health sweep
  and replaced by a fresh worker holding the *served* version's slice;
  recovery is invisible to readers (answers stay bit-identical to the
  single-process oracle) and killing one replica of every shard under
  closed-loop load costs zero errors and zero degraded queries;
- **crash-loop circuit breaker**: a worker that dies on every respawn
  (the ``controlplane.respawn`` fault site) burns exponential-backoff
  attempts up to ``max_respawns``, then the breaker trips — the tier
  stays up degraded, never hangs or fork-loops, and
  ``serving.controlplane.respawn_giveup`` records the give-up;
- **skew policy**: sustained per-shard request-rate skew (hysteresis
  over ``skew_observations`` sweeps, ``rebalance_cooldown`` between
  moves) triggers a live rebalance whose plan comes from
  :meth:`ControlPlane.choose_plan`; transient skew and idle tiers
  never trigger;
- **publish/respawn serialization**: a publish racing a respawn yields
  one consistent version — the replacement can never serve a slice the
  router no longer routes (both paths hold ``_publish_lock`` end to
  end).

Everything runs ``step()`` synchronously under an injected clock (the
``TokenBucket`` pattern), so no test waits on wall-clock supervision.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ServingError
from repro.faults import FaultPlan
from repro.observability import Recorder, use_recorder
from repro.serving import (
    ControlPlane,
    ControlPlaneConfig,
    EmbeddingStore,
    RecommendationIndex,
    ShardPlan,
    ShardedFrontend,
    ShardedPublisher,
    ShardedServingConfig,
    run_load,
)

pytestmark = pytest.mark.shards


def make_store(matrix: np.ndarray, generation: int = 0) -> EmbeddingStore:
    store = EmbeddingStore()
    store.publish(matrix, generation=generation)
    return store


def oracle_for(matrix: np.ndarray) -> RecommendationIndex:
    return RecommendationIndex(make_store(matrix), cache_size=0)


def sharded(plan: ShardPlan, store: EmbeddingStore,
            config: ShardedServingConfig | None = None) -> ShardedFrontend:
    frontend = ShardedFrontend(plan, config).start()
    ShardedPublisher(frontend).attach(store)
    return frontend


class FakeClock:
    """Manually advanced monotonic clock for synchronous ``step()``."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def plane_for(frontend: ShardedFrontend, clock: FakeClock,
              fault_plan: FaultPlan | None = None,
              **knobs) -> ControlPlane:
    return ControlPlane(frontend, ControlPlaneConfig(**knobs),
                        fault_plan=fault_plan, clock=clock)


class TestRespawn:
    def test_respawn_restores_replication_bit_identical(self):
        rng = np.random.default_rng(70)
        matrix = rng.standard_normal((120, 8))
        oracle = oracle_for(matrix)
        plan = ShardPlan(2, "hash")
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        clock = FakeClock()
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                plane = plane_for(frontend, clock)
                for shard in range(plan.num_shards):
                    frontend.kill_replica(shard, 0)
                assert frontend.alive_workers == 2
                report = plane.step()
                assert report.respawned == 2
                assert frontend.alive_workers == 4
                # The replacements hold the served version: kill the
                # *surviving* original of every shard so only respawned
                # workers answer, and check against the oracle.
                for shard in range(plan.num_shards):
                    frontend.kill_replica(shard, 1)
                for node in (0, 17, 64, 119):
                    ids, scores = frontend.top_k(node, 9)
                    exp_ids, exp_scores = oracle.top_k(node, 9)
                    np.testing.assert_array_equal(ids, exp_ids)
                    np.testing.assert_array_equal(scores, exp_scores)
        counters = recorder.counters
        assert counters["serving.controlplane.respawns"] == 2
        assert counters.get("serving.shard.degraded_queries", 0) == 0
        hist = recorder.histograms["serving.controlplane.recovery_seconds"]
        assert hist.count == 2

    def test_kill_every_shard_under_load_is_invisible(self):
        """The acceptance drill: R=2, one replica of every shard killed
        mid-load with the control plane supervising — zero errors, zero
        degraded queries, one respawn per kill, post-recovery answers
        bit-identical to the oracle."""
        rng = np.random.default_rng(71)
        matrix = rng.standard_normal((150, 8))
        oracle = oracle_for(matrix)
        plan = ShardPlan(2, "hash")
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                plane = ControlPlane(
                    frontend,
                    ControlPlaneConfig(health_period=0.02)).start()
                killed = threading.Event()

                def killer() -> None:
                    for shard in range(plan.num_shards):
                        frontend.kill_replica(shard, shard % 2)
                    killed.set()

                chaos = threading.Timer(0.05, killer)
                chaos.start()
                try:
                    report = run_load(frontend, num_requests=600,
                                      clients=4, topk_fraction=0.5,
                                      k=8, seed=4)
                finally:
                    chaos.cancel()
                    killed.wait(5.0)
                    # Bounded wait for the supervisor to finish
                    # recovering before we stop it.
                    for _ in range(200):
                        if frontend.alive_workers == 4:
                            break
                        threading.Event().wait(0.02)
                    plane.close()
                assert report.errors == 0
                assert frontend.alive_workers == 4
                for node in (3, 77, 149):
                    ids, scores = frontend.top_k(node, 10)
                    exp_ids, exp_scores = oracle.top_k(node, 10)
                    np.testing.assert_array_equal(ids, exp_ids)
                    np.testing.assert_array_equal(scores, exp_scores)
        counters = recorder.counters
        assert counters["serving.controlplane.respawns"] == 2
        assert counters.get("serving.shard.degraded_queries", 0) == 0
        assert counters.get("serving.shard.gather_drops", 0) == 0

    def test_respawn_skips_live_slot(self):
        rng = np.random.default_rng(72)
        matrix = rng.standard_normal((40, 4))
        with sharded(ShardPlan(2, "hash"), make_store(matrix)) as frontend:
            assert frontend.respawn_replica(0, 0) is False
            with pytest.raises(ServingError):
                frontend.respawn_replica(9, 0)
            with pytest.raises(ServingError):
                frontend.respawn_replica(0, 5)

    def test_respawned_worker_serves_post_publish_version(self):
        """A publish landing while a replica is dead must win: the
        later respawn re-slices the *new* matrix under the *new*
        version, not the one current when the replica died."""
        rng = np.random.default_rng(73)
        first = rng.standard_normal((60, 4))
        second = rng.standard_normal((60, 4))
        store = make_store(first, generation=1)
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        clock = FakeClock()
        with sharded(ShardPlan(2, "range"), store, config) as frontend:
            frontend.kill_replica(0, 0)
            store.publish(second, generation=2)
            plane = plane_for(frontend, clock)
            assert plane.step().respawned == 1
            frontend.kill_replica(0, 1)  # only the respawn serves shard 0
            oracle = oracle_for(second)
            for node in (0, 29, 59):
                ids, scores = frontend.top_k(node, 7)
                exp_ids, exp_scores = oracle.top_k(node, 7)
                np.testing.assert_array_equal(ids, exp_ids)
                np.testing.assert_array_equal(scores, exp_scores)

    def test_step_noop_on_unstarted_or_closed_frontend(self):
        frontend = ShardedFrontend(ShardPlan(2, "hash"))
        plane = plane_for(frontend, FakeClock())
        assert plane.step().slots_seen == []
        started = ShardedFrontend(ShardPlan(2, "hash")).start()
        started.close()
        assert plane_for(started, FakeClock()).step().slots_seen == []


class TestPublishRespawnRace:
    def test_publish_racing_respawn_yields_one_consistent_version(self):
        """Satellite 1: both paths serialize on ``_publish_lock``, so
        whichever order the race resolves in, the tier ends fully on
        the published version — never a mix of old and new slices."""
        rng = np.random.default_rng(74)
        first = rng.standard_normal((80, 6))
        second = rng.standard_normal((80, 6))
        store = make_store(first, generation=1)
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), store, config) as frontend:
                frontend.kill_replica(0, 0)
                barrier = threading.Barrier(2)
                errors: list = []

                def publisher() -> None:
                    try:
                        barrier.wait(5.0)
                        store.publish(second, generation=2)
                    except BaseException as exc:
                        errors.append(exc)

                def respawner() -> None:
                    try:
                        barrier.wait(5.0)
                        frontend.respawn_replica(0, 0)
                    except BaseException as exc:
                        errors.append(exc)

                threads = [threading.Thread(target=publisher),
                           threading.Thread(target=respawner)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(30.0)
                assert not errors, errors
                assert frontend.version == 2
                assert frontend.alive_workers == 4
                # Force every shard-0 read through the respawned
                # worker: it must hold the published version.
                frontend.kill_replica(0, 1)
                oracle = oracle_for(second)
                for node in (0, 40, 79):
                    ids, scores = frontend.top_k(node, 9)
                    exp_ids, exp_scores = oracle.top_k(node, 9)
                    np.testing.assert_array_equal(ids, exp_ids)
                    np.testing.assert_array_equal(scores, exp_scores)
        # One consistent version end to end: nothing ever answered
        # stale and no gather dropped a shard.
        counters = recorder.counters
        assert counters.get("serving.shard.stale_retries", 0) == 0
        assert counters.get("serving.shard.gather_drops", 0) == 0


class TestCrashLoop:
    def test_circuit_breaker_trips_after_max_respawns(self):
        """Satellite 3: a worker dying on every respawn trips the
        breaker after ``max_respawns`` attempts; the tier stays up
        degraded (sibling keeps answering) instead of hanging."""
        rng = np.random.default_rng(75)
        matrix = rng.standard_normal((60, 6))
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        clock = FakeClock()
        crash_always = FaultPlan.parse("controlplane.respawn:crash:0:99")
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), make_store(matrix),
                         config) as frontend:
                plane = plane_for(frontend, clock,
                                  fault_plan=crash_always,
                                  max_respawns=3, respawn_backoff=0.1)
                frontend.kill_replica(0, 1)
                failures = 0
                for _ in range(6):
                    report = plane.step()
                    failures += report.respawn_failures
                    clock.advance(10.0)  # clear every backoff window
                assert failures == 3
                # Breaker tripped: later sweeps never attempt again.
                after = plane.step()
                assert after.respawn_failures == 0
                assert after.dead_slots == 1
                # Degraded, not hung: the sibling still answers with
                # full fan-in and the other shard is untouched.
                ids, _scores = frontend.top_k(5, 7)
                assert len(ids) == 7
                assert frontend.alive_workers == 3
        counters = recorder.counters
        assert counters["serving.controlplane.respawn_failures"] == 3
        assert counters["serving.controlplane.respawn_giveup"] == 1
        assert counters.get("serving.controlplane.respawns", 0) == 0
        assert counters.get("serving.shard.degraded_queries", 0) == 0

    def test_backoff_gates_attempts_between_sweeps(self):
        rng = np.random.default_rng(76)
        matrix = rng.standard_normal((40, 4))
        config = ShardedServingConfig(replication_factor=2)
        clock = FakeClock()
        crash_always = FaultPlan.parse("controlplane.respawn:crash:*:99")
        with sharded(ShardPlan(2, "hash"), make_store(matrix),
                     config) as frontend:
            plane = plane_for(frontend, clock, fault_plan=crash_always,
                              max_respawns=5, respawn_backoff=1.0,
                              backoff_multiplier=2.0)
            frontend.kill_replica(1, 0)
            assert plane.step().respawn_failures == 1
            # Clock has not advanced: the slot is inside its backoff
            # window, so the next sweeps only observe, never respawn.
            assert plane.step().respawn_failures == 0
            clock.advance(0.5)
            assert plane.step().respawn_failures == 0
            clock.advance(0.6)  # past the 1.0 s first backoff
            assert plane.step().respawn_failures == 1
            # Second failure doubled the window: 2.0 s now.
            clock.advance(1.5)
            assert plane.step().respawn_failures == 0
            clock.advance(0.6)
            assert plane.step().respawn_failures == 1

    def test_crash_loop_recovers_when_fault_clears(self):
        rng = np.random.default_rng(77)
        matrix = rng.standard_normal((50, 4))
        oracle = oracle_for(matrix)
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        clock = FakeClock()
        crash_twice = FaultPlan.parse("controlplane.respawn:crash:0:2")
        with sharded(ShardPlan(2, "range"), make_store(matrix),
                     config) as frontend:
            plane = plane_for(frontend, clock, fault_plan=crash_twice,
                              max_respawns=5, respawn_backoff=0.1)
            frontend.kill_replica(0, 0)
            outcomes = []
            for _ in range(3):
                report = plane.step()
                outcomes.append((report.respawned,
                                 report.respawn_failures))
                clock.advance(10.0)
            # Two injected crashes, then the third attempt sticks.
            assert outcomes == [(0, 1), (0, 1), (1, 0)]
            assert frontend.alive_workers == 4
            frontend.kill_replica(0, 1)
            ids, scores = frontend.top_k(2, 6)
            exp_ids, exp_scores = oracle.top_k(2, 6)
            np.testing.assert_array_equal(ids, exp_ids)
            np.testing.assert_array_equal(scores, exp_scores)

    def test_healthy_streak_restores_attempt_budget(self):
        rng = np.random.default_rng(78)
        matrix = rng.standard_normal((40, 4))
        config = ShardedServingConfig(replication_factor=2)
        clock = FakeClock()
        with sharded(ShardPlan(2, "hash"), make_store(matrix),
                     config) as frontend:
            plane = plane_for(frontend, clock, max_respawns=2,
                              respawn_backoff=0.1, healthy_reset_s=5.0)
            frontend.kill_replica(0, 0)
            assert plane.step().respawned == 1
            state = plane._slots[(0, 0)]
            assert state.attempts == 1
            # Alive for longer than healthy_reset_s: budget restored.
            plane.step()
            clock.advance(6.0)
            plane.step()
            assert state.attempts == 0

    def test_health_fault_site_skips_sweep(self):
        rng = np.random.default_rng(79)
        matrix = rng.standard_normal((40, 4))
        config = ShardedServingConfig(replication_factor=2)
        clock = FakeClock()
        faulty = FaultPlan.parse("controlplane.health:error:*:1")
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), make_store(matrix),
                         config) as frontend:
                plane = plane_for(frontend, clock, fault_plan=faulty)
                frontend.kill_replica(0, 0)
                first = plane.step()
                assert first.faulted and first.respawned == 0
                second = plane.step()  # the fault only fires once
                assert not second.faulted and second.respawned == 1
        assert recorder.counters["serving.controlplane.health_faults"] == 1


class TestSkewPolicy:
    @staticmethod
    def _drive_requests(recorder: Recorder, per_shard: dict[int, float]
                        ) -> None:
        for shard, count in per_shard.items():
            recorder.counter(f"serving.shard.{shard}.requests", count)

    def test_sustained_skew_triggers_rebalance(self):
        rng = np.random.default_rng(80)
        matrix = rng.standard_normal((90, 6))
        oracle = oracle_for(matrix)
        clock = FakeClock()
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "range"), make_store(matrix),
                         ShardedServingConfig(cache_size=0)) as frontend:
                plane = plane_for(frontend, clock, skew_threshold=1.8,
                                  skew_observations=2, min_requests=10,
                                  rebalance_cooldown=0.0)
                plane.step()  # baseline sweep
                self._drive_requests(recorder, {0: 100, 1: 2})
                first = plane.step()
                assert first.skewed and first.rebalanced_to is None
                self._drive_requests(recorder, {0: 100, 1: 2})
                second = plane.step()
                assert second.rebalanced_to == ShardPlan(2, "hash")
                assert frontend.plan.strategy == "hash"
                ids, scores = frontend.top_k(11, 8)
                exp_ids, exp_scores = oracle.top_k(11, 8)
                np.testing.assert_array_equal(ids, exp_ids)
                np.testing.assert_array_equal(scores, exp_scores)
        counters = recorder.counters
        assert counters["serving.controlplane.skew_observations"] == 2
        assert counters["serving.controlplane.rebalance_decisions"] == 1
        assert counters["serving.shard.rebalance.count"] == 1

    def test_transient_skew_resets_hysteresis(self):
        rng = np.random.default_rng(81)
        matrix = rng.standard_normal((60, 4))
        clock = FakeClock()
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "range"),
                         make_store(matrix)) as frontend:
                plane = plane_for(frontend, clock, skew_threshold=1.8,
                                  skew_observations=2, min_requests=10,
                                  rebalance_cooldown=0.0)
                plane.step()
                self._drive_requests(recorder, {0: 100, 1: 2})
                assert plane.step().skewed
                self._drive_requests(recorder, {0: 50, 1: 50})
                assert not plane.step().skewed  # streak broken
                self._drive_requests(recorder, {0: 100, 1: 2})
                report = plane.step()  # streak restarts at 1: no move
                assert report.skewed and report.rebalanced_to is None
                assert frontend.plan.strategy == "range"

    def test_cooldown_blocks_back_to_back_rebalances(self):
        rng = np.random.default_rng(82)
        matrix = rng.standard_normal((60, 4))
        clock = FakeClock()
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "range"),
                         make_store(matrix)) as frontend:
                plane = plane_for(frontend, clock, skew_threshold=1.5,
                                  skew_observations=1, min_requests=10,
                                  rebalance_cooldown=30.0, max_shards=4)
                plane.step()
                self._drive_requests(recorder, {0: 100, 1: 2})
                assert plane.step().rebalanced_to is not None
                # Immediately skewed again (hash plan now: the move
                # would widen the tier) — but the cooldown holds it.
                self._drive_requests(recorder, {0: 100, 1: 2})
                assert plane.step().rebalanced_to is None
                self._drive_requests(recorder, {0: 100, 1: 2})
                clock.advance(31.0)
                assert plane.step().rebalanced_to == ShardPlan(4, "hash")
        assert recorder.counters[
            "serving.controlplane.rebalance_decisions"] == 2

    def test_idle_tier_is_never_skewed(self):
        rng = np.random.default_rng(83)
        matrix = rng.standard_normal((40, 4))
        clock = FakeClock()
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "range"),
                         make_store(matrix)) as frontend:
                plane = plane_for(frontend, clock, skew_threshold=1.5,
                                  skew_observations=1, min_requests=50)
                plane.step()
                # Heavy *ratio* but tiny volume: below min_requests.
                self._drive_requests(recorder, {0: 30, 1: 1})
                report = plane.step()
                assert not report.skewed
                assert frontend.plan.strategy == "range"

    def test_catalog_growth_widens_the_tier(self):
        rng = np.random.default_rng(84)
        small = rng.standard_normal((60, 4))
        big = rng.standard_normal((200, 4))
        store = make_store(small, generation=1)
        clock = FakeClock()
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), store) as frontend:
                plane = plane_for(frontend, clock, nodes_per_shard=50,
                                  max_shards=8)
                assert plane.step().rebalanced_to is None  # 60/50 -> 2
                store.publish(big, generation=2)
                report = plane.step()  # ceil(200/50) = 4 shards
                assert report.rebalanced_to == ShardPlan(4, "hash")
                assert frontend.plan.num_shards == 4
                oracle = oracle_for(big)
                ids, scores = frontend.top_k(123, 9)
                exp_ids, exp_scores = oracle.top_k(123, 9)
                np.testing.assert_array_equal(ids, exp_ids)
                np.testing.assert_array_equal(scores, exp_scores)

    def test_choose_plan_policy(self):
        clock = FakeClock()
        frontend = ShardedFrontend(ShardPlan(2, "hash"))
        plane = plane_for(frontend, clock, max_shards=4)
        assert (plane.choose_plan(ShardPlan(3, "range"), 90, [9, 1, 1])
                == ShardPlan(3, "hash"))
        assert (plane.choose_plan(ShardPlan(2, "hash"), 90, [9, 1])
                == ShardPlan(4, "hash"))
        # At the cap, skew is accepted: no move proposed.
        assert plane.choose_plan(ShardPlan(4, "hash"), 90,
                                 [9, 1, 1, 1]) is None


class TestControlPlaneLifecycle:
    def test_thread_start_close_idempotent(self):
        rng = np.random.default_rng(85)
        matrix = rng.standard_normal((40, 4))
        with sharded(ShardPlan(2, "hash"), make_store(matrix)) as frontend:
            plane = ControlPlane(frontend,
                                 ControlPlaneConfig(health_period=0.01))
            assert plane.start() is plane
            assert plane.start() is plane  # idempotent
            threading.Event().wait(0.05)
            plane.close()
            plane.close()  # idempotent

    def test_context_manager_supervises(self):
        rng = np.random.default_rng(86)
        matrix = rng.standard_normal((40, 4))
        config = ShardedServingConfig(replication_factor=2)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), make_store(matrix),
                         config) as frontend:
                with ControlPlane(
                        frontend,
                        ControlPlaneConfig(health_period=0.02)):
                    frontend.kill_replica(0, 0)
                    for _ in range(150):
                        if frontend.alive_workers == 4:
                            break
                        threading.Event().wait(0.02)
                    assert frontend.alive_workers == 4
        assert recorder.counters["serving.controlplane.respawns"] >= 1

    def test_rebalance_resets_slot_state(self):
        rng = np.random.default_rng(87)
        matrix = rng.standard_normal((60, 4))
        clock = FakeClock()
        with sharded(ShardPlan(2, "hash"), make_store(matrix)) as frontend:
            plane = plane_for(frontend, clock, max_respawns=1)
            plane.step()
            plane._slots[(0, 0)].gave_up = True
            frontend.rebalance(ShardPlan(3, "range"))
            report = plane.step()  # new table: supervision restarts
            assert len(report.slots_seen) == 3
            assert not plane._slots[(0, 0)].gave_up

    def test_config_validation(self):
        with pytest.raises(ServingError):
            ControlPlaneConfig(health_period=0.0)
        with pytest.raises(ServingError):
            ControlPlaneConfig(max_respawns=0)
        with pytest.raises(ServingError):
            ControlPlaneConfig(skew_threshold=1.0)
        with pytest.raises(ServingError):
            ControlPlaneConfig(skew_observations=0)
        with pytest.raises(ServingError):
            ControlPlaneConfig(rebalance_cooldown=-1.0)
        with pytest.raises(ServingError):
            ControlPlaneConfig(backoff_multiplier=0.5)
        with pytest.raises(ServingError):
            ControlPlaneConfig(min_requests=0)
        with pytest.raises(ServingError):
            ControlPlaneConfig(nodes_per_shard=0)
        with pytest.raises(ServingError):
            ControlPlaneConfig(max_shards=0)
        assert ControlPlaneConfig(max_respawns=7).max_respawns == 7
