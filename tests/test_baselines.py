"""Unit tests for the comparison workloads (BFS, VGG, GCN, DeepWalk)."""

import numpy as np
import pytest

from repro.baselines import (
    GcnModel,
    VggModel,
    bfs,
    bfs_gpu_kernel,
    gcn_gpu_kernel,
    gemm_seconds_per_flop,
    run_static_walks,
)
from repro.baselines.gcn import normalized_adjacency
from repro.errors import ModelError
from repro.graph import TemporalGraph, generators
from repro.graph.edges import TemporalEdgeList
from repro.walk import WalkConfig


@pytest.fixture(scope="module")
def er_graph():
    return TemporalGraph.from_edge_list(
        generators.erdos_renyi_temporal(500, 5000, seed=41)
    )


class TestBfs:
    def test_source_depth_zero(self, er_graph):
        result = bfs(er_graph, 0)
        assert result.depths[0] == 0

    def test_depths_respect_edges(self, er_graph):
        result = bfs(er_graph, 0)
        # Every reached node at depth d>0 has an in-neighbor at depth d-1.
        src = np.repeat(np.arange(er_graph.num_nodes),
                        np.diff(er_graph.indptr))
        for v in np.flatnonzero(result.depths > 0)[:50]:
            preds = src[er_graph.dst == v]
            assert (result.depths[preds] == result.depths[v] - 1).any()

    def test_chain_graph_depths(self):
        edges = TemporalEdgeList([0, 1, 2], [1, 2, 3], [0.1, 0.2, 0.3])
        g = TemporalGraph.from_edge_list(edges)
        result = bfs(g, 0)
        assert result.depths.tolist() == [0, 1, 2, 3]
        assert result.max_depth == 3
        assert result.nodes_visited == 4

    def test_unreachable_marked(self):
        edges = TemporalEdgeList([0], [1], [0.1], num_nodes=3)
        result = bfs(TemporalGraph.from_edge_list(edges), 0)
        assert result.depths[2] == -1

    def test_edges_scanned_counts_frontier_work(self, er_graph):
        result = bfs(er_graph, 0)
        assert result.edges_scanned > 0
        assert result.edges_scanned <= er_graph.num_edges * 2

    def test_gpu_kernel_has_zero_fp(self, er_graph):
        model = bfs_gpu_kernel(er_graph, bfs(er_graph, 0))
        assert model.fp_per_item == 0.0


class TestVgg:
    def test_vgg16_flop_magnitude(self):
        model = VggModel.vgg16()
        # VGG-16 inference is ~30 GFLOPs.
        assert 2e10 < model.total_flops() < 4e10

    def test_largest_layer_matches_3136x_claim(self):
        # §VII-B: largest VGG layer ~3136x larger than the pipeline's
        # largest (hidden 32 x input 16 = 512 elements scale).
        model = VggModel.vgg16()
        pipeline_largest = 2 * 8 * 32  # (2d=16) x hidden 32... elements
        ratio = model.largest_layer_elements() / pipeline_largest
        assert ratio > 1000

    def test_batch_scales_flops(self):
        single = VggModel.vgg16(batch_size=1).total_flops()
        batched = VggModel.vgg16(batch_size=4).total_flops()
        assert batched == pytest.approx(4 * single)

    def test_gpu_kernel_is_regular(self):
        report = VggModel.vgg16().gpu_kernel().report()
        assert report.irregularity < 0.2

    def test_gemm_seconds_per_flop_small_worse_than_large(self):
        small = gemm_seconds_per_flop(32, 16, 1, repeats=5, seed=1)
        large = gemm_seconds_per_flop(512, 512, 512, repeats=2, seed=1)
        # §VII-B's size gap: tiny GEMMs run at a far worse per-flop rate.
        assert small > 5 * large


class TestGcn:
    def test_normalized_adjacency_symmetric_rows(self, er_graph):
        adj = normalized_adjacency(er_graph)
        diff = abs(adj - adj.T)
        assert diff.max() < 1e-12

    def test_forward_outputs_probabilities(self, er_graph, rng):
        model = GcnModel.build(er_graph, 8, 16, 4, seed=1)
        probs = model.forward(rng.random((er_graph.num_nodes, 8)))
        assert probs.shape == (er_graph.num_nodes, 4)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_feature_shape_checked(self, er_graph, rng):
        model = GcnModel.build(er_graph, 8, 16, 4, seed=1)
        with pytest.raises(ModelError):
            model.forward(rng.random((3, 8)))

    def test_invalid_dims_rejected(self, er_graph):
        with pytest.raises(ModelError):
            GcnModel.build(er_graph, 0, 4, 2)

    def test_flops_positive(self, er_graph):
        model = GcnModel.build(er_graph, 8, 16, 4, seed=1)
        assert model.flops() > 0

    def test_gpu_kernel_between_bfs_and_vgg_in_irregularity(self, er_graph):
        gcn_report = gcn_gpu_kernel(GcnModel.build(er_graph, 8, 16, 4,
                                                   seed=1)).report()
        vgg_report = VggModel.vgg16().gpu_kernel().report()
        bfs_report = bfs_gpu_kernel(er_graph, bfs(er_graph, 0)).report()
        assert (vgg_report.irregularity
                < gcn_report.irregularity
                < bfs_report.irregularity)


class TestStaticDeepwalk:
    def test_corpus_contract(self, er_graph):
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=5)
        corpus = run_static_walks(er_graph, cfg, seed=1)
        assert corpus.num_walks == 2 * er_graph.num_nodes
        assert corpus.max_walk_length == 5

    def test_static_walks_ignore_time_and_live_longer(self, email_edges):
        from repro.walk import TemporalWalkEngine
        g = TemporalGraph.from_edge_list(email_edges)
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=6)
        static = run_static_walks(g, cfg, seed=1)
        temporal = TemporalWalkEngine(g).run(cfg, seed=1)
        assert static.lengths.mean() > temporal.lengths.mean()

    def test_walks_follow_edges(self, er_graph):
        cfg = WalkConfig(num_walks_per_node=1, max_walk_length=4)
        corpus = run_static_walks(er_graph, cfg, seed=2)
        keys = er_graph.edge_key_set()
        for i in range(0, corpus.num_walks, 37):
            walk = corpus.walk(i)
            for a, b in zip(walk[:-1], walk[1:]):
                assert (int(a), int(b)) in keys

    def test_deterministic(self, er_graph):
        cfg = WalkConfig(num_walks_per_node=1, max_walk_length=4)
        a = run_static_walks(er_graph, cfg, seed=3)
        b = run_static_walks(er_graph, cfg, seed=3)
        assert np.array_equal(a.matrix, b.matrix)
