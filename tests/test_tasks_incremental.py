"""Unit tests for incremental embedding maintenance."""

import numpy as np
import pytest

from repro.embedding import SgnsConfig
from repro.embedding.skipgram import SkipGramModel
from repro.errors import EmbeddingError
from repro.graph import DynamicTemporalGraph, generators
from repro.tasks.incremental import IncrementalEmbedder
from repro.walk import WalkConfig


class TestSkipGramGrow:
    def test_grow_preserves_existing_rows(self):
        model = SkipGramModel(5, 4, seed=1)
        before = model.w_in.copy()
        model.grow(8, seed=2)
        assert model.num_nodes == 8
        assert np.array_equal(model.w_in[:5], before)
        assert np.all(model.w_out[5:] == 0.0)

    def test_grow_same_size_is_noop(self):
        model = SkipGramModel(5, 4, seed=1)
        before = model.w_in.copy()
        model.grow(5)
        assert np.array_equal(model.w_in, before)

    def test_shrink_rejected(self):
        with pytest.raises(EmbeddingError):
            SkipGramModel(5, 4, seed=1).grow(3)


@pytest.fixture()
def evolving():
    """An email-shaped graph split into an initial 70% and a 30% tail.

    Mirrored (undirected view) so directed session bursts don't starve
    the walks at this tiny scale.
    """
    edges = generators.ia_email_like(scale=0.004, seed=61)
    ordered = edges.sorted_by_time()
    cut = int(0.7 * len(ordered))
    initial = ordered.take(np.arange(cut)).with_reverse_edges()
    tail = ordered.take(np.arange(cut, len(ordered))).with_reverse_edges()
    return initial, tail


class TestIncrementalEmbedder:
    def make(self, initial):
        dynamic = DynamicTemporalGraph(initial)
        return dynamic, IncrementalEmbedder(
            dynamic,
            walk_config=WalkConfig(num_walks_per_node=6, max_walk_length=6),
            sgns_config=SgnsConfig(dim=8, epochs=3),
            seed=7,
        )

    def test_embeddings_before_rebuild_rejected(self, evolving):
        initial, _ = evolving
        _, embedder = self.make(initial)
        with pytest.raises(EmbeddingError):
            _ = embedder.embeddings

    def test_rebuild_reports_full(self, evolving):
        initial, _ = evolving
        dynamic, embedder = self.make(initial)
        report = embedder.rebuild()
        assert report.full_rebuild
        assert report.affected_nodes == dynamic.num_nodes
        assert embedder.embeddings.num_nodes == dynamic.num_nodes

    def test_update_touches_fewer_nodes_than_rebuild(self, evolving):
        initial, tail = evolving
        dynamic, embedder = self.make(initial)
        embedder.rebuild()
        dynamic.append(tail)
        report = embedder.update()
        assert not report.full_rebuild
        assert 0 < report.affected_nodes < dynamic.num_nodes

    def test_update_covers_new_nodes(self, evolving):
        initial, tail = evolving
        dynamic, embedder = self.make(initial)
        embedder.rebuild()
        dynamic.append(tail)
        embedder.update()
        assert embedder.embeddings.num_nodes == dynamic.num_nodes

    def test_update_without_rebuild_falls_back(self, evolving):
        initial, _ = evolving
        _, embedder = self.make(initial)
        report = embedder.update()
        assert report.full_rebuild

    def test_noop_update_when_nothing_appended(self, evolving):
        initial, _ = evolving
        _, embedder = self.make(initial)
        embedder.rebuild()
        report = embedder.update()
        assert report.affected_nodes == 0
        assert report.walks_generated == 0

    def test_engine_cached_per_generation(self, evolving, monkeypatch):
        """Regression: rebuild()/update() constructed a fresh
        TemporalWalkEngine (and its O(E) step table) per call; the
        engine must now be reused until the graph generation bumps."""
        import repro.tasks.incremental as incremental_mod

        constructions = []
        real_make = incremental_mod.make_walk_engine

        def counting_make(graph, sampler="cdf"):
            constructions.append(graph)
            return real_make(graph, sampler=sampler)

        monkeypatch.setattr(incremental_mod, "make_walk_engine",
                            counting_make)
        initial, tail = evolving
        dynamic, embedder = self.make(initial)
        embedder.rebuild()
        embedder.update()   # no append: generation unchanged, no walks
        embedder.rebuild()  # same generation: engine must be reused
        assert len(constructions) == 1
        dynamic.append(tail)
        embedder.update()   # generation bumped: one new engine
        embedder.update()   # unchanged again
        assert len(constructions) == 2

    def test_cached_engine_is_bit_identical_to_fresh(self, evolving,
                                                     monkeypatch):
        """Caching must not change a single bit of the output: the same
        rebuild/append/update sequence with an always-fresh engine and
        with the cached engine produces identical embeddings."""
        from repro.tasks.incremental import IncrementalEmbedder
        from repro.walk.engine import TemporalWalkEngine

        initial, tail = evolving

        def run(fresh_engines: bool):
            dynamic = DynamicTemporalGraph(initial)
            embedder = IncrementalEmbedder(
                dynamic,
                walk_config=WalkConfig(num_walks_per_node=6,
                                       max_walk_length=6),
                sgns_config=SgnsConfig(dim=8, epochs=3),
                seed=7,
            )
            if fresh_engines:
                embedder._walk_engine = (  # the pre-fix behavior
                    lambda graph: TemporalWalkEngine(graph)
                )
            embedder.rebuild()
            dynamic.append(tail)
            embedder.update()
            embedder.update()
            return embedder.embeddings.matrix

        assert np.array_equal(run(fresh_engines=True),
                              run(fresh_engines=False))

    def test_update_releases_consumed_markers(self, evolving):
        """Each sync releases the marker it consumed, so a long stream
        of appends cannot accumulate one retained marker per batch."""
        initial, tail = evolving
        dynamic, embedder = self.make(initial)
        embedder.rebuild()
        for start in range(0, len(tail), 25):
            dynamic.append(tail.take(np.arange(
                start, min(start + 25, len(tail)))))
            embedder.update()
        # Every consumed marker (including the rebuild baseline) has
        # been released; only the live generation's marker survives.
        assert dynamic.retained_markers() == [dynamic.generation]

    def test_incremental_embeddings_stay_useful(self, evolving):
        # After appending the tail, incrementally updated embeddings
        # should still separate co-walkers from random pairs.
        initial, tail = evolving
        dynamic, embedder = self.make(initial)
        embedder.rebuild()
        dynamic.append(tail)
        embedder.update()
        emb = embedder.embeddings
        graph = dynamic.graph()
        rng = np.random.default_rng(0)
        near, far = [], []
        src = np.repeat(np.arange(graph.num_nodes),
                        np.diff(graph.indptr))
        sample = rng.choice(graph.num_edges, size=200)
        for e in sample:
            near.append(emb.cosine_similarity(int(src[e]),
                                              int(graph.dst[e])))
            far.append(emb.cosine_similarity(
                int(src[e]), int(rng.integers(0, graph.num_nodes))))
        assert np.mean(near) > np.mean(far)
