"""Unit tests for feature construction and standardization."""

import numpy as np
import pytest

from repro.embedding.embeddings import NodeEmbeddings
from repro.errors import DataPreparationError
from repro.graph.edges import TemporalEdgeList
from repro.tasks.features import (
    Standardizer,
    build_link_prediction_features,
    build_node_classification_features,
)


@pytest.fixture()
def embeddings():
    return NodeEmbeddings(np.arange(12, dtype=float).reshape(6, 2))


class TestLinkPredictionFeatures:
    def test_concat_and_labels(self, embeddings):
        pos = TemporalEdgeList([0], [1], [0.1], num_nodes=6)
        neg = TemporalEdgeList([2, 3], [4, 5], [0.2, 0.3], num_nodes=6)
        x, y = build_link_prediction_features(embeddings, pos, neg)
        assert x.shape == (3, 4)
        assert y.tolist() == [1.0, 0.0, 0.0]
        assert x[0].tolist() == [0.0, 1.0, 2.0, 3.0]  # [f(0), f(1)]


class TestNodeClassificationFeatures:
    def test_selects_rows_and_labels(self, embeddings):
        labels = np.array([0, 1, 2, 0, 1, 2])
        x, y = build_node_classification_features(
            embeddings, np.array([1, 4]), labels
        )
        assert x.shape == (2, 2)
        assert y.tolist() == [1, 1]


class TestStandardizer:
    def test_standardizes_train_to_zero_mean_unit_std(self, rng):
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = Standardizer().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_maps_to_zero(self):
        x = np.full((10, 2), 7.0)
        z = Standardizer().fit_transform(x)
        assert np.all(z == 0.0)

    def test_transform_uses_train_statistics(self, rng):
        train = rng.normal(size=(100, 3))
        scaler = Standardizer().fit(train)
        test = rng.normal(3.0, 1.0, size=(50, 3))
        z = scaler.transform(test)
        # Shifted test set keeps its offset relative to train stats.
        assert z.mean() > 1.0

    def test_transform_before_fit_rejected(self):
        with pytest.raises(DataPreparationError):
            Standardizer().transform(np.zeros((2, 2)))
