"""Unit tests for the instruction taxonomy."""

import pytest

from repro.hwmodel.instruction import CATEGORIES, InstructionMix


class TestInstructionMix:
    def test_compute_combines_int_and_fp(self):
        mix = InstructionMix(compute_int=3, compute_fp=7)
        assert mix.compute == 10

    def test_total(self):
        mix = InstructionMix(memory=1, branch=2, compute_int=3,
                             compute_fp=4, other=5)
        assert mix.total == 15

    def test_fractions_sum_to_one(self):
        mix = InstructionMix(memory=10, branch=5, compute_fp=25, other=10)
        fracs = mix.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["compute"] == pytest.approx(0.5)

    def test_empty_fractions_are_zero(self):
        fracs = InstructionMix().fractions()
        assert all(v == 0.0 for v in fracs.values())

    def test_addition(self):
        a = InstructionMix(memory=1, compute_fp=2)
        b = InstructionMix(memory=3, branch=4)
        c = a + b
        assert c.memory == 4
        assert c.branch == 4
        assert c.compute_fp == 2

    def test_scaled(self):
        mix = InstructionMix(memory=2, other=4).scaled(2.5)
        assert mix.memory == 5
        assert mix.other == 10

    def test_add_category(self):
        mix = InstructionMix()
        for cat in CATEGORIES:
            mix.add(cat, 1)
        assert mix.total == len(CATEGORIES)

    def test_add_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix().add("vector", 1)
