"""Unit tests for the bench harness (tables, recorder, sweep)."""

import json

import numpy as np
import pytest

from repro.bench import ExperimentRecorder, format_value, render_series, render_table, sweep


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(0.123456) == "0.1235"

    def test_large_float_scientific(self):
        assert "e" in format_value(1234567.0)

    def test_small_float_scientific(self):
        assert "e" in format_value(0.0000123)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_bool(self):
        assert format_value(True) == "True"


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table([{"a": 1, "bb": 2}, {"a": 30, "bb": 4}])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert len({len(l) for l in lines if l}) <= 2  # consistent width

    def test_title(self):
        out = render_table([{"x": 1}], title="Table III")
        assert out.startswith("Table III")

    def test_missing_cells_render_empty(self):
        out = render_table([{"a": 1}, {"b": 2}], headers=["a", "b"])
        assert "2" in out

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="t")

    def test_render_series(self):
        out = render_series("Fig. 5", {1: 1.0, 16: 14.3}, "batch", "speedup")
        assert "batch" in out and "speedup" in out and "14.3" in out


class TestRecorder:
    def test_save_and_reload(self, tmp_path):
        recorder = ExperimentRecorder("unit", results_dir=tmp_path)
        recorder.add("series", {1: 2.0})
        recorder.add("array", np.arange(3))
        path = recorder.save()
        with open(path) as handle:
            data = json.load(handle)
        assert data["experiment"] == "unit"
        assert data["array"] == [0, 1, 2]
        assert data["series"] == {"1": 2.0}

    def test_numpy_scalars_coerced(self, tmp_path):
        recorder = ExperimentRecorder("unit2", results_dir=tmp_path)
        recorder.add("value", np.float64(1.5))
        path = recorder.save()
        assert json.load(open(path))["value"] == 1.5


class TestSweep:
    def test_rows_carry_param(self):
        rows = sweep([1, 2, 3], lambda v: {"square": v * v})
        assert rows[1] == {"param": 2, "square": 4}
        assert len(rows) == 3
