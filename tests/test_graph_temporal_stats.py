"""Unit tests for temporal-dynamics statistics."""

import numpy as np
import pytest

from repro.graph import TemporalGraph, generators
from repro.graph.edges import TemporalEdgeList
from repro.graph.temporal_stats import (
    burstiness,
    compute_temporal_stats,
    inter_event_times,
    node_inter_event_burstiness,
)


class TestInterEventTimes:
    def test_gaps_of_sorted_stream(self):
        edges = TemporalEdgeList([0, 1, 2], [1, 2, 0], [0.1, 0.4, 0.5])
        assert np.allclose(inter_event_times(edges), [0.3, 0.1])

    def test_unsorted_input_sorted_first(self):
        edges = TemporalEdgeList([0, 1], [1, 0], [0.9, 0.1])
        assert np.allclose(inter_event_times(edges), [0.8])

    def test_short_streams(self):
        assert len(inter_event_times(TemporalEdgeList([0], [1], [0.5]))) == 0


class TestBurstiness:
    def test_periodic_is_minus_one(self):
        assert burstiness(np.full(100, 0.5)) == pytest.approx(-1.0)

    def test_exponential_near_zero(self, rng):
        gaps = rng.exponential(1.0, size=200_000)
        assert burstiness(gaps) == pytest.approx(0.0, abs=0.02)

    def test_heavy_tail_positive(self, rng):
        gaps = rng.pareto(1.3, size=100_000)
        assert burstiness(gaps) > 0.3

    def test_degenerate(self):
        assert burstiness(np.array([])) == 0.0
        assert burstiness(np.zeros(5)) == 0.0


class TestNodeBurstiness:
    def test_counts_only_active_nodes(self, tiny_graph):
        values = node_inter_event_burstiness(tiny_graph, min_events=4)
        # Only node 0 has >= 4 out-edges in the tiny fixture.
        assert len(values) == 1

    def test_bursty_generator_beats_poisson(self):
        bursty = TemporalGraph.from_edge_list(
            generators.ia_email_like(scale=0.01, seed=1))
        poisson = TemporalGraph.from_edge_list(
            generators.erdos_renyi_temporal(500, 10_000, seed=1))
        b_bursty = node_inter_event_burstiness(bursty).mean()
        b_poisson = node_inter_event_burstiness(poisson).mean()
        assert b_bursty > b_poisson + 0.1


class TestComputeTemporalStats:
    def test_fields(self, email_edges):
        graph = TemporalGraph.from_edge_list(email_edges)
        stats = compute_temporal_stats(graph)
        assert stats.time_span > 0
        assert 0 <= stats.activity_concentration <= 1
        assert set(stats.as_row()) == {
            "span", "median_gap", "burstiness", "node_burstiness",
            "late_activity",
        }

    def test_growth_shows_in_late_activity(self):
        growing = TemporalGraph.from_edge_list(
            generators.erdos_renyi_temporal(200, 5000, seed=2, growth=3.0))
        uniform = TemporalGraph.from_edge_list(
            generators.erdos_renyi_temporal(200, 5000, seed=2, growth=1.0))
        assert (compute_temporal_stats(growing).activity_concentration
                > compute_temporal_stats(uniform).activity_concentration
                + 0.1)

    def test_empty_graph(self):
        graph = TemporalGraph.from_edge_list(TemporalEdgeList([], [], []))
        stats = compute_temporal_stats(graph)
        assert stats.time_span == 0.0
        assert stats.stream_burstiness == 0.0
