"""Unit tests for the trainable GCN baseline."""

import numpy as np
import pytest

from repro.baselines.gcn import TrainableGcn
from repro.graph import TemporalGraph, generators
from repro.tasks.splits import stratified_node_split


@pytest.fixture(scope="module")
def sbm():
    dataset = generators.temporal_sbm([50, 50, 50], 6.0, 0.5, seed=91)
    graph = TemporalGraph.from_edge_list(dataset.edges.with_reverse_edges())
    return dataset, graph


class TestTrainableGcn:
    def test_loss_decreases(self, sbm):
        dataset, graph = sbm
        splits = stratified_node_split(dataset.labels, seed=1)
        gcn = TrainableGcn(graph, 16, 32, dataset.num_classes, seed=2)
        losses = gcn.fit(dataset.labels, splits.train, epochs=60, lr=0.1)
        assert losses[-1] < losses[0]

    def test_beats_chance_on_clean_sbm(self, sbm):
        dataset, graph = sbm
        splits = stratified_node_split(dataset.labels, seed=3)
        gcn = TrainableGcn(graph, 16, 32, dataset.num_classes, seed=4)
        gcn.fit(dataset.labels, splits.train, epochs=150, lr=0.1)
        chance = np.bincount(dataset.labels).max() / len(dataset.labels)
        assert gcn.accuracy(dataset.labels, splits.test) > chance + 0.1

    def test_gradients_match_finite_differences(self, sbm):
        dataset, graph = sbm
        gcn = TrainableGcn(graph, 6, 8, dataset.num_classes, seed=5)
        labels = dataset.labels
        train_nodes = np.arange(30)

        def loss_value():
            _, _, logits = gcn._forward()
            shifted = logits - logits.max(axis=1, keepdims=True)
            log_probs = shifted - np.log(
                np.exp(shifted).sum(axis=1, keepdims=True)
            )
            return float(
                -log_probs[train_nodes, labels[train_nodes]].mean()
            )

        # One analytic step's gradient, reconstructed by differencing the
        # weights around fit(epochs=1, lr, wd=0).
        w0_before = gcn.model.w0.copy()
        w1_before = gcn.model.w1.copy()
        gcn.fit(labels, train_nodes, epochs=1, lr=1.0, weight_decay=0.0)
        analytic_g0 = w0_before - gcn.model.w0
        analytic_g1 = w1_before - gcn.model.w1
        gcn.model.w0[:] = w0_before
        gcn.model.w1[:] = w1_before

        eps = 1e-6
        rng = np.random.default_rng(6)
        for _ in range(5):
            i, j = rng.integers(0, gcn.model.w0.shape[0]), rng.integers(
                0, gcn.model.w0.shape[1])
            old = gcn.model.w0[i, j]
            gcn.model.w0[i, j] = old + eps
            up = loss_value()
            gcn.model.w0[i, j] = old - eps
            down = loss_value()
            gcn.model.w0[i, j] = old
            numeric = (up - down) / (2 * eps)
            assert analytic_g0[i, j] == pytest.approx(numeric, rel=1e-3,
                                                      abs=1e-8)
        i, j = 0, 0
        old = gcn.model.w1[i, j]
        gcn.model.w1[i, j] = old + eps
        up = loss_value()
        gcn.model.w1[i, j] = old - eps
        down = loss_value()
        gcn.model.w1[i, j] = old
        numeric = (up - down) / (2 * eps)
        assert analytic_g1[i, j] == pytest.approx(numeric, rel=1e-3,
                                                  abs=1e-8)

    def test_features_include_degree_column(self, sbm):
        dataset, graph = sbm
        gcn = TrainableGcn(graph, 8, 16, dataset.num_classes, seed=7)
        degrees = np.diff(graph.indptr)
        expected = degrees / degrees.max()
        assert np.allclose(gcn.features[:, 0], expected)
