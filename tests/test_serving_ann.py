"""Brute-force-oracle harness for the IVF approximate top-k index.

The exact :class:`~repro.serving.index.RecommendationIndex` is the
oracle; every contract of :mod:`repro.serving.ann` is pinned against
it:

- **exact-mode equivalence**: ``nprobe >= nlist`` probes every cell, so
  the candidate set is the full id range and the ANN answer must be
  *bit-identical* to the oracle — same ids, same float scores, same
  lower-id tie-breaks, including on duplicate-heavy matrices;
- **recall bounds**: partial probes on clustered / gaussian / duplicate
  matrices must clear measured recall@k floors (calibrated with margin
  against the deterministic seeded build);
- **edge cases**: ``k >= num_nodes``, singleton stores, zero-norm rows
  under cosine, empty probe cells, and ``k`` exhausting the probed
  candidates (automatic exact fallback);
- **determinism**: rebuilding from the same snapshot reproduces the
  centroids and cell lists bit-for-bit;
- **version pinning**: a publish racing an ANN build or a micro-batch
  must never pair one generation's cell lists with another generation's
  matrix, and the installed index version only advances.

Comparisons against the oracle are always single-query vs single-query:
BLAS may pick different kernels for ``m=1`` and batched GEMMs, so only
the matched shapes are guaranteed bit-identical.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import ServingError
from repro.observability import Recorder, use_recorder
from repro.serving import (
    EmbeddingStore,
    IvfConfig,
    IvfIndex,
    IvfIndexManager,
    RecommendationIndex,
    ServingConfig,
    ServingFrontend,
)

pytestmark = pytest.mark.ann


def make_store(matrix: np.ndarray, generation: int = 0) -> EmbeddingStore:
    store = EmbeddingStore()
    store.publish(matrix, generation=generation)
    return store


def make_manager(store: EmbeddingStore, metric: str = "dot",
                 **knobs) -> IvfIndexManager:
    """Manager with the build already finished (tests stay deterministic)."""
    knobs.setdefault("min_index_nodes", 1)
    manager = IvfIndexManager(store, IvfConfig(**knobs), metric=metric)
    assert manager.wait_ready(timeout=30.0)
    return manager


def reference_topk(matrix: np.ndarray, node: int, k: int,
                   metric: str = "dot") -> tuple[np.ndarray, np.ndarray]:
    """Independent oracle: full scores, lexsort tie-break by lower id."""
    scores = matrix @ matrix[node]
    if metric == "cosine":
        norms = np.linalg.norm(matrix, axis=1)
        norms = np.where(norms == 0.0, 1.0, norms)
        denom = norms * norms[node]
        scores = scores / np.maximum(denom, np.finfo(np.float64).tiny)
    scores[node] = -np.inf
    order = np.lexsort((np.arange(len(scores)), -scores))
    k_eff = min(k, len(scores) - 1)
    return order[:k_eff], scores[order[:k_eff]]


def clustered_matrix(rng: np.random.Generator, n: int, dim: int,
                     centers: int = 25, spread: float = 0.5) -> np.ndarray:
    anchors = rng.standard_normal((centers, dim)) * 3.0
    return (anchors[rng.integers(0, centers, n)]
            + rng.standard_normal((n, dim)) * spread)


def duplicate_matrix(rng: np.random.Generator, n: int,
                     dim: int, distinct: int = 5) -> np.ndarray:
    """Huge tie groups: every row is one of ``distinct`` vectors."""
    prototypes = rng.standard_normal((distinct, dim))
    return prototypes[rng.integers(0, distinct, n)]


def measured_recall(exact: RecommendationIndex, ann: RecommendationIndex,
                    queries: np.ndarray, k: int) -> float:
    hits = total = 0
    for node in queries:
        exact_ids, _ = exact.top_k(int(node), k)
        ann_ids, _ = ann.top_k(int(node), k, mode="ivf")
        hits += len(np.intersect1d(exact_ids, ann_ids))
        total += len(exact_ids)
    return hits / total


# ---------------------------------------------------------------------------
# Build determinism and cell structure
# ---------------------------------------------------------------------------
class TestIvfBuild:
    def test_cells_partition_the_id_space(self):
        rng = np.random.default_rng(0)
        store = make_store(rng.standard_normal((500, 8)))
        index = IvfIndex.build(store.snapshot(), IvfConfig(nlist=13))
        joined = np.concatenate(index.cells)
        assert len(joined) == 500
        np.testing.assert_array_equal(np.sort(joined), np.arange(500))
        for cell in index.cells:  # ids ascend inside every cell
            assert np.all(np.diff(cell) > 0) or len(cell) <= 1

    def test_rebuild_from_same_snapshot_is_bit_identical(self):
        rng = np.random.default_rng(1)
        snapshot = make_store(rng.standard_normal((600, 16))).snapshot()
        config = IvfConfig(nlist=24, seed=7)
        first = IvfIndex.build(snapshot, config)
        second = IvfIndex.build(snapshot, config)
        np.testing.assert_array_equal(first.centroids, second.centroids)
        assert len(first.cells) == len(second.cells)
        for a, b in zip(first.cells, second.cells):
            np.testing.assert_array_equal(a, b)

    def test_auto_nlist_scales_with_sqrt_n(self):
        rng = np.random.default_rng(2)
        snapshot = make_store(rng.standard_normal((900, 4))).snapshot()
        index = IvfIndex.build(snapshot, IvfConfig(nlist=None))
        assert index.nlist == 30  # round(sqrt(900))
        tiny = make_store(rng.standard_normal((3, 4))).snapshot()
        assert IvfIndex.build(tiny, IvfConfig(nlist=None)).nlist in (1, 2, 3)

    def test_nlist_clamped_to_node_count(self):
        rng = np.random.default_rng(3)
        snapshot = make_store(rng.standard_normal((6, 4))).snapshot()
        index = IvfIndex.build(snapshot, IvfConfig(nlist=50, nprobe=50))
        assert index.nlist <= 6
        assert index.nprobe <= index.nlist

    def test_config_validation(self):
        with pytest.raises(ServingError):
            IvfConfig(nlist=0)
        with pytest.raises(ServingError):
            IvfConfig(nprobe=0)
        with pytest.raises(ServingError):
            IvfConfig(min_index_nodes=0)
        with pytest.raises(ServingError):
            IvfConfig(recall_sample_every=-1)


# ---------------------------------------------------------------------------
# Exact-mode equivalence: nprobe >= nlist must be bit-identical
# ---------------------------------------------------------------------------
class TestExactModeOracleEquivalence:
    @pytest.mark.parametrize("metric", ["dot", "cosine"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_probe_is_bit_identical_to_oracle(self, metric, seed):
        rng = np.random.default_rng(seed)
        matrix = clustered_matrix(rng, 400, 8)
        store = make_store(matrix)
        manager = make_manager(store, metric=metric, nlist=11, nprobe=11)
        exact = RecommendationIndex(store, cache_size=0, metric=metric)
        ann = RecommendationIndex(store, cache_size=0, metric=metric,
                                  ann=manager)
        for node in rng.integers(0, 400, size=25):
            exact_ids, exact_scores = exact.top_k(int(node), 10)
            ann_ids, ann_scores = ann.top_k(int(node), 10, mode="ivf")
            np.testing.assert_array_equal(ann_ids, exact_ids)
            np.testing.assert_array_equal(ann_scores, exact_scores)

    @pytest.mark.parametrize("metric", ["dot", "cosine"])
    def test_full_probe_duplicate_rows_keep_lower_id_ties(self, metric):
        rng = np.random.default_rng(42)
        matrix = duplicate_matrix(rng, 300, 6, distinct=4)
        store = make_store(matrix)
        manager = make_manager(store, metric=metric, nlist=9, nprobe=9)
        exact = RecommendationIndex(store, cache_size=0, metric=metric)
        ann = RecommendationIndex(store, cache_size=0, metric=metric,
                                  ann=manager)
        for node in (0, 7, 123, 299):
            ref_ids, ref_scores = reference_topk(matrix, node, 20, metric)
            exact_ids, exact_scores = exact.top_k(node, 20)
            ann_ids, ann_scores = ann.top_k(node, 20, mode="ivf")
            # Ties are huge here (duplicate rows): the documented law is
            # "lower id wins", independently pinned by reference_topk.
            np.testing.assert_array_equal(exact_ids, ref_ids)
            np.testing.assert_array_equal(ann_ids, ref_ids)
            np.testing.assert_allclose(exact_scores, ref_scores)
            np.testing.assert_array_equal(ann_scores, exact_scores)

    def test_full_probe_spans_odd_block_boundaries(self):
        rng = np.random.default_rng(5)
        matrix = rng.standard_normal((257, 5))
        store = make_store(matrix)
        manager = make_manager(store, nlist=7, nprobe=7)
        for block_size in (1, 16, 100, 257, 10_000):
            exact = RecommendationIndex(store, cache_size=0,
                                        block_size=block_size)
            ann = RecommendationIndex(store, cache_size=0,
                                      block_size=block_size, ann=manager)
            exact_ids, exact_scores = exact.top_k(31, 12)
            ann_ids, ann_scores = ann.top_k(31, 12, mode="ivf")
            np.testing.assert_array_equal(ann_ids, exact_ids)
            np.testing.assert_array_equal(ann_scores, exact_scores)


# ---------------------------------------------------------------------------
# Recall bounds under partial probing
# ---------------------------------------------------------------------------
class TestRecallBounds:
    @pytest.mark.parametrize("metric", ["dot", "cosine"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_clustered_matrix_recall_at_10(self, metric, seed):
        rng = np.random.default_rng(seed)
        store = make_store(clustered_matrix(rng, 4000, 16))
        manager = make_manager(store, metric=metric, nlist=32, nprobe=4,
                               seed=seed)
        exact = RecommendationIndex(store, cache_size=0, metric=metric)
        ann = RecommendationIndex(store, cache_size=0, metric=metric,
                                  ann=manager)
        queries = rng.integers(0, 4000, size=60)
        # Measured >= 0.99 for these seeds; 0.9 leaves slack for BLAS
        # rounding differences across platforms, not for regressions.
        assert measured_recall(exact, ann, queries, 10) >= 0.9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gaussian_matrix_recall_at_10(self, seed):
        rng = np.random.default_rng(seed + 10)
        store = make_store(rng.standard_normal((3000, 16)))
        manager = make_manager(store, nlist=25, nprobe=12, seed=seed)
        exact = RecommendationIndex(store, cache_size=0)
        ann = RecommendationIndex(store, cache_size=0, ann=manager)
        queries = rng.integers(0, 3000, size=60)
        # Unclustered gaussian data is the hard case; measured >= 0.95.
        assert measured_recall(exact, ann, queries, 10) >= 0.85

    def test_duplicate_matrix_recall_is_perfect(self):
        # Every neighbor of a duplicate row lives in the same cell as
        # the row itself, so even nprobe=1 must achieve recall 1 and
        # reproduce the exact tie-break order.
        rng = np.random.default_rng(9)
        matrix = duplicate_matrix(rng, 600, 8, distinct=3)
        store = make_store(matrix)
        manager = make_manager(store, nlist=3, nprobe=1, train_iters=16,
                               seed=1)
        exact = RecommendationIndex(store, cache_size=0)
        ann = RecommendationIndex(store, cache_size=0, ann=manager)
        for node in rng.integers(0, 600, size=10):
            exact_ids, _ = exact.top_k(int(node), 5)
            ann_ids, _ = ann.top_k(int(node), 5, mode="ivf")
            np.testing.assert_array_equal(ann_ids, exact_ids)


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------
class TestEdgeCases:
    def test_k_larger_than_num_nodes(self):
        rng = np.random.default_rng(0)
        store = make_store(rng.standard_normal((40, 4)))
        manager = make_manager(store, nlist=5, nprobe=5)
        index = RecommendationIndex(store, cache_size=0, ann=manager)
        ids, scores = index.top_k(3, 1000, mode="ivf")
        assert len(ids) == 39  # n - 1: self excluded
        exact_ids, exact_scores = RecommendationIndex(
            store, cache_size=0).top_k(3, 1000)
        np.testing.assert_array_equal(ids, exact_ids)
        np.testing.assert_array_equal(scores, exact_scores)

    def test_singleton_store_returns_empty(self):
        store = make_store(np.ones((1, 3)))
        manager = make_manager(store, nlist=1, nprobe=1)
        index = RecommendationIndex(store, cache_size=0, ann=manager)
        ids, scores = index.top_k(0, 5, mode="ivf")
        assert ids.shape == (0,) and scores.shape == (0,)

    def test_zero_norm_rows_under_cosine(self):
        matrix = np.zeros((520, 4))
        rng = np.random.default_rng(3)
        matrix[:500] = rng.standard_normal((500, 4))  # last 20 rows zero
        store = make_store(matrix)
        manager = make_manager(store, metric="cosine", nlist=8, nprobe=8)
        exact = RecommendationIndex(store, cache_size=0, metric="cosine")
        ann = RecommendationIndex(store, cache_size=0, metric="cosine",
                                  ann=manager)
        for node in (0, 250, 510, 519):  # zero rows as queries too
            exact_ids, exact_scores = exact.top_k(node, 15)
            ann_ids, ann_scores = ann.top_k(node, 15, mode="ivf")
            assert np.all(np.isfinite(exact_scores))
            np.testing.assert_array_equal(ann_ids, exact_ids)
            np.testing.assert_array_equal(ann_scores, exact_scores)

    def test_empty_probe_cells_are_tolerated(self):
        # All rows identical -> Lloyd collapses everything into one
        # cell; the other cells stay empty.  Probing them must yield a
        # correct answer (the one full cell covers every candidate).
        matrix = np.tile(np.array([[1.0, 2.0, 3.0]]), (64, 1))
        store = make_store(matrix)
        manager = make_manager(store, nlist=4, nprobe=3)
        index = manager.current
        assert index is not None
        sizes = sorted(len(cell) for cell in index.cells)
        assert sizes[-1] == 64 and sizes[:-1] == [0, 0, 0]
        ann = RecommendationIndex(store, cache_size=0, ann=manager)
        ids, scores = ann.top_k(10, 5, mode="ivf")
        np.testing.assert_array_equal(ids, [0, 1, 2, 3, 4])
        np.testing.assert_allclose(scores, 14.0)

    def test_k_exhausting_probed_candidates_falls_back_to_exact(self):
        rng = np.random.default_rng(4)
        matrix = rng.standard_normal((200, 6))
        store = make_store(matrix)
        manager = make_manager(store, nlist=10, nprobe=1)
        ann = RecommendationIndex(store, cache_size=0, ann=manager)
        exact = RecommendationIndex(store, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            # k = n - 1 cannot be served from one probed cell.
            ids, scores = ann.top_k(0, 199, mode="ivf")
        exact_ids, exact_scores = exact.top_k(0, 199)
        np.testing.assert_array_equal(ids, exact_ids)
        np.testing.assert_array_equal(scores, exact_scores)
        assert recorder.counters[
            "serving.ann.fallbacks.insufficient_candidates"] == 1
        assert "serving.ann.queries" not in recorder.counters

    def test_small_store_is_never_indexed(self):
        rng = np.random.default_rng(5)
        store = EmbeddingStore()
        recorder = Recorder()
        with use_recorder(recorder):
            manager = IvfIndexManager(store, IvfConfig(min_index_nodes=512))
            store.publish(rng.standard_normal((100, 4)), generation=0)
            assert not manager.wait_ready(timeout=0.05)
            assert manager.current is None
            assert recorder.counters["serving.ann.skipped_small"] == 1
            # Queries still work: silent exact fallback.
            index = RecommendationIndex(store, cache_size=0, ann=manager)
            ids, _ = index.top_k(0, 5, mode="ivf")
            assert len(ids) == 5
            assert recorder.counters["serving.ann.fallbacks.no_index"] == 1


# ---------------------------------------------------------------------------
# Version pinning and the racing-publish regression
# ---------------------------------------------------------------------------
class TestVersionPinning:
    def test_index_for_requires_version_match(self):
        rng = np.random.default_rng(0)
        store = make_store(rng.standard_normal((300, 4)))
        manager = make_manager(store, nlist=6, nprobe=6)
        first = store.snapshot()
        assert manager.index_for(first) is manager.current
        manager.close()  # no rebuild will happen for the next publish
        store.publish(rng.standard_normal((300, 4)), generation=1)
        second = store.snapshot()
        assert manager.index_for(second) is None  # stale index never served
        recorder = Recorder()
        with use_recorder(recorder):
            index = RecommendationIndex(store, cache_size=0, ann=manager)
            ids, scores = index.top_k(0, 5, mode="ivf")
        exact_ids, exact_scores = RecommendationIndex(
            store, cache_size=0).top_k(0, 5)
        np.testing.assert_array_equal(ids, exact_ids)
        np.testing.assert_array_equal(scores, exact_scores)
        assert recorder.counters["serving.ann.fallbacks.no_index"] == 1

    def test_build_coalescing_skips_intermediate_versions(self):
        rng = np.random.default_rng(1)
        store = make_store(rng.standard_normal((300, 4)))
        manager = make_manager(store, nlist=6)
        for generation in range(1, 6):
            store.publish(rng.standard_normal((300, 4)),
                          generation=generation)
        assert manager.wait_ready(timeout=30.0)
        assert manager.current.version == store.version

    def test_racing_publish_never_mixes_generations(self):
        """Regression harness for the mixed-generation hazard.

        Embeddings are 1-D with node 0's value encoding the publish
        generation: every correct top-1 answer for query ``q`` is node 0
        with score ``value[q] * (base + g)``, so each response *decodes*
        the generation it was computed from.  A writer republishes new
        generations while a reader hammers mixed-mode micro-batches;
        any batch whose responses decode to two different generations —
        e.g. an ANN answer from cell lists of version ``v`` paired with
        matrix ``v+1``, or a cache hit from a different version — is a
        pinning violation.
        """
        n, base, publishes = 600, 100.0, 30
        values = np.concatenate(([0.0], 1.0 + np.arange(1, n) * 1e-6))

        def matrix_for(generation: int) -> np.ndarray:
            column = values.copy()
            column[0] = base + generation
            return column[:, None]

        store = make_store(matrix_for(0))
        manager = make_manager(store, nlist=6, nprobe=6, seed=3)
        index = RecommendationIndex(store, cache_size=256, ann=manager)
        done = threading.Event()

        def writer() -> None:
            for generation in range(1, publishes + 1):
                store.publish(matrix_for(generation), generation=generation)
                time.sleep(0.002)
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        rng = np.random.default_rng(5)
        last_generation = -1.0
        versions: list[int] = []
        try:
            while not done.is_set():
                nodes = rng.integers(1, n, size=16)
                modes = ["ivf" if i % 2 else "exact" for i in range(16)]
                batch = index.top_k_batch(
                    [(int(q), 3, mode) for q, mode in zip(nodes, modes)]
                )
                decoded = set()
                for q, (ids, scores) in zip(nodes, batch):
                    assert ids[0] == 0  # node 0 dominates every generation
                    decoded.add(round(scores[0] / values[q] - base))
                assert len(decoded) == 1, \
                    f"one batch mixed generations {sorted(decoded)}"
                generation = decoded.pop()
                assert generation >= last_generation  # snapshots monotone
                last_generation = generation
                current = manager.current
                if current is not None:
                    versions.append(current.version)
        finally:
            thread.join()
        assert last_generation >= 0
        # Installed index versions only ever advance.
        assert all(b >= a for a, b in zip(versions, versions[1:]))


# ---------------------------------------------------------------------------
# Manager + frontend wiring
# ---------------------------------------------------------------------------
class TestFrontendWiring:
    def test_frontend_ivf_mode_and_per_query_override(self):
        rng = np.random.default_rng(0)
        store = make_store(clustered_matrix(rng, 800, 8))
        config = ServingConfig(
            index="ivf",
            ann=IvfConfig(nlist=8, nprobe=8, min_index_nodes=1),
            cache_size=0,
        )
        recorder = Recorder()
        with use_recorder(recorder):
            with ServingFrontend(store, config) as frontend:
                assert frontend.ann is not None
                assert frontend.ann.wait_ready(timeout=30.0)
                ann_ids, ann_scores = frontend.top_k(5, 10)
                exact_ids, exact_scores = frontend.top_k(5, 10, mode="exact")
                np.testing.assert_array_equal(ann_ids, exact_ids)
                np.testing.assert_array_equal(ann_scores, exact_scores)
        assert recorder.counters["serving.ann.builds"] >= 1
        assert recorder.counters["serving.ann.queries"] >= 1
        assert recorder.counters["serving.ann.cells_probed"] >= 8

    def test_exact_frontend_rejects_ivf_without_ann(self):
        rng = np.random.default_rng(1)
        store = make_store(rng.standard_normal((50, 4)))
        with ServingFrontend(store, ServingConfig(index="exact")) as frontend:
            assert frontend.ann is None
            with pytest.raises(ServingError):
                frontend.top_k(0, 5, mode="ivf")

    def test_invalid_index_choice_rejected(self):
        with pytest.raises(ServingError):
            ServingConfig(index="annoy")

    def test_cache_never_answers_exact_from_ivf_entry(self):
        rng = np.random.default_rng(2)
        store = make_store(clustered_matrix(rng, 1000, 8))
        manager = make_manager(store, nlist=25, nprobe=2)
        index = RecommendationIndex(store, cache_size=64, ann=manager)
        index.top_k(7, 10, mode="ivf")
        assert index.cached(7, 10, mode="ivf") is not None
        assert index.cached(7, 10, mode="exact") is None  # no downgrade
        # ... but an ivf lookup may reuse an exact entry (recall 1):
        # node 9 has no ivf entry yet, only the exact one.
        exact = index.top_k(9, 10, mode="exact")
        hit = index.cached(9, 10, mode="ivf")
        assert hit is not None
        np.testing.assert_array_equal(hit[0], exact[0])
        np.testing.assert_array_equal(hit[1], exact[1])

    def test_recall_sampling_records_histogram(self):
        rng = np.random.default_rng(3)
        store = make_store(clustered_matrix(rng, 1000, 8))
        recorder = Recorder()
        with use_recorder(recorder):
            manager = make_manager(store, nlist=10, nprobe=2,
                                   recall_sample_every=1)
            index = RecommendationIndex(store, cache_size=0, ann=manager)
            for node in range(20):
                index.top_k(node, 10, mode="ivf")
        samples = recorder.counters.get("serving.ann.recall_samples", 0)
        assert samples >= 1
        hist = recorder.histograms["serving.ann.recall_at_k"]
        assert hist.count == samples
        assert 0.0 <= hist.mean <= 1.0
