"""Edge-case coverage across modules."""

import numpy as np
import pytest

from repro.graph import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.walk import TemporalWalkEngine, WalkConfig, run_walks_reference


class TestWalkEdgeCases:
    def test_reference_allow_equal(self):
        edges = TemporalEdgeList([0, 1], [1, 2], [0.5, 0.5])
        graph = TemporalGraph.from_edge_list(edges)
        config = WalkConfig(num_walks_per_node=10, max_walk_length=3,
                            allow_equal=True)
        corpus = run_walks_reference(graph, config, seed=1,
                                     start_nodes=np.array([0]))
        assert corpus.lengths.max() == 3

    def test_single_node_graph(self):
        edges = TemporalEdgeList([], [], [], num_nodes=1)
        graph = TemporalGraph.from_edge_list(edges)
        corpus = TemporalWalkEngine(graph).run(
            WalkConfig(num_walks_per_node=2, max_walk_length=3), seed=1
        )
        assert corpus.num_walks == 2
        assert np.all(corpus.lengths == 1)

    def test_self_loop_multiedges_walkable(self):
        # Self-loops with increasing timestamps form valid temporal walks.
        edges = TemporalEdgeList([0, 0, 0], [0, 0, 0], [0.1, 0.2, 0.3])
        graph = TemporalGraph.from_edge_list(edges)
        corpus = TemporalWalkEngine(graph).run(
            WalkConfig(num_walks_per_node=5, max_walk_length=4), seed=1
        )
        assert corpus.lengths.max() == 4
        assert corpus.validate_temporal_order(graph)

    def test_walk_length_one_returns_starts_only(self, tiny_graph):
        corpus = TemporalWalkEngine(tiny_graph).run(
            WalkConfig(num_walks_per_node=2, max_walk_length=1), seed=1
        )
        assert np.all(corpus.lengths == 1)
        assert corpus.matrix.shape[1] == 1

    def test_duplicate_start_nodes_allowed(self, tiny_graph):
        corpus = TemporalWalkEngine(tiny_graph).run(
            WalkConfig(num_walks_per_node=1, max_walk_length=3),
            seed=1, start_nodes=np.array([0, 0, 0]),
        )
        assert corpus.num_walks == 3
        assert np.all(corpus.start_nodes == 0)


class TestDataLoaderEdgeCases:
    def test_batch_larger_than_dataset(self):
        from repro.nn import DataLoader

        loader = DataLoader(np.zeros((3, 2)), np.zeros(3), batch_size=10)
        batches = list(loader)
        assert len(batches) == 1
        assert len(batches[0][1]) == 3

    def test_drop_last_smaller_than_batch_yields_nothing(self):
        from repro.nn import DataLoader

        loader = DataLoader(np.zeros((3, 2)), np.zeros(3), batch_size=10,
                            drop_last=True)
        assert list(loader) == []
        assert len(loader) == 0


class TestNegativeSamplingEdgeCases:
    def test_corrupt_dst_only_keeps_sources(self, email_edges):
        from repro.tasks.negative_sampling import sample_negative_edges

        negatives = sample_negative_edges(
            email_edges, email_edges.edge_key_set(), email_edges.num_nodes,
            count=50, corrupt_both_probability=0.0, seed=1,
        )
        positive_sources = set(email_edges.src.tolist())
        assert set(negatives.src.tolist()) <= positive_sources


class TestSchedulerEdgeCases:
    def test_smaller_chunks_balance_adversarial_order(self):
        from repro.hwmodel.threads import SchedulerCosts, simulate_schedule

        costs = SchedulerCosts(per_thread_startup=0.0,
                               per_chunk_dispatch=0.0, per_steal=0.0,
                               bandwidth_speedup_cap=None)
        # All heavy items first: big chunks assign them together.
        work = np.concatenate([np.full(64, 100.0), np.full(960, 1.0)])
        coarse = simulate_schedule(work, 8, "dynamic", chunk=64, costs=costs)
        fine = simulate_schedule(work, 8, "dynamic", chunk=4, costs=costs)
        assert fine.makespan <= coarse.makespan

    def test_more_items_than_threads_all_busy(self):
        from repro.hwmodel.threads import SchedulerCosts, simulate_schedule

        costs = SchedulerCosts(per_thread_startup=0.0,
                               per_chunk_dispatch=0.0, per_steal=0.0,
                               bandwidth_speedup_cap=None)
        result = simulate_schedule(np.ones(100), 4, "dynamic", chunk=1,
                                   costs=costs)
        assert np.all(result.per_thread_work > 0)


class TestVocabEdgeCases:
    def test_subsample_preserves_order(self, rng):
        from repro.embedding.vocab import Vocabulary

        vocab = Vocabulary(np.array([10, 10, 10]))
        keep = np.ones(3)  # keep everything
        sentence = np.array([2, 0, 1, 2])
        out = vocab.subsample_sentence(sentence, keep, rng)
        assert np.array_equal(out, sentence)


class TestWelFormatting:
    def test_tiny_timestamps_round_trip(self, tmp_path):
        from repro.graph.io import read_wel, write_wel

        edges = TemporalEdgeList([0, 1], [1, 0], [1.23456789e-9, 0.5])
        path = tmp_path / "tiny.wel"
        write_wel(edges, path)
        back = read_wel(path, normalize=False)
        assert back.timestamps[0] == pytest.approx(1.23456789e-9, rel=1e-6)
