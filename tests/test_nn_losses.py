"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import BCEWithLogitsLoss, CrossEntropyLoss


class TestBCE:
    def test_zero_logits_loss_is_log2(self):
        loss = BCEWithLogitsLoss()
        value = loss.forward(np.zeros(4), np.array([0.0, 1.0, 0.0, 1.0]))
        assert value == pytest.approx(np.log(2.0))

    def test_confident_correct_loss_near_zero(self):
        loss = BCEWithLogitsLoss()
        value = loss.forward(np.array([20.0, -20.0]), np.array([1.0, 0.0]))
        assert value < 1e-6

    def test_extreme_logits_finite(self):
        loss = BCEWithLogitsLoss()
        value = loss.forward(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
        assert np.isfinite(value)

    def test_gradient_is_sigmoid_minus_target_over_n(self):
        loss = BCEWithLogitsLoss()
        logits = np.array([0.0, 2.0])
        targets = np.array([1.0, 0.0])
        loss.forward(logits, targets)
        grad = loss.backward()
        sig = 1 / (1 + np.exp(-logits))
        assert np.allclose(grad, (sig - targets) / 2)

    def test_gradient_preserves_column_shape(self):
        loss = BCEWithLogitsLoss()
        loss.forward(np.zeros((3, 1)), np.ones(3))
        assert loss.backward().shape == (3, 1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            BCEWithLogitsLoss().forward(np.zeros(3), np.zeros(2))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(TrainingError):
            BCEWithLogitsLoss().backward()

    def test_predictions_are_probabilities(self):
        loss = BCEWithLogitsLoss()
        loss.forward(np.array([-1.0, 1.0]), np.array([0.0, 1.0]))
        probs = loss.predictions()
        assert np.all((probs > 0) & (probs < 1))


class TestCrossEntropy:
    def test_uniform_logits_loss_is_log_c(self):
        loss = CrossEntropyLoss()
        value = loss.forward(np.zeros((5, 3)), np.array([0, 1, 2, 0, 1]))
        assert value == pytest.approx(np.log(3.0))

    def test_confident_correct_loss_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.array([[30.0, 0.0, 0.0]])
        assert loss.forward(logits, np.array([0])) < 1e-6

    def test_gradient_is_softmax_minus_onehot_over_n(self):
        loss = CrossEntropyLoss()
        logits = np.array([[1.0, 2.0, 3.0]])
        loss.forward(logits, np.array([2]))
        grad = loss.backward()
        exp = np.exp(logits - logits.max())
        softmax = exp / exp.sum()
        expected = softmax.copy()
        expected[0, 2] -= 1.0
        assert np.allclose(grad, expected)

    def test_predictions_sum_to_one(self):
        loss = CrossEntropyLoss()
        loss.forward(np.random.default_rng(0).normal(size=(6, 4)),
                     np.zeros(6, dtype=int))
        assert np.allclose(loss.predictions().sum(axis=1), 1.0)

    def test_1d_logits_rejected(self):
        with pytest.raises(TrainingError):
            CrossEntropyLoss().forward(np.zeros(3), np.zeros(3, dtype=int))

    def test_out_of_range_target_rejected(self):
        with pytest.raises(TrainingError):
            CrossEntropyLoss().forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_large_logits_stable(self):
        loss = CrossEntropyLoss()
        value = loss.forward(np.array([[1e4, 0.0]]), np.array([0]))
        assert np.isfinite(value)
