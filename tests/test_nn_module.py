"""Unit tests for Module/Parameter/Sequential."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Linear, ReLU, Residual, Sequential
from repro.nn.module import Parameter


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert np.all(p.grad == 0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0)

    def test_size(self):
        assert Parameter(np.ones((2, 3))).size == 6


class TestModule:
    def test_parameters_recurse_sequential(self):
        model = Sequential(Linear(2, 3, seed=1), ReLU(), Linear(3, 1, seed=2))
        params = model.parameters()
        assert len(params) == 4  # two weights, two biases

    def test_parameters_recurse_residual(self):
        model = Residual(Sequential(Linear(3, 3, seed=1), ReLU()))
        assert len(model.parameters()) == 2

    def test_num_parameters(self):
        model = Linear(4, 5, seed=1)
        assert model.num_parameters() == 4 * 5 + 5

    def test_zero_grad_clears_all(self):
        model = Sequential(Linear(2, 2, seed=1), Linear(2, 1, seed=2))
        x = np.ones((3, 2))
        from repro.nn import BCEWithLogitsLoss
        loss = BCEWithLogitsLoss()
        loss.forward(model.forward(x), np.ones(3))
        model.backward(loss.backward())
        assert any(np.any(p.grad != 0) for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())


class TestSequential:
    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            Sequential()

    def test_forward_composes(self):
        model = Sequential(Linear(2, 2, seed=1), ReLU())
        x = np.array([[1.0, -1.0]])
        out = model.forward(x)
        assert np.all(out >= 0)

    def test_callable(self):
        model = Sequential(Linear(2, 1, seed=1))
        x = np.ones((2, 2))
        assert np.allclose(model(x), model.forward(x))

    def test_repr_lists_layers(self):
        model = Sequential(Linear(2, 2, seed=1), ReLU())
        assert "Linear" in repr(model) and "ReLU" in repr(model)
