"""Unit tests for ASCII figure rendering."""

import pytest

from repro.bench.figures import render_bars, render_grouped_bars


class TestRenderBars:
    def test_max_value_gets_full_width(self):
        out = render_bars({1: 5.0, 2: 10.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_title_first_line(self):
        out = render_bars({1: 1.0}, title="Fig. X")
        assert out.splitlines()[0] == "Fig. X"

    def test_zero_and_negative_render_empty_bars(self):
        out = render_bars({"a": 0.0, "b": -3.0, "c": 2.0})
        lines = out.splitlines()
        assert lines[0].endswith("|")
        assert lines[1].endswith("|")
        assert "#" in lines[2]

    def test_log_scale_compresses_decades(self):
        linear = render_bars({1: 1.0, 2: 1000.0}, width=40)
        logged = render_bars({1: 1.0, 2: 1000.0}, width=40, log_scale=True)
        small_linear = linear.splitlines()[0].count("#")
        small_logged = logged.splitlines()[0].count("#")
        assert small_logged > small_linear

    def test_empty_series(self):
        assert "(no data)" in render_bars({}, title="t")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            render_bars({1: 1.0}, width=0)

    def test_values_printed(self):
        out = render_bars({10: 0.1235})
        assert "0.1235" in out


class TestRenderGroupedBars:
    def test_shared_scale_across_groups(self):
        out = render_grouped_bars(
            {"a": {1: 10.0}, "b": {1: 5.0}}, width=10
        )
        lines = out.splitlines()
        bars = [l.count("#") for l in lines if "|" in l]
        assert bars == [10, 5]

    def test_group_headers(self):
        out = render_grouped_bars({"dynamic": {1: 1.0}, "static": {1: 1.0}})
        assert "-- dynamic" in out
        assert "-- static" in out
