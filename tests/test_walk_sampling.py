"""Unit tests for transition-probability models (Eq. 1 variants)."""

import numpy as np
import pytest

from repro.errors import WalkError
from repro.walk.sampling import (
    BIAS_CHOICES,
    gumbel_argmax,
    segmented_gumbel_argmax,
    segmented_transition_logits,
    transition_logits,
    transition_probabilities,
)


TS = np.array([0.1, 0.2, 0.6, 0.9])


class TestLogits:
    def test_uniform_is_constant(self):
        logits = transition_logits(TS, "uniform", 1.0)
        assert np.allclose(logits, 0.0)

    def test_softmax_late_favors_later(self):
        logits = transition_logits(TS, "softmax-late", 1.0)
        assert np.all(np.diff(logits) > 0)

    def test_softmax_recency_favors_sooner(self):
        logits = transition_logits(TS, "softmax-recency", 1.0)
        assert np.all(np.diff(logits) < 0)

    def test_linear_rank_weights(self):
        logits = transition_logits(TS, "linear", 1.0)
        assert np.allclose(np.exp(logits), [4, 3, 2, 1])

    def test_unknown_bias_rejected(self):
        with pytest.raises(WalkError, match="unknown bias"):
            transition_logits(TS, "nope", 1.0)

    def test_bias_choices_cover_all(self):
        for bias in BIAS_CHOICES:
            transition_logits(TS, bias, 1.0)  # must not raise

    def test_temperature_flattens_softmax(self):
        sharp = transition_probabilities(TS, "softmax-late", 0.1)
        flat = transition_probabilities(TS, "softmax-late", 10.0)
        assert sharp.max() > flat.max()


class TestProbabilities:
    @pytest.mark.parametrize("bias", sorted(BIAS_CHOICES))
    def test_sums_to_one(self, bias):
        probs = transition_probabilities(TS, bias, 0.5)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_empty_candidates(self):
        probs = transition_probabilities(np.array([]), "uniform", 1.0)
        assert len(probs) == 0

    def test_eq1_formula_exact(self):
        # Pr[v|u] = exp(tau/r) / sum exp(tau/r)  (Eq. 1 verbatim)
        r = 0.8
        expected = np.exp(TS / r) / np.exp(TS / r).sum()
        probs = transition_probabilities(TS, "softmax-late", r)
        assert np.allclose(probs, expected)

    def test_numerical_stability_large_logits(self):
        probs = transition_probabilities(
            np.array([1e5, 2e5]), "softmax-late", 1.0
        )
        assert np.isfinite(probs).all()
        assert probs.sum() == pytest.approx(1.0)


class TestSegmentedLogits:
    def test_matches_scalar_per_segment(self):
        seg_a = np.array([0.1, 0.4])
        seg_b = np.array([0.2, 0.3, 0.9])
        concat = np.concatenate([seg_a, seg_b])
        rank = np.array([0, 1, 0, 1, 2])
        sizes = np.array([2, 2, 3, 3, 3])
        for bias in sorted(BIAS_CHOICES):
            combined = segmented_transition_logits(
                concat, rank, sizes, bias, 0.7
            )
            scalar_a = transition_logits(seg_a, bias, 0.7)
            scalar_b = transition_logits(seg_b, bias, 0.7)
            assert np.allclose(combined[:2], scalar_a)
            assert np.allclose(combined[2:], scalar_b)


class TestGumbel:
    def test_gumbel_argmax_matches_softmax(self, rng):
        logits = np.log(np.array([0.5, 0.3, 0.2]))
        counts = np.zeros(3)
        for _ in range(6000):
            counts[gumbel_argmax(logits, rng)] += 1
        freqs = counts / counts.sum()
        assert np.allclose(freqs, [0.5, 0.3, 0.2], atol=0.03)

    def test_gumbel_argmax_empty_rejected(self, rng):
        with pytest.raises(WalkError):
            gumbel_argmax(np.array([]), rng)

    def test_segmented_gumbel_one_choice_per_segment(self, rng):
        logits = np.zeros(7)
        seg_starts = np.array([0, 3, 5])
        seg_ids = np.array([0, 0, 0, 1, 1, 2, 2])
        chosen = segmented_gumbel_argmax(logits, seg_starts, seg_ids, rng)
        assert len(chosen) == 3
        assert 0 <= chosen[0] < 3
        assert 3 <= chosen[1] < 5
        assert 5 <= chosen[2] < 7

    def test_segmented_gumbel_distribution(self, rng):
        # Two segments, each weighted 2:1; draws should track softmax.
        logits = np.log(np.array([2.0, 1.0, 2.0, 1.0]))
        seg_starts = np.array([0, 2])
        seg_ids = np.array([0, 0, 1, 1])
        first = np.zeros(2)
        for _ in range(4000):
            chosen = segmented_gumbel_argmax(logits, seg_starts, seg_ids, rng)
            first[0] += chosen[0] == 0
            first[1] += chosen[1] == 2
        assert first[0] / 4000 == pytest.approx(2 / 3, abs=0.04)
        assert first[1] / 4000 == pytest.approx(2 / 3, abs=0.04)

    def test_segmented_gumbel_empty(self, rng):
        out = segmented_gumbel_argmax(
            np.array([]), np.array([], dtype=int), np.array([], dtype=int), rng
        )
        assert len(out) == 0
