"""Unit tests for the node vocabulary."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.embedding.vocab import Vocabulary
from repro.walk.corpus import PAD, WalkCorpus


def corpus_with_counts() -> WalkCorpus:
    matrix = np.array([[0, 1, 1], [2, 0, PAD]])
    return WalkCorpus(matrix, np.array([3, 2]))


class TestVocabulary:
    def test_from_corpus_counts(self):
        vocab = Vocabulary.from_corpus(corpus_with_counts(), num_nodes=4)
        assert vocab.counts.tolist() == [2, 2, 1, 0]
        assert vocab.total == 5

    def test_frequency(self):
        vocab = Vocabulary.from_corpus(corpus_with_counts(), num_nodes=4)
        assert vocab.frequency(0) == pytest.approx(0.4)
        assert vocab.frequency(3) == 0.0

    def test_rejects_negative_counts(self):
        with pytest.raises(EmbeddingError):
            Vocabulary(np.array([1, -1]))

    def test_rejects_2d(self):
        with pytest.raises(EmbeddingError):
            Vocabulary(np.zeros((2, 2), dtype=int))

    def test_unigram_weights_smoothing(self):
        vocab = Vocabulary(np.array([16, 1, 0]))
        weights = vocab.unigram_weights(0.75)
        assert weights[0] == pytest.approx(8.0)   # 16^0.75
        assert weights[1] == pytest.approx(1.0)
        assert weights[2] == 0.0

    def test_keep_probabilities_bounds(self):
        vocab = Vocabulary(np.array([100000, 1, 0]))
        keep = vocab.keep_probabilities(1e-3)
        assert np.all(keep <= 1.0)
        assert np.all(keep > 0.0)
        assert keep[0] < 1.0      # very frequent node gets subsampled
        assert keep[1] == 1.0     # rare node always kept
        assert keep[2] == 1.0     # absent node untouched

    def test_subsample_sentence_drops_frequent(self, rng):
        vocab = Vocabulary(np.array([1000000, 1]))
        keep = vocab.keep_probabilities(1e-5)
        sentence = np.array([0] * 200 + [1])
        kept = vocab.subsample_sentence(sentence, keep, rng)
        assert len(kept) < 100
        assert 1 in kept

    def test_empty_corpus_total(self):
        vocab = Vocabulary(np.zeros(3, dtype=int))
        assert vocab.total == 0
        assert vocab.frequency(0) == 0.0
