"""Unit and integration tests for the observability layer."""

import json
import math

import numpy as np
import pytest

from repro.embedding.trainer import SgnsConfig
from repro.faults import FaultPlan
from repro.observability import (
    NULL_RECORDER,
    Histogram,
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
    validate_pipeline_observability,
)
from repro.parallel import SupervisorConfig, run_supervised
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.pipeline import PhaseTimings, Pipeline, PipelineConfig
from repro.tasks.training import TrainSettings
from repro.walk.config import WalkConfig

pytestmark = pytest.mark.observability


class TestHistogram:
    def test_streaming_moments(self):
        hist = Histogram()
        values = [1.0, 2.0, 3.0, 10.0]
        for v in values:
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == pytest.approx(sum(values))
        assert hist.mean == pytest.approx(np.mean(values))
        assert hist.std == pytest.approx(np.std(values))
        assert hist.min == 1.0
        assert hist.max == 10.0

    def test_empty_summary_is_json_safe(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["min"] == 0.0 and summary["max"] == 0.0
        assert not any(math.isinf(v) or math.isnan(v)
                       for v in summary.values())

    def test_single_observation_has_zero_std(self):
        hist = Histogram()
        hist.observe(5.0)
        assert hist.std == 0.0
        assert hist.mean == 5.0


class TestRecorderMetrics:
    def test_counter_accumulates(self):
        rec = Recorder()
        rec.counter("edges")
        rec.counter("edges", 41)
        assert rec.counters["edges"] == 42

    def test_gauge_keeps_last_value(self):
        rec = Recorder()
        rec.gauge("lr", 0.1)
        rec.gauge("lr", 0.05)
        assert rec.gauges["lr"] == 0.05

    def test_observe_builds_histograms(self):
        rec = Recorder()
        for v in (1.0, 3.0):
            rec.observe("lat", v)
        assert rec.metrics()["histograms"]["lat"]["mean"] == 2.0

    def test_metrics_document_sections(self):
        rec = Recorder()
        doc = rec.metrics()
        assert set(doc) == {"counters", "gauges", "histograms"}


class TestSpans:
    def test_nesting_parent_links(self):
        rec = Recorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in rec.spans()] == ["outer", "inner"]

    def test_span_times_and_closes(self):
        rec = Recorder()
        with rec.span("phase") as span:
            assert math.isnan(span.duration)  # open
        assert span.status == "ok"
        assert span.duration >= 0.0
        assert rec.span_seconds("phase") == pytest.approx(span.duration)

    def test_exception_marks_error_and_reraises(self):
        rec = Recorder()
        with pytest.raises(RuntimeError, match="boom"):
            with rec.span("phase"):
                raise RuntimeError("boom")
        (span,) = rec.spans("phase")
        assert span.status == "error"
        assert "boom" in span.error
        assert span.end is not None
        assert rec.current_span is None  # stack popped despite the raise

    def test_attrs_and_annotate(self):
        rec = Recorder()
        with rec.span("phase", workers=2) as span:
            span.annotate(cached=False)
            rec.annotate(epoch=3)
        assert span.attrs == {"workers": 2, "cached": False, "epoch": 3}

    def test_record_span_parents_under_open_span(self):
        rec = Recorder()
        with rec.span("supervise") as parent:
            child = rec.record_span("attempt", 0.25, shard=1, outcome="ok")
        assert child.parent_id == parent.span_id
        assert child.duration == pytest.approx(0.25, abs=0.01)
        assert child.attrs["outcome"] == "ok"

    def test_span_seconds_sums_repeats(self):
        rec = Recorder()
        rec.record_span("epoch", 0.5)
        rec.record_span("epoch", 0.25)
        assert rec.span_seconds("epoch") == pytest.approx(0.75, abs=0.02)


class TestNullRecorder:
    def test_mutations_are_no_ops(self):
        rec = NullRecorder()
        rec.counter("x", 5)
        rec.gauge("y", 1.0)
        rec.observe("z", 2.0)
        assert rec.counters == {} and rec.gauges == {}
        assert rec.histograms == {}
        assert list(rec.spans()) == []
        assert rec.span_seconds("anything") == 0.0
        assert rec.record_span("attempt", 0.1) is None

    def test_not_enabled(self):
        assert NullRecorder().enabled is False
        assert Recorder().enabled is True

    def test_null_span_still_measures_time(self):
        # PhaseTimings relies on span.duration even when disabled.
        rec = NullRecorder()
        with rec.span("rwalk") as span:
            pass
        assert span.duration >= 0.0

    def test_null_span_survives_exceptions(self):
        rec = NullRecorder()
        with pytest.raises(ValueError):
            with rec.span("phase"):
                raise ValueError("x")


class TestAmbientRecorder:
    def test_default_is_shared_null(self):
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_scopes_and_restores(self):
        rec = Recorder()
        with use_recorder(rec) as active:
            assert active is rec
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_restores_null(self):
        rec = Recorder()
        previous = set_recorder(rec)
        try:
            assert get_recorder() is rec
        finally:
            assert set_recorder(previous) is rec
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_recorder(Recorder()):
                raise RuntimeError("x")
        assert get_recorder() is NULL_RECORDER


class TestSerialization:
    def test_metrics_json_round_trip(self, tmp_path):
        rec = Recorder()
        rec.counter("edges", 7)
        rec.gauge("lr", 0.05)
        rec.observe("lat", 2.0)
        path = tmp_path / "metrics.json"
        rec.write_metrics(path)
        doc = json.loads(path.read_text())
        assert doc["counters"]["edges"] == 7
        assert doc["gauges"]["lr"] == 0.05
        assert doc["histograms"]["lat"]["count"] == 1

    def test_trace_jsonl_round_trip(self, tmp_path):
        rec = Recorder()
        with rec.span("outer", workers=2):
            with rec.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        rec.write_trace(path)
        rows = Recorder.read_trace(path)
        assert rows == rec.trace()
        by_name = {row["name"]: row for row in rows}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["attrs"] == {"workers": 2}


class TestValidatePipelineObservability:
    def _good_files(self, tmp_path):
        rec = Recorder()
        for name in ("walk.edges_scanned", "walk.steps",
                     "walk.search_iterations"):
            rec.counter(name, 10)
        with rec.span("rwalk"), rec.span("word2vec"):
            pass
        with rec.span("data_prep"), rec.span("train"), rec.span("test"):
            pass
        rec.write_metrics(tmp_path / "m.json")
        rec.write_trace(tmp_path / "t.jsonl")
        return tmp_path / "m.json", tmp_path / "t.jsonl"

    def test_accepts_complete_run(self, tmp_path):
        metrics_path, trace_path = self._good_files(tmp_path)
        out = validate_pipeline_observability(metrics_path, trace_path)
        assert out["metrics"]["counters"]["walk.steps"] == 10

    def test_rejects_zero_op_counters(self, tmp_path):
        metrics_path, trace_path = self._good_files(tmp_path)
        doc = json.loads(metrics_path.read_text())
        doc["counters"]["walk.steps"] = 0
        metrics_path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="walk.steps"):
            validate_pipeline_observability(metrics_path, trace_path)

    def test_rejects_missing_phase_span(self, tmp_path):
        metrics_path, trace_path = self._good_files(tmp_path)
        rows = [row for row in Recorder.read_trace(trace_path)
                if row["name"] != "word2vec"]
        trace_path.write_text(
            "\n".join(json.dumps(row) for row in rows) + "\n"
        )
        with pytest.raises(ValueError, match="word2vec"):
            validate_pipeline_observability(metrics_path, trace_path)

    def test_rejects_dangling_parent(self, tmp_path):
        metrics_path, trace_path = self._good_files(tmp_path)
        rows = Recorder.read_trace(trace_path)
        rows[-1]["parent"] = 999
        trace_path.write_text(
            "\n".join(json.dumps(row) for row in rows) + "\n"
        )
        with pytest.raises(ValueError, match="dangling parent"):
            validate_pipeline_observability(metrics_path, trace_path)


def _small_pipeline(recorder, **overrides):
    settings = dict(
        walk=WalkConfig(num_walks_per_node=2, max_walk_length=4),
        sgns=SgnsConfig(dim=4, epochs=1),
        link_prediction=LinkPredictionConfig(
            training=TrainSettings(epochs=3)
        ),
        faults=FaultPlan(),
    )
    settings.update(overrides)
    return Pipeline(PipelineConfig(**settings), recorder=recorder)


class TestPipelineIntegration:
    def test_full_run_emits_phase_spans_and_op_counters(self, tmp_path,
                                                        email_edges):
        rec = Recorder()
        result = _small_pipeline(rec).run_link_prediction(email_edges, seed=5)
        rec.write_metrics(tmp_path / "m.json")
        rec.write_trace(tmp_path / "t.jsonl")
        out = validate_pipeline_observability(tmp_path / "m.json",
                                              tmp_path / "t.jsonl")
        counters = out["metrics"]["counters"]
        assert counters["walk.edges_scanned"] == result.walk_stats.candidates_scanned
        assert counters["sgns.pairs"] == result.trainer_stats.pairs_trained
        assert counters["train.epochs"] == result.timings.train_epochs

    def test_phase_timings_agree_with_span_trace(self, email_edges):
        rec = Recorder()
        result = _small_pipeline(rec).run_link_prediction(email_edges, seed=5)
        rebuilt = PhaseTimings.from_recorder(rec)
        assert rebuilt.rwalk == pytest.approx(result.timings.rwalk)
        assert rebuilt.word2vec == pytest.approx(result.timings.word2vec)
        assert rebuilt.data_prep == pytest.approx(result.timings.data_prep)
        assert rebuilt.train == pytest.approx(result.timings.train)
        assert rebuilt.test == pytest.approx(result.timings.test)
        assert rebuilt.train_epochs == result.timings.train_epochs

    def test_disabled_observability_still_times_phases(self, email_edges):
        result = _small_pipeline(None).run_link_prediction(email_edges, seed=5)
        assert result.timings.rwalk > 0.0
        assert result.timings.train > 0.0
        assert get_recorder() is NULL_RECORDER

    def test_result_identical_with_and_without_recorder(self, email_edges):
        observed = _small_pipeline(Recorder()).run_link_prediction(
            email_edges, seed=5
        )
        plain = _small_pipeline(None).run_link_prediction(email_edges, seed=5)
        np.testing.assert_array_equal(observed.embeddings.matrix,
                                      plain.embeddings.matrix)
        assert observed.accuracy == plain.accuracy

    def test_checkpoint_events_recorded(self, tmp_path, email_edges):
        rec = Recorder()
        pipeline = _small_pipeline(
            rec, checkpoint_dir=str(tmp_path / "ck")
        )
        pipeline.run_link_prediction(email_edges, seed=5)
        assert rec.counters["checkpoint.saves"] >= 2  # walks + embeddings
        assert rec.counters["checkpoint.bytes_written"] > 0
        assert any(rec.spans("checkpoint.save"))

        resumed = Recorder()
        _small_pipeline(
            resumed, checkpoint_dir=str(tmp_path / "ck"), resume=True
        ).run_link_prediction(email_edges, seed=5)
        assert resumed.counters["checkpoint.loads"] >= 2
        cached = [s.attrs.get("cached") for s in resumed.spans("rwalk")]
        assert cached == [True]

    def test_parallel_run_publishes_merged_walk_counters_once(self,
                                                              email_edges):
        rec = Recorder()
        result = _small_pipeline(rec, workers=2).run_link_prediction(
            email_edges, seed=5
        )
        # Shards must not each publish: one run, one set of totals that
        # matches the merged stats the run itself reports.
        assert rec.counters["walk.runs"] == 1
        assert rec.counters["walk.steps"] == result.walk_stats.total_steps
        assert (rec.counters["walk.edges_scanned"]
                == result.walk_stats.candidates_scanned)


@pytest.mark.faults
class TestSupervisorTracing:
    def test_retry_attempts_appear_in_trace(self):
        rec = Recorder()
        with use_recorder(rec):
            results, _ = run_supervised(
                _square, [(i,) for i in range(3)], workers=2,
                fault_plan=FaultPlan.parse("shards:crash:1:1"),
            )
        assert results == [0, 1, 4]
        attempts = list(rec.spans("shard_attempt"))
        assert rec.counters["supervisor.retries"] == 1
        outcomes = [s.attrs["outcome"] for s in attempts]
        assert outcomes.count("error") == 1
        assert outcomes.count("ok") == 3
        errored = [s for s in attempts if s.attrs["outcome"] == "error"]
        assert errored[0].attrs["shard"] == 1
        assert errored[0].attrs["attempt"] == 0

    def test_timeout_and_degradation_counters(self):
        rec = Recorder()
        with use_recorder(rec):
            run_supervised(
                _square, [(i,) for i in range(2)], workers=2,
                supervisor=SupervisorConfig(shard_timeout=1.0,
                                            max_retries=0),
                serial_fn=_square_serial,
                fault_plan=FaultPlan.parse("shards:hang:1:99"),
            )
        assert rec.counters["supervisor.timeouts"] >= 1
        assert rec.counters["supervisor.degraded"] == 1
        assert any(s.attrs["outcome"] == "timeout"
                   for s in rec.spans("shard_attempt"))
        (degraded,) = rec.spans("shard_degraded")
        assert degraded.attrs["shard"] == 1


def _square(value):
    return value * value


def _square_serial(value):
    return value * value
