"""Unit tests for the ranking evaluation (MRR / Hits@k)."""

import numpy as np
import pytest

from repro.errors import DataPreparationError
from repro.graph.edges import TemporalEdgeList
from repro.tasks import LinkPredictionTask
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.ranking import RankingMetrics, rank_link_predictions
from repro.tasks.training import TrainSettings


@pytest.fixture(scope="module")
def trained(email_embeddings, email_edges):
    task = LinkPredictionTask(LinkPredictionConfig(
        training=TrainSettings(epochs=10, learning_rate=0.05)))
    result = task.run(email_embeddings, email_edges, seed=1)
    ordered = email_edges.sorted_by_time()
    test_edges = ordered.take(
        np.arange(int(0.8 * len(ordered)), len(ordered))
    )
    return result, test_edges


class TestRankLinkPredictions:
    def test_metrics_in_range(self, trained, email_embeddings, email_edges):
        result, test_edges = trained
        metrics = rank_link_predictions(
            result, email_embeddings, test_edges,
            num_negatives=20, max_queries=100,
            forbidden=email_edges.edge_key_set(), seed=2,
        )
        assert 0.0 <= metrics.mrr <= 1.0
        assert all(0.0 <= v <= 1.0 for v in metrics.hits_at.values())
        assert metrics.num_queries == 100
        assert metrics.num_candidates == 21

    def test_beats_random_ranking(self, trained, email_embeddings,
                                  email_edges):
        result, test_edges = trained
        metrics = rank_link_predictions(
            result, email_embeddings, test_edges,
            num_negatives=20, max_queries=150,
            forbidden=email_edges.edge_key_set(), seed=3,
        )
        # Random ranking over 21 candidates: MRR ~ H(21)/21 ~ 0.17,
        # Hits@10 ~ 0.48.  A trained model must beat both clearly.
        assert metrics.mrr > 0.3
        assert metrics.hits_at[10] > 0.6

    def test_hits_monotone_in_k(self, trained, email_embeddings,
                                email_edges):
        result, test_edges = trained
        metrics = rank_link_predictions(
            result, email_embeddings, test_edges,
            num_negatives=20, max_queries=80, seed=4,
        )
        assert (metrics.hits_at[1] <= metrics.hits_at[5]
                <= metrics.hits_at[10])

    def test_as_row(self, trained, email_embeddings, email_edges):
        result, test_edges = trained
        metrics = rank_link_predictions(
            result, email_embeddings, test_edges,
            num_negatives=10, max_queries=30, seed=5,
        )
        row = metrics.as_row()
        assert "mrr" in row and "hits@10" in row

    def test_modelless_result_rejected(self, trained, email_embeddings):
        result, test_edges = trained
        from dataclasses import replace
        bare = replace(result, model=None)
        with pytest.raises(DataPreparationError):
            rank_link_predictions(bare, email_embeddings, test_edges)

    def test_empty_test_edges_rejected(self, trained, email_embeddings):
        result, _ = trained
        empty = TemporalEdgeList([], [], [], num_nodes=5)
        with pytest.raises(DataPreparationError):
            rank_link_predictions(result, email_embeddings, empty)

    def test_invalid_negatives(self, trained, email_embeddings):
        result, test_edges = trained
        with pytest.raises(DataPreparationError):
            rank_link_predictions(result, email_embeddings, test_edges,
                                  num_negatives=0)