"""Unit tests for per-kernel instruction-mix derivation (Fig. 9)."""

import pytest

from repro.embedding.trainer import SgnsConfig, TrainerStats
from repro.hwmodel.profiler import (
    gemm_mix,
    profile_bfs,
    profile_classifier,
    profile_random_walk,
    profile_word2vec,
)
from repro.walk.engine import WalkStats


def walk_stats(candidates=1000, steps=200, searches=600, walks=100):
    return WalkStats(
        num_walks=walks,
        total_steps=steps,
        candidates_scanned=candidates,
        search_iterations=searches,
    )


class TestRandomWalkProfile:
    def test_counts_scale_with_candidates(self):
        small = profile_random_walk(walk_stats(candidates=100))
        large = profile_random_walk(walk_stats(candidates=10000))
        assert large.mix.total > small.mix.total

    def test_fig9_shape_compute_and_memory_both_heavy(self, email_walk_stats):
        profile = profile_random_walk(email_walk_stats)
        fracs = profile.fractions()
        # The Fig. 9 claim: even the walk kernel has both substantial
        # memory AND compute (unlike BFS); nothing dominates everything.
        assert fracs["memory"] > 0.2
        assert fracs["compute"] > 0.25
        assert fracs["branch"] > 0.05

    def test_fp_comes_from_eq1_candidates(self):
        no_candidates = profile_random_walk(
            walk_stats(candidates=0, steps=10, searches=10, walks=10)
        )
        with_candidates = profile_random_walk(walk_stats())
        fp_share = lambda p: p.mix.compute_fp / p.mix.total
        assert fp_share(with_candidates) > fp_share(no_candidates)

    def test_notes_carry_inputs(self):
        profile = profile_random_walk(walk_stats())
        assert profile.notes["candidates"] == 1000


class TestWord2vecProfile:
    def test_scales_with_pairs(self):
        cfg = SgnsConfig(dim=8)
        small = profile_word2vec(TrainerStats(pairs_trained=10), cfg)
        large = profile_word2vec(TrainerStats(pairs_trained=1000), cfg)
        assert large.mix.total == pytest.approx(100 * small.mix.total)

    def test_memory_and_compute_both_heavy(self):
        profile = profile_word2vec(
            TrainerStats(pairs_trained=1000), SgnsConfig(dim=8)
        )
        fracs = profile.fractions()
        assert fracs["memory"] > 0.2
        assert fracs["compute"] > 0.3

    def test_dimension_raises_memory_share(self):
        lo = profile_word2vec(TrainerStats(pairs_trained=100), SgnsConfig(dim=2))
        hi = profile_word2vec(TrainerStats(pairs_trained=100), SgnsConfig(dim=64))
        assert hi.fractions()["memory"] > lo.fractions()["memory"]


class TestClassifierProfile:
    def test_training_heavier_than_inference(self):
        dims = [(16, 32), (32, 1)]
        train = profile_classifier("train", dims, 1000, 128, training=True)
        test = profile_classifier("test", dims, 1000, 128, training=False)
        assert train.mix.total > 2 * test.mix.total

    def test_memory_and_compute_both_heavy(self):
        profile = profile_classifier("train", [(16, 32), (32, 1)], 1000, 128)
        fracs = profile.fractions()
        assert fracs["memory"] > 0.25
        assert fracs["compute"] > 0.25

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            profile_classifier("x", [(2, 2)], 10, 0)


class TestGemmMix:
    def test_fp_matches_flops_over_simd(self):
        mix = gemm_mix(10, 20, 30)
        assert mix.compute_fp == pytest.approx(2 * 10 * 20 * 30 / 8)

    def test_memory_traffic_counts_operands(self):
        mix = gemm_mix(10, 20, 30)
        assert mix.memory == pytest.approx((200 + 600 + 600) * 2.0)


class TestBfsContrast:
    def test_bfs_has_no_fp(self):
        profile = profile_bfs(edges_scanned=1000, nodes_visited=100)
        assert profile.mix.compute_fp == 0.0

    def test_walk_more_fp_heavy_than_bfs(self, email_walk_stats):
        bfs_profile = profile_bfs(10000, 1000)
        walk_profile = profile_random_walk(email_walk_stats)
        bfs_fp = bfs_profile.mix.compute_fp / bfs_profile.mix.total
        walk_fp = walk_profile.mix.compute_fp / walk_profile.mix.total
        assert walk_fp > bfs_fp + 0.1  # the Fig. 9 contrast
