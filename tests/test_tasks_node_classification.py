"""Unit tests for the node-classification task."""

import numpy as np
import pytest

from repro.embedding import SgnsConfig, train_embeddings
from repro.errors import DataPreparationError
from repro.graph import TemporalGraph
from repro.nn.layers import Linear
from repro.tasks.node_classification import (
    NodeClassificationConfig,
    NodeClassificationTask,
    build_node_classification_model,
)
from repro.tasks.training import TrainSettings
from repro.walk import TemporalWalkEngine, WalkConfig


class TestModelArchitecture:
    def test_three_layers(self):
        model = build_node_classification_model(8, (64, 32), 5, seed=1)
        linears = [l for l in model.layers if isinstance(l, Linear)]
        assert [l.in_features for l in linears] == [8, 64, 32]
        assert linears[-1].out_features == 5


@pytest.fixture(scope="module")
def sbm_embeddings(sbm_dataset):
    graph = TemporalGraph.from_edge_list(
        sbm_dataset.edges.with_reverse_edges()
    )
    corpus = TemporalWalkEngine(graph).run(
        WalkConfig(num_walks_per_node=8, max_walk_length=6), seed=1
    )
    emb, _ = train_embeddings(
        corpus, graph.num_nodes, SgnsConfig(dim=8, epochs=5),
        batch_sentences=256, seed=2,
    )
    return emb


class TestTaskRun:
    def test_beats_chance_on_sbm(self, sbm_embeddings, sbm_dataset):
        config = NodeClassificationConfig(
            training=TrainSettings(epochs=25, learning_rate=0.05)
        )
        result = NodeClassificationTask(config).run(
            sbm_embeddings, sbm_dataset.labels, seed=3
        )
        chance = np.bincount(sbm_dataset.labels).max() / len(sbm_dataset.labels)
        assert result.accuracy > chance + 0.1
        assert result.auc is None

    def test_label_count_mismatch_rejected(self, sbm_embeddings):
        with pytest.raises(DataPreparationError):
            NodeClassificationTask().run(
                sbm_embeddings, np.zeros(3, dtype=int), seed=1
            )

    def test_single_class_rejected(self, sbm_embeddings):
        labels = np.zeros(sbm_embeddings.num_nodes, dtype=int)
        with pytest.raises(DataPreparationError, match="2 classes"):
            NodeClassificationTask().run(sbm_embeddings, labels, seed=1)

    def test_timings_and_counts(self, sbm_embeddings, sbm_dataset):
        config = NodeClassificationConfig(
            training=TrainSettings(epochs=3, learning_rate=0.05)
        )
        result = NodeClassificationTask(config).run(
            sbm_embeddings, sbm_dataset.labels, seed=4
        )
        n = len(sbm_dataset.labels)
        assert result.num_train == pytest.approx(0.6 * n, abs=4)
        assert result.num_test == pytest.approx(0.2 * n, abs=4)
        assert result.train_seconds > 0
