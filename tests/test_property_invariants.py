"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.embedding.negative import AliasTable
from repro.graph.csr import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.graph.stats import gini
from repro.hwmodel.threads import SchedulerCosts, simulate_schedule
from repro.nn.metrics import roc_auc
from repro.tasks.splits import temporal_edge_split
from repro.walk.config import WalkConfig
from repro.walk.engine import TemporalWalkEngine
from repro.walk.sampling import BIAS_CHOICES, transition_probabilities


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def edge_lists(draw, max_nodes=12, max_edges=40):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    src = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    dst = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    ts = draw(hnp.arrays(
        np.float64, m,
        elements=st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
    ))
    return TemporalEdgeList(src, dst, ts, num_nodes=n)


# ---------------------------------------------------------------------------
# CSR invariants
# ---------------------------------------------------------------------------

class TestCsrProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_edge_multiset(self, edges):
        graph = TemporalGraph.from_edge_list(edges)
        back = graph.to_edge_list()
        assert sorted(zip(edges.src, edges.dst, edges.timestamps)) == sorted(
            zip(back.src, back.dst, back.timestamps)
        )

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_always_time_sorted(self, edges):
        graph = TemporalGraph.from_edge_list(edges)
        for v in range(graph.num_nodes):
            _, ts = graph.neighbors(v)
            assert np.all(np.diff(ts) >= 0)

    @given(edge_lists(), st.floats(-0.5, 1.5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_temporal_range_matches_bruteforce(self, edges, after):
        graph = TemporalGraph.from_edge_list(edges)
        for v in range(graph.num_nodes):
            dsts, ts = graph.temporal_neighbors(v, after)
            all_dst, all_ts = graph.neighbors(v)
            expected = int(np.sum(all_ts > after))
            assert len(dsts) == expected
            assert np.all(ts > after)


# ---------------------------------------------------------------------------
# Walk invariants
# ---------------------------------------------------------------------------

class TestWalkProperties:
    @given(edge_lists(), st.sampled_from(sorted(BIAS_CHOICES)),
           st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_walks_temporally_valid_on_any_graph(self, edges, bias, seed):
        graph = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=4, bias=bias)
        corpus = TemporalWalkEngine(graph).run(cfg, seed=seed)
        assert corpus.validate_temporal_order(graph)
        assert corpus.num_walks == 2 * graph.num_nodes
        assert np.all(corpus.lengths >= 1)

    @given(edge_lists(), st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_walk_lengths_bounded(self, edges, seed):
        graph = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(num_walks_per_node=1, max_walk_length=5)
        corpus = TemporalWalkEngine(graph).run(cfg, seed=seed)
        assert corpus.lengths.max() <= 5

    @given(edge_lists(), st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_backward_walks_valid_on_any_graph(self, edges, seed):
        graph = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=4,
                         direction="backward")
        corpus = TemporalWalkEngine(graph).run(cfg, seed=seed)
        assert corpus.validate_temporal_order(graph, "backward")

    @given(edge_lists(), st.floats(0.01, 0.5, allow_nan=False),
           st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_windowed_walks_respect_gap(self, edges, window, seed):
        graph = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(num_walks_per_node=1, max_walk_length=4,
                         time_window=window)
        corpus = TemporalWalkEngine(graph).run(cfg, seed=seed)
        # Re-derive: some feasible timestamp assignment must exist with
        # strictly increasing times and per-hop gaps <= window.  Greedy
        # choices are unsound with multi-edges (an earlier pick can
        # forbid the next hop another pick allows), so propagate the
        # full set of feasible clock values per step.
        for i in range(corpus.num_walks):
            walk = corpus.walk(i)
            feasible = np.array([-np.inf])
            for a, b in zip(walk[:-1], walk[1:]):
                dsts, times = graph.neighbors(int(a))
                candidates = times[dsts == b]
                next_feasible = []
                for t_next in candidates:
                    ok = (feasible < t_next) & (
                        ~np.isfinite(feasible)
                        | (t_next <= feasible + window + 1e-12)
                    )
                    if ok.any():
                        next_feasible.append(t_next)
                assert next_feasible, "no consistent timestamp assignment"
                feasible = np.array(next_feasible)


# ---------------------------------------------------------------------------
# Sampling invariants
# ---------------------------------------------------------------------------

class TestSamplingProperties:
    @given(
        hnp.arrays(np.float64, st.integers(1, 20),
                   elements=st.floats(0.0, 1.0, allow_nan=False)),
        st.sampled_from(sorted(BIAS_CHOICES)),
        st.floats(0.01, 10.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_probabilities_valid_distribution(self, ts, bias, temperature):
        probs = transition_probabilities(np.sort(ts), bias, temperature)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    @given(hnp.arrays(np.float64, st.integers(1, 30),
                      elements=st.floats(0.001, 100.0, allow_nan=False)))
    @settings(max_examples=60, deadline=None)
    def test_alias_table_exact(self, weights):
        table = AliasTable(weights)
        expected = weights / weights.sum()
        assert np.allclose(table.probabilities(), expected, atol=1e-9)


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------

class TestMetricProperties:
    @given(st.integers(2, 200), st.integers(0, 2 ** 16))
    @settings(max_examples=60, deadline=None)
    def test_auc_complement_symmetry(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(n)
        targets = rng.integers(0, 2, n)
        auc = roc_auc(scores, targets)
        flipped = roc_auc(-scores, targets)
        assert 0.0 <= auc <= 1.0
        if 0 < targets.sum() < n:
            assert auc + flipped == pytest.approx(1.0)

    @given(hnp.arrays(np.float64, st.integers(1, 100),
                      elements=st.floats(0.0, 100.0, allow_nan=False)))
    @settings(max_examples=60, deadline=None)
    def test_gini_bounds(self, values):
        g = gini(values)
        assert -1e-9 <= g <= 1.0


# ---------------------------------------------------------------------------
# Split invariants
# ---------------------------------------------------------------------------

class TestSplitProperties:
    @given(edge_lists(max_nodes=20, max_edges=60), st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_and_chronology(self, edges, seed):
        if len(edges) < 5:
            return
        splits = temporal_edge_split(edges, seed=seed)
        assert splits.total == len(edges)
        if len(splits.test) and len(splits.train):
            assert splits.train.timestamps.max() <= splits.test.timestamps.min() + 1e-12


# ---------------------------------------------------------------------------
# I/O round-trip invariants
# ---------------------------------------------------------------------------

class TestIoProperties:
    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_wel_round_trip(self, edges):
        import tempfile
        from pathlib import Path

        from repro.graph.io import read_wel, write_wel

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.wel"
            write_wel(edges, path)
            back = read_wel(path, normalize=False)
        assert np.array_equal(back.src, edges.src)
        assert np.array_equal(back.dst, edges.dst)
        # %.10g text formatting preserves values to float precision here.
        assert np.allclose(back.timestamps, edges.timestamps, atol=1e-9)

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_corpus_round_trip(self, edges):
        import tempfile
        from pathlib import Path

        from repro.walk.corpus import WalkCorpus

        graph = TemporalGraph.from_edge_list(edges)
        corpus = TemporalWalkEngine(graph).run(
            WalkConfig(num_walks_per_node=1, max_walk_length=4), seed=1
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "c.npz"
            corpus.save(path)
            back = WalkCorpus.load(path)
        assert np.array_equal(back.matrix, corpus.matrix)
        assert np.array_equal(back.lengths, corpus.lengths)


# ---------------------------------------------------------------------------
# Huffman-tree invariants
# ---------------------------------------------------------------------------

class TestHuffmanProperties:
    @given(hnp.arrays(np.int64, st.integers(1, 40),
                      elements=st.integers(0, 1000)))
    @settings(max_examples=60, deadline=None)
    def test_prefix_free_and_kraft_equality(self, counts):
        from repro.embedding.hsoftmax import HuffmanTree

        tree = HuffmanTree(counts)
        n = len(counts)
        codes = []
        for leaf in range(n):
            length = int(tree.code_lengths[leaf])
            codes.append(tuple(tree.codes[leaf, :length].tolist()))
        # Prefix-free.
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j and len(a) <= len(b):
                    assert a != b[: len(a)]
        # A full binary (Huffman) tree satisfies Kraft with equality.
        if n > 1:
            kraft = sum(2.0 ** -len(c) for c in codes)
            assert kraft == pytest.approx(1.0)

    @given(hnp.arrays(np.int64, st.integers(2, 30),
                      elements=st.integers(1, 1000)))
    @settings(max_examples=40, deadline=None)
    def test_hs_probabilities_normalize(self, counts):
        from repro.embedding.hsoftmax import HierarchicalSoftmaxModel

        model = HierarchicalSoftmaxModel(counts, dim=3, seed=1)
        rng = np.random.default_rng(int(counts.sum()) % 2**31)
        model.w_inner[:] = rng.normal(0, 0.4, size=model.w_inner.shape)
        total = sum(
            model.context_probability(0, ctx) for ctx in range(len(counts))
        )
        assert total == pytest.approx(1.0, abs=1e-8)


# ---------------------------------------------------------------------------
# Scheduler invariants
# ---------------------------------------------------------------------------

class TestSchedulerProperties:
    @given(
        hnp.arrays(np.float64, st.integers(1, 200),
                   elements=st.floats(0.0, 100.0, allow_nan=False)),
        st.integers(1, 32),
        st.sampled_from(["static", "dynamic"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, work, threads, policy):
        costs = SchedulerCosts(per_thread_startup=0.0, per_chunk_dispatch=0.0,
                               per_steal=0.0, bandwidth_speedup_cap=None)
        result = simulate_schedule(work, threads, policy=policy, costs=costs)
        serial = work.sum()
        # Makespan is at least serial/threads and at most serial work.
        assert result.makespan >= serial / threads - 1e-9
        assert result.makespan <= serial + 1e-9


# ---------------------------------------------------------------------------
# Serving top-k invariants
# ---------------------------------------------------------------------------

class TestServingTopKProperties:
    """Exact top-k must be a pure function of (matrix, node, k, metric).

    Block size and batch composition are execution details: they may
    change which BLAS kernel computes each dot product (so scores are
    compared with ``allclose``, not bit-equality), but they must never
    change the returned ids — the selection and the lower-id tie-break
    have to be invariant to how the scan was chunked or batched.
    """

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=80),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(["dot", "cosine"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_topk_invariant_to_block_size(self, seed, n, dim, metric):
        from repro.serving import EmbeddingStore, RecommendationIndex

        rng = np.random.default_rng(seed)
        store = EmbeddingStore()
        store.publish(rng.standard_normal((n, dim)), generation=0)
        k = int(rng.integers(1, n + 2))
        baseline = RecommendationIndex(store, cache_size=0, metric=metric)
        expected_ids, expected_scores = baseline.top_k(0, k)
        for block_size in (1, 3, 17, n):
            index = RecommendationIndex(store, cache_size=0,
                                        block_size=block_size, metric=metric)
            ids, scores = index.top_k(0, k)
            np.testing.assert_array_equal(ids, expected_ids)
            np.testing.assert_allclose(scores, expected_scores,
                                       rtol=1e-12, atol=1e-12)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=3, max_value=60),
        st.sampled_from(["dot", "cosine"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_topk_invariant_to_batch_composition(self, seed, n, metric):
        from repro.serving import EmbeddingStore, RecommendationIndex

        rng = np.random.default_rng(seed)
        store = EmbeddingStore()
        store.publish(rng.standard_normal((n, 4)), generation=0)
        k = int(rng.integers(1, n))
        nodes = rng.integers(0, n, size=6)
        # Singles are the reference; the batch answers (in any request
        # order) must agree with them.
        single = RecommendationIndex(store, cache_size=0, metric=metric)
        expected = [single.top_k(int(node), k) for node in nodes]
        batched = RecommendationIndex(store, cache_size=0, metric=metric)
        order = rng.permutation(len(nodes))
        results = batched.top_k_batch([(int(nodes[i]), k) for i in order])
        for got, i in zip(results, order):
            np.testing.assert_array_equal(got[0], expected[i][0])
            np.testing.assert_allclose(got[1], expected[i][1],
                                       rtol=1e-12, atol=1e-12)

    def test_duplicate_rows_keep_lowest_id_ties_across_block_sizes(self):
        """Duplicate rows create huge tie groups; whatever the block
        size, the selection must admit exactly the lowest-id ties (an
        arbitrary tie subset would differ between chunkings).  Score
        *bits* still vary with the chunking — BLAS picks different
        accumulation orders for different GEMM shapes — which is exactly
        why ids, not float identity, carry this invariant."""
        from repro.serving import EmbeddingStore, RecommendationIndex

        rng = np.random.default_rng(7)
        prototypes = rng.standard_normal((4, 5))
        matrix = prototypes[rng.integers(0, 4, size=120)]
        store = EmbeddingStore()
        store.publish(matrix, generation=0)
        baseline = RecommendationIndex(store, cache_size=0, block_size=120)
        expected_ids, expected_scores = baseline.top_k(11, 30)
        for block_size in (1, 2, 7, 64):
            index = RecommendationIndex(store, cache_size=0,
                                        block_size=block_size)
            ids, scores = index.top_k(11, 30)
            np.testing.assert_array_equal(ids, expected_ids)
            np.testing.assert_allclose(scores, expected_scores,
                                       rtol=1e-12, atol=1e-12)
