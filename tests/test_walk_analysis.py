"""Unit tests for walk-corpus diagnostics."""

import numpy as np
import pytest

from repro.graph import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.walk import TemporalWalkEngine, WalkConfig
from repro.walk.analysis import corpus_coverage
from repro.walk.corpus import PAD, WalkCorpus


class TestCorpusCoverage:
    def test_full_coverage_simple_graph(self):
        matrix = np.array([[0, 1, PAD], [1, 2, PAD], [2, 0, PAD]])
        corpus = WalkCorpus(matrix, np.array([2, 2, 2]))
        edges = TemporalEdgeList([0, 1, 2], [1, 2, 0], [0.1, 0.2, 0.3])
        graph = TemporalGraph.from_edge_list(edges)
        coverage = corpus_coverage(corpus, graph)
        assert coverage.node_coverage == 1.0
        assert coverage.trainable_node_coverage == 1.0
        assert coverage.mean_distinct_neighbors == 1.0
        assert coverage.neighbor_coverage == 1.0

    def test_isolated_start_not_trainable(self):
        # Walk [2] alone: node 2 appears but never in a 2+ sentence.
        matrix = np.array([[0, 1], [2, PAD]])
        corpus = WalkCorpus(matrix, np.array([2, 1]))
        edges = TemporalEdgeList([0], [1], [0.5], num_nodes=3)
        graph = TemporalGraph.from_edge_list(edges)
        coverage = corpus_coverage(corpus, graph)
        assert coverage.node_coverage == 1.0
        assert coverage.trainable_node_coverage == pytest.approx(2 / 3)

    def test_more_walks_increase_neighbor_coverage(self, email_graph):
        def coverage_at(k):
            corpus = TemporalWalkEngine(email_graph).run(
                WalkConfig(num_walks_per_node=k, max_walk_length=4), seed=1
            )
            return corpus_coverage(corpus, email_graph)

        low = coverage_at(1)
        high = coverage_at(10)
        # The Fig. 8b mechanism: more walks sample more distinct
        # first-hop neighbors.
        assert (high.mean_distinct_neighbors
                > low.mean_distinct_neighbors)
        assert high.neighbor_coverage >= low.neighbor_coverage

    def test_entropy_bounded_by_log_nodes(self, email_corpus, email_graph):
        coverage = corpus_coverage(email_corpus, email_graph)
        assert 0.0 < coverage.context_entropy <= np.log2(
            email_graph.num_nodes)

    def test_as_row_keys(self, email_corpus, email_graph):
        row = corpus_coverage(email_corpus, email_graph).as_row()
        assert set(row) == {"node_cov", "trainable_cov", "distinct_nbrs",
                            "nbr_cov", "ctx_entropy"}
