"""Unit tests for the dynamic temporal graph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.dynamic import DynamicTemporalGraph
from repro.graph.edges import TemporalEdgeList


def batch(rows, num_nodes=None):
    return TemporalEdgeList.from_edges(rows, num_nodes=num_nodes)


class TestDynamicGraph:
    def test_starts_empty(self):
        dynamic = DynamicTemporalGraph()
        assert dynamic.num_edges == 0
        assert dynamic.generation == 0

    def test_append_grows_edges_and_generation(self):
        dynamic = DynamicTemporalGraph()
        gen = dynamic.append(batch([(0, 1, 0.1), (1, 2, 0.2)]))
        assert gen == 1
        assert dynamic.num_edges == 2
        assert dynamic.num_nodes == 3

    def test_append_empty_is_noop(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        gen = dynamic.append(TemporalEdgeList([], [], []))
        assert gen == 0
        assert dynamic.num_edges == 1

    def test_graph_snapshot_valid_and_cached(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.5), (0, 2, 0.1)]))
        graph1 = dynamic.graph()
        assert graph1.num_edges == 2
        # Adjacency sorted by timestamp despite insert order.
        _, ts = graph1.neighbors(0)
        assert list(ts) == [0.1, 0.5]
        assert dynamic.graph() is graph1  # cached until next append

    def test_snapshot_invalidated_by_append(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        graph1 = dynamic.graph()
        dynamic.append(batch([(1, 0, 0.2)]))
        graph2 = dynamic.graph()
        assert graph2 is not graph1
        assert graph2.num_edges == 2

    def test_new_nodes_extend_node_set(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        dynamic.append(batch([(5, 6, 0.9)]))
        assert dynamic.num_nodes == 7

    def test_edges_since_marker(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        marker = dynamic.generation
        dynamic.append(batch([(1, 2, 0.2)]))
        dynamic.append(batch([(2, 3, 0.3)]))
        fresh = dynamic.edges_since(marker)
        assert len(fresh) == 2
        assert fresh.src.tolist() == [1, 2]

    def test_edges_since_unknown_marker_rejected(self):
        dynamic = DynamicTemporalGraph()
        with pytest.raises(GraphError):
            dynamic.edges_since(99)

    def test_affected_nodes(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        marker = dynamic.generation
        dynamic.append(batch([(1, 2, 0.2), (3, 1, 0.3)]))
        affected = dynamic.affected_nodes(marker)
        assert set(affected.tolist()) == {1, 2, 3}

    def test_explicit_num_nodes(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]), num_nodes=10)
        assert dynamic.num_nodes == 10
        assert dynamic.graph().num_nodes == 10


class TestSubscribers:
    def test_subscribe_fires_with_generation(self):
        dynamic = DynamicTemporalGraph()
        seen = []
        dynamic.subscribe(seen.append)
        dynamic.append(batch([(0, 1, 0.1)]))
        dynamic.append(batch([(1, 2, 0.2)]))
        assert seen == [1, 2]

    def test_unsubscribe_stops_delivery_and_is_idempotent(self):
        dynamic = DynamicTemporalGraph()
        seen = []
        dynamic.subscribe(seen.append)
        dynamic.append(batch([(0, 1, 0.1)]))
        assert dynamic.unsubscribe(seen.append)
        assert not dynamic.unsubscribe(seen.append)  # already gone
        dynamic.append(batch([(1, 2, 0.2)]))
        assert seen == [1]

    def test_raising_subscriber_is_isolated_and_counted(self):
        from repro.observability import Recorder, use_recorder

        dynamic = DynamicTemporalGraph()
        seen = []

        def bad(generation):
            raise RuntimeError("observer bug")

        dynamic.subscribe(bad)
        dynamic.subscribe(seen.append)
        recorder = Recorder()
        with use_recorder(recorder):
            gen = dynamic.append(batch([(0, 1, 0.1)]))
        assert gen == 1
        assert seen == [1]  # later subscribers still ran
        assert recorder.counters["dynamic.subscriber_errors"] == 1

    def test_subscriber_may_reenter_graph(self):
        dynamic = DynamicTemporalGraph()
        sizes = []
        dynamic.subscribe(lambda gen: sizes.append(dynamic.num_edges))
        dynamic.append(batch([(0, 1, 0.1), (1, 2, 0.2)]))
        assert sizes == [2]


class TestMarkerRetention:
    def test_markers_bounded_by_retention(self):
        dynamic = DynamicTemporalGraph(marker_retention=3)
        for i in range(6):
            dynamic.append(batch([(i, i + 1, 0.1 * i)]))
        assert dynamic.retained_markers() == [4, 5, 6]
        with pytest.raises(GraphError, match="retention"):
            dynamic.edges_since(2)

    def test_release_marker_frees_consumed_generations(self):
        dynamic = DynamicTemporalGraph()
        dynamic.append(batch([(0, 1, 0.1)]))
        dynamic.append(batch([(1, 2, 0.2)]))
        assert dynamic.release_marker(1)
        assert not dynamic.release_marker(1)  # already released
        assert dynamic.retained_markers() == [0, 2]
        with pytest.raises(GraphError):
            dynamic.edges_since(1)

    def test_current_generation_marker_never_released(self):
        dynamic = DynamicTemporalGraph()
        dynamic.append(batch([(0, 1, 0.1)]))
        assert not dynamic.release_marker(dynamic.generation)
        assert len(dynamic.edges_since(dynamic.generation)) == 0

    def test_retention_validation(self):
        with pytest.raises(GraphError):
            DynamicTemporalGraph(marker_retention=0)


class TestConcurrentReaders:
    def test_readers_see_consistent_state_under_append_load(self):
        """Locked readers: edge_list/num_nodes/num_edges never tear."""
        import threading

        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                edges = dynamic.edge_list()
                # A snapshot must be internally consistent: the arrays
                # share one length and node ids fit in num_nodes.
                if not (len(edges.src) == len(edges.dst)
                        == len(edges.timestamps)):
                    torn.append("length")
                if len(edges) and edges.src.max() >= edges.num_nodes:
                    torn.append("node-range")

        threads = [threading.Thread(target=reader, daemon=True)
                   for _ in range(3)]
        for thread in threads:
            thread.start()
        rng = np.random.default_rng(0)
        appended = 0
        for _ in range(60):
            n = int(rng.integers(1, 8))
            hi = int(rng.integers(2, 50))
            dynamic.append(TemporalEdgeList(
                rng.integers(0, hi, size=n), rng.integers(0, hi, size=n),
                rng.random(n),
            ))
            appended += n
        stop.set()
        for thread in threads:
            thread.join(5.0)
        assert torn == []
        assert dynamic.generation == 60
        assert dynamic.num_edges == 1 + appended
