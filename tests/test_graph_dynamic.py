"""Unit tests for the dynamic temporal graph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.dynamic import DynamicTemporalGraph
from repro.graph.edges import TemporalEdgeList


def batch(rows, num_nodes=None):
    return TemporalEdgeList.from_edges(rows, num_nodes=num_nodes)


class TestDynamicGraph:
    def test_starts_empty(self):
        dynamic = DynamicTemporalGraph()
        assert dynamic.num_edges == 0
        assert dynamic.generation == 0

    def test_append_grows_edges_and_generation(self):
        dynamic = DynamicTemporalGraph()
        gen = dynamic.append(batch([(0, 1, 0.1), (1, 2, 0.2)]))
        assert gen == 1
        assert dynamic.num_edges == 2
        assert dynamic.num_nodes == 3

    def test_append_empty_is_noop(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        gen = dynamic.append(TemporalEdgeList([], [], []))
        assert gen == 0
        assert dynamic.num_edges == 1

    def test_graph_snapshot_valid_and_cached(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.5), (0, 2, 0.1)]))
        graph1 = dynamic.graph()
        assert graph1.num_edges == 2
        # Adjacency sorted by timestamp despite insert order.
        _, ts = graph1.neighbors(0)
        assert list(ts) == [0.1, 0.5]
        assert dynamic.graph() is graph1  # cached until next append

    def test_snapshot_invalidated_by_append(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        graph1 = dynamic.graph()
        dynamic.append(batch([(1, 0, 0.2)]))
        graph2 = dynamic.graph()
        assert graph2 is not graph1
        assert graph2.num_edges == 2

    def test_new_nodes_extend_node_set(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        dynamic.append(batch([(5, 6, 0.9)]))
        assert dynamic.num_nodes == 7

    def test_edges_since_marker(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        marker = dynamic.generation
        dynamic.append(batch([(1, 2, 0.2)]))
        dynamic.append(batch([(2, 3, 0.3)]))
        fresh = dynamic.edges_since(marker)
        assert len(fresh) == 2
        assert fresh.src.tolist() == [1, 2]

    def test_edges_since_unknown_marker_rejected(self):
        dynamic = DynamicTemporalGraph()
        with pytest.raises(GraphError):
            dynamic.edges_since(99)

    def test_affected_nodes(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]))
        marker = dynamic.generation
        dynamic.append(batch([(1, 2, 0.2), (3, 1, 0.3)]))
        affected = dynamic.affected_nodes(marker)
        assert set(affected.tolist()) == {1, 2, 3}

    def test_explicit_num_nodes(self):
        dynamic = DynamicTemporalGraph(batch([(0, 1, 0.1)]), num_nodes=10)
        assert dynamic.num_nodes == 10
        assert dynamic.graph().num_nodes == 10
