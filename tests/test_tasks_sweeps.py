"""Unit tests for the hyperparameter-sweep API."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.embedding import SgnsConfig
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.sweeps import SweepResult, sweep_dataset, sweep_hyperparameter
from repro.tasks.training import TrainSettings
from repro.walk import WalkConfig

FAST_KWARGS = dict(
    seeds=(11,),
    base_walk=WalkConfig(num_walks_per_node=4, max_walk_length=5),
    base_sgns=SgnsConfig(dim=8, epochs=2),
    lp_config=LinkPredictionConfig(
        training=TrainSettings(epochs=5, learning_rate=0.05)
    ),
)


class TestSweepResult:
    def test_saturation_point(self):
        result = SweepResult("num_walks", [1, 2, 4, 8])
        result.accuracies = {1: 0.7, 2: 0.8, 4: 0.89, 8: 0.9}
        assert result.saturation_point(tolerance=0.02) == 4
        assert result.saturation_point(tolerance=0.0) == 8

    def test_rows(self):
        result = SweepResult("dimension", [2, 1])
        result.accuracies = {2: 0.8, 1: 0.7}
        rows = result.rows()
        assert rows[0] == {"dimension": 1, "accuracy": 0.7}


class TestSweepHyperparameter:
    def test_unknown_parameter_rejected(self, email_edges):
        with pytest.raises(ReproError):
            sweep_hyperparameter("window", [1], email_edges)

    def test_lp_sweep_runs(self, email_edges):
        result = sweep_hyperparameter(
            "num_walks", [1, 4], email_edges, **FAST_KWARGS
        )
        assert set(result.accuracies) == {1, 4}
        assert all(0 <= a <= 1 for a in result.accuracies.values())

    def test_dimension_sweep_varies_dimension(self, email_edges):
        result = sweep_hyperparameter(
            "dimension", [2, 8], email_edges, **FAST_KWARGS
        )
        assert set(result.accuracies) == {2, 8}

    def test_nc_dispatch_via_sweep_dataset(self, sbm_dataset):
        from repro.tasks.node_classification import NodeClassificationConfig

        result = sweep_dataset(
            sbm_dataset, "walk_length", [3, 5],
            seeds=(11,),
            base_sgns=SgnsConfig(dim=8, epochs=2),
            nc_config=NodeClassificationConfig(
                training=TrainSettings(epochs=5, learning_rate=0.05)
            ),
        )
        assert result.parameter == "walk_length"
        assert set(result.accuracies) == {3, 5}
