"""Unit tests for SGD and the step-decay schedule."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import SGD, StepDecay
from repro.nn.module import Parameter


def make_param(value=1.0, grad=0.5):
    p = Parameter(np.array([value]))
    p.grad[:] = grad
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = make_param()
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        p = make_param()
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()   # v = 0.5
        p.grad[:] = 0.5
        opt.step()   # v = 0.95
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5 - 0.1 * 0.95)

    def test_weight_decay_pulls_toward_zero(self):
        p = make_param(value=2.0, grad=0.0)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.data[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert np.all(p.grad == 0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(TrainingError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(TrainingError):
            SGD([make_param()], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(TrainingError):
            SGD([make_param()], lr=0.1, momentum=1.0)

    def test_converges_on_quadratic(self):
        # minimize (x - 3)^2 by supplying its gradient.
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(200):
            p.grad[:] = 2 * (p.data - 3.0)
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-4)


class TestStepDecay:
    def test_decays_on_boundary(self):
        opt = SGD([make_param()], lr=1.0)
        sched = StepDecay(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        sched.step()
        assert opt.lr == 0.25

    def test_invalid_step_size(self):
        with pytest.raises(TrainingError):
            StepDecay(SGD([make_param()], lr=1.0), step_size=0)

    def test_invalid_gamma(self):
        with pytest.raises(TrainingError):
            StepDecay(SGD([make_param()], lr=1.0), step_size=1, gamma=1.5)
