"""Unit tests for refresh policies and the stream controller."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.embedding.trainer import SgnsConfig
from repro.errors import StreamError
from repro.faults import FaultPlan
from repro.graph import DynamicTemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.observability import Recorder, use_recorder
from repro.stream import (
    AffectedFraction,
    EveryNEdges,
    IngestQueue,
    MaxStaleness,
    PendingState,
    StreamController,
    WriteAheadLog,
    replay,
)
from repro.tasks.incremental import IncrementalEmbedder
from repro.walk.config import WalkConfig

pytestmark = pytest.mark.stream


def make_batch(rng, n, num_nodes=40):
    return TemporalEdgeList(
        rng.integers(0, num_nodes, size=n),
        rng.integers(0, num_nodes, size=n),
        rng.random(n),
        num_nodes=num_nodes,
    )


def pending(edges=0, affected=0, num_nodes=100, since_refresh=0.0,
            since_first=0.0):
    return PendingState(
        edges=edges, affected_nodes=affected, num_nodes=num_nodes,
        seconds_since_refresh=since_refresh,
        seconds_since_first_pending=since_first,
    )


class TestRefreshPolicies:
    def test_every_n_edges(self):
        policy = EveryNEdges(100)
        assert not policy.should_refresh(pending(edges=99))
        assert policy.should_refresh(pending(edges=100))

    def test_every_n_validation(self):
        with pytest.raises(StreamError):
            EveryNEdges(0)

    def test_max_staleness_needs_pending_edges(self):
        policy = MaxStaleness(0.5)
        assert not policy.should_refresh(pending(edges=0, since_first=10.0))
        assert not policy.should_refresh(pending(edges=5, since_first=0.1))
        assert policy.should_refresh(pending(edges=5, since_first=0.6))

    def test_max_staleness_validation(self):
        with pytest.raises(StreamError):
            MaxStaleness(0.0)

    def test_affected_fraction(self):
        policy = AffectedFraction(0.25)
        assert not policy.should_refresh(pending(affected=24, num_nodes=100))
        assert policy.should_refresh(pending(affected=25, num_nodes=100))
        assert not policy.should_refresh(pending(affected=5, num_nodes=0))

    def test_affected_fraction_validation(self):
        with pytest.raises(StreamError):
            AffectedFraction(0.0)
        with pytest.raises(StreamError):
            AffectedFraction(1.5)


def embedder_for(dynamic, seed=3):
    return IncrementalEmbedder(
        dynamic,
        walk_config=WalkConfig(num_walks_per_node=2, max_walk_length=4),
        sgns_config=SgnsConfig(dim=4, epochs=1),
        seed=seed,
    )


class TestController:
    def test_log_ahead_ordering(self, tmp_path):
        """Every edge visible in the graph is already durable in the WAL."""
        rng = np.random.default_rng(0)
        queue = IngestQueue(max_edges=10_000)
        dynamic = DynamicTemporalGraph()
        batches = [make_batch(rng, 15) for _ in range(6)]
        with StreamController(dynamic, queue,
                              wal=WriteAheadLog(tmp_path)) as controller:
            for batch in batches:
                queue.put(batch)
        assert controller.stats.batches_applied == 6
        assert dynamic.num_edges == 90
        result = replay(tmp_path)
        assert result.total_edges == 90
        assert np.array_equal(result.edge_list().src,
                              dynamic.edge_list().src)

    def test_refresh_triggered_by_every_n(self, tmp_path):
        rng = np.random.default_rng(1)
        dynamic = DynamicTemporalGraph(make_batch(rng, 100))
        embedder = embedder_for(dynamic)
        embedder.rebuild()
        queue = IngestQueue(max_edges=10_000)
        recorder = Recorder()
        with use_recorder(recorder):
            with StreamController(dynamic, queue, embedder=embedder,
                                  policy=EveryNEdges(30),
                                  final_refresh=False) as controller:
                for _ in range(4):
                    queue.put(make_batch(rng, 15))
        # 60 edges = 2 triggers of 30 (final refresh disabled).
        assert controller.stats.refreshes == 2
        assert recorder.counters.get("stream.refresh.triggers.every-n") == 2
        assert embedder._synced_generation == dynamic.generation

    def test_final_refresh_flushes_pending(self):
        rng = np.random.default_rng(2)
        dynamic = DynamicTemporalGraph(make_batch(rng, 100))
        embedder = embedder_for(dynamic)
        embedder.rebuild()
        queue = IngestQueue(max_edges=10_000)
        with StreamController(dynamic, queue, embedder=embedder,
                              policy=EveryNEdges(10_000)) as controller:
            queue.put(make_batch(rng, 10))
        # Policy never fired, but shutdown drains the pending tail.
        assert controller.stats.refreshes == 1
        assert embedder._synced_generation == dynamic.generation

    def test_staleness_triggers_on_idle_tick(self):
        rng = np.random.default_rng(3)
        dynamic = DynamicTemporalGraph(make_batch(rng, 100))
        embedder = embedder_for(dynamic)
        embedder.rebuild()
        queue = IngestQueue(max_edges=10_000)
        controller = StreamController(
            dynamic, queue, embedder=embedder,
            policy=MaxStaleness(0.05), idle_poll=0.01, final_refresh=False,
        )
        with controller:
            queue.put(make_batch(rng, 5))
            deadline = time.monotonic() + 5.0
            while (controller.stats.refreshes == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        # The refresh happened while idle, not at shutdown.
        assert controller.stats.refreshes >= 1

    def test_marker_release_keeps_retention_bounded(self):
        rng = np.random.default_rng(4)
        dynamic = DynamicTemporalGraph(make_batch(rng, 80))
        embedder = embedder_for(dynamic)
        embedder.rebuild()
        queue = IngestQueue(max_edges=10_000)
        with StreamController(dynamic, queue, embedder=embedder,
                              policy=EveryNEdges(10)):
            for _ in range(12):
                queue.put(make_batch(rng, 10))
        # Every generation the embedder consumed has been released; only
        # un-consumed markers (at most the live tail) remain.
        assert len(dynamic.retained_markers()) <= 3

    def test_error_fault_retried_then_applied(self, tmp_path):
        rng = np.random.default_rng(5)
        queue = IngestQueue(max_edges=10_000)
        dynamic = DynamicTemporalGraph()
        plan = FaultPlan.parse("stream.controller.drain:error:1:1")
        recorder = Recorder()
        with use_recorder(recorder):
            with StreamController(dynamic, queue,
                                  wal=WriteAheadLog(tmp_path),
                                  fault_plan=plan) as controller:
                for _ in range(3):
                    queue.put(make_batch(rng, 10))
        assert controller.stats.batches_applied == 3
        assert controller.stats.batches_failed == 0
        assert recorder.counters.get("stream.controller.retries") == 1
        assert replay(tmp_path).total_edges == 30

    def test_persistent_fault_drops_batch_but_survives(self, tmp_path):
        rng = np.random.default_rng(6)
        queue = IngestQueue(max_edges=10_000)
        dynamic = DynamicTemporalGraph()
        plan = FaultPlan.parse("stream.controller.drain:error:1:99")
        with StreamController(dynamic, queue, wal=WriteAheadLog(tmp_path),
                              fault_plan=plan,
                              max_retries=1) as controller:
            for _ in range(3):
                queue.put(make_batch(rng, 10))
        assert controller.stats.batches_applied == 2
        assert controller.stats.batches_failed == 1
        assert controller.failure is None
        assert replay(tmp_path).total_edges == 20

    def test_unsubscribes_on_stop(self):
        queue = IngestQueue(max_edges=100)
        dynamic = DynamicTemporalGraph()
        controller = StreamController(dynamic, queue)
        controller.start()
        assert len(dynamic._subscribers) == 1
        controller.stop()
        assert dynamic._subscribers == []

    def test_double_start_rejected(self):
        controller = StreamController(DynamicTemporalGraph(),
                                      IngestQueue(max_edges=10))
        controller.start()
        with pytest.raises(StreamError):
            controller.start()
        controller.stop()

    def test_validation(self):
        dynamic, queue = DynamicTemporalGraph(), IngestQueue(max_edges=10)
        with pytest.raises(StreamError):
            StreamController(dynamic, queue, max_retries=-1)
        with pytest.raises(StreamError):
            StreamController(dynamic, queue, idle_poll=0.0)


class TestRecover:
    def test_recover_reproduces_graph_and_markers(self, tmp_path):
        rng = np.random.default_rng(7)
        queue = IngestQueue(max_edges=10_000)
        dynamic = DynamicTemporalGraph()
        batches = [make_batch(rng, 12) for _ in range(5)]
        with StreamController(dynamic, queue, wal=WriteAheadLog(tmp_path)):
            for batch in batches:
                queue.put(batch)
        recovered, result = StreamController.recover(tmp_path)
        assert recovered.generation == dynamic.generation == 5
        assert recovered.num_nodes == dynamic.num_nodes
        assert np.array_equal(recovered.edge_list().src,
                              dynamic.edge_list().src)
        assert np.array_equal(recovered.edge_list().timestamps,
                              dynamic.edge_list().timestamps)
        # Markers are usable: edges_since per replayed generation works.
        assert len(recovered.edges_since(2)) == 36
        assert recovered.retained_markers() == dynamic.retained_markers()

    def test_recovered_markers_drive_incremental_updates(self, tmp_path):
        rng = np.random.default_rng(8)
        initial = make_batch(rng, 100)
        dynamic = DynamicTemporalGraph(initial)
        queue = IngestQueue(max_edges=10_000)
        with StreamController(dynamic, queue, wal=WriteAheadLog(tmp_path)):
            for _ in range(3):
                queue.put(make_batch(rng, 10))
        recovered, _ = StreamController.recover(tmp_path, initial=initial)
        embedder = embedder_for(recovered)
        embedder.rebuild()
        recovered.append(make_batch(rng, 10))
        report = embedder.update()   # consumes a replayed marker
        assert not report.full_rebuild
        assert report.generation == recovered.generation

    def test_recover_coalesced(self, tmp_path):
        rng = np.random.default_rng(9)
        queue = IngestQueue(max_edges=10_000)
        dynamic = DynamicTemporalGraph()
        with StreamController(dynamic, queue, wal=WriteAheadLog(tmp_path)):
            for _ in range(4):
                queue.put(make_batch(rng, 10))
        recovered, _ = StreamController.recover(tmp_path, coalesce=True)
        assert recovered.generation == 1  # one marker for the whole log
        assert recovered.num_edges == dynamic.num_edges
        assert np.array_equal(recovered.edge_list().dst,
                              dynamic.edge_list().dst)
