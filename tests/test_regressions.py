"""Regression tests for bugs found during development.

Each test documents a concrete defect that existed at some point in this
codebase, the scenario that exposed it, and pins the fix.
"""

import numpy as np
import pytest

from repro.graph import TemporalGraph, generators
from repro.graph.edges import TemporalEdgeList
from repro.walk import TemporalWalkEngine, WalkConfig
from repro.walk.sampling import transition_probabilities


class TestWalkSamplingRegressions:
    def test_softmax_recency_finite_at_unset_clock(self):
        """Bug: recency logits used ``-(ts - t_now)`` directly; at the
        initial clock (-inf) that produced inf-inf = NaN probabilities.
        Fix: softmax shift-invariance removes the clock term entirely."""
        probs = transition_probabilities(
            np.array([0.0, 0.5, 1.0]), "softmax-recency", 1.0
        )
        assert np.isfinite(probs).all()
        assert probs.sum() == pytest.approx(1.0)

    def test_first_hop_includes_timestamp_zero_edges(self):
        """Bug risk: Algorithm 1 initializes currTime = 0; with
        normalized timestamps and the strict ``>`` rule, edges at t=0
        would be unreachable.  The engine starts the clock at -inf."""
        edges = TemporalEdgeList([0], [1], [0.0])
        graph = TemporalGraph.from_edge_list(edges)
        corpus = TemporalWalkEngine(graph).run(
            WalkConfig(num_walks_per_node=5, max_walk_length=2),
            seed=1, start_nodes=np.array([0]),
        )
        assert np.all(corpus.lengths == 2)

    def test_time_window_does_not_kill_first_hop(self):
        """Bug: the window upper bound computed ``-inf + window = -inf``
        at the unset clock, emptying every first-hop candidate set."""
        edges = TemporalEdgeList([0], [1], [0.9])
        graph = TemporalGraph.from_edge_list(edges)
        corpus = TemporalWalkEngine(graph).run(
            WalkConfig(num_walks_per_node=3, max_walk_length=2,
                       time_window=0.01),
            seed=1, start_nodes=np.array([0]),
        )
        assert np.all(corpus.lengths == 2)


class _ConstantUniformRng(np.random.Generator):
    """Generator stub whose ``random`` always returns one fixed value.

    ``make_rng`` passes Generator instances through unchanged, so this
    injects boundary uniforms (0.0, and the 1.0 a real ``random()`` can
    never emit) straight into the engine's draw path.
    """

    def __init__(self, value: float) -> None:
        super().__init__(np.random.PCG64(0))
        self._value = float(value)

    def random(self, size=None, *args, **kwargs):  # noqa: A002
        if size is None:
            return self._value
        return np.full(size, self._value)


class TestEdgeStartRegressions:
    """``run_from_edges`` softmax initial-edge draw (global CDF)."""

    def _graph(self, rows):
        return TemporalGraph.from_edge_list(
            TemporalEdgeList.from_edges(rows, num_nodes=3)
        )

    def test_top_plateau_never_selects_zero_weight_edge(self):
        """Bug: the draw searched the full CDF and clipped to the last
        *edge*; with trailing zero-weight (underflown) edges a target on
        the CDF's top plateau selected one of them.  Fix: search the
        positive-weight edges only, clipping to the last positive one."""
        # CSR order: (0 -> 2, t=0) has weight 1, (1 -> 2, t=1000)
        # underflows to weight 0 under recency at temperature 0.01.
        graph = self._graph([(0, 2, 0.0), (1, 2, 1000.0)])
        cfg = WalkConfig(bias="softmax-recency", max_walk_length=2,
                         temperature=0.01)
        corpus = TemporalWalkEngine(graph).run_from_edges(
            cfg, num_walks=8, seed=_ConstantUniformRng(1.0)
        )
        assert np.all(corpus.start_nodes == 0)

    def test_zero_weight_prefix_plateau_skipped(self):
        """Target exactly on the leading zero plateau (u = 0.0, which a
        real ``random()`` can emit) must skip the zero-weight edges."""
        graph = self._graph([(0, 2, 1000.0), (1, 2, 0.0)])
        cfg = WalkConfig(bias="softmax-recency", max_walk_length=2,
                         temperature=0.01)
        corpus = TemporalWalkEngine(graph).run_from_edges(
            cfg, num_walks=8, seed=_ConstantUniformRng(0.0)
        )
        assert np.all(corpus.start_nodes == 1)

    @pytest.mark.parametrize("bias", ["softmax-recency", "softmax-late"])
    def test_real_draws_never_start_on_zero_weight_edges(self, bias):
        ts_far = 1000.0 if bias == "softmax-recency" else -1000.0
        graph = self._graph([(0, 2, 0.0), (1, 2, ts_far)])
        cfg = WalkConfig(bias=bias, max_walk_length=2, temperature=0.01)
        corpus = TemporalWalkEngine(graph).run_from_edges(
            cfg, num_walks=500, seed=33
        )
        assert np.all(corpus.start_nodes == 0)


class TestEmbeddingRegressions:
    def test_batched_updates_do_not_explode_on_hubs(self):
        """Bug: naive scatter-add accumulation of same-batch gradients on
        hub rows diverged to ~1e29 on heavy-tailed graphs; the default
        'capped' combining bounds per-row movement."""
        from repro.embedding import BatchedSgnsTrainer, SgnsConfig

        edges = generators.ia_email_like(scale=0.005, seed=1)
        graph = TemporalGraph.from_edge_list(edges.with_reverse_edges())
        corpus = TemporalWalkEngine(graph).run(WalkConfig(), seed=2)
        trainer = BatchedSgnsTrainer(SgnsConfig(dim=8, epochs=2),
                                     batch_sentences=1024)
        model = trainer.train(corpus, graph.num_nodes, seed=3)
        assert np.abs(model.w_in).max() < 100.0

    def test_mean_combining_documented_as_starving(self):
        """Bug (of the first fix): scatter-mean was unconditionally
        stable but froze training — loss stuck at the (1+K)ln2 init.
        Kept as a mode; this pins the behaviour the default avoids."""
        from repro.embedding import BatchedSgnsTrainer, SgnsConfig

        edges = generators.ia_email_like(scale=0.005, seed=1)
        graph = TemporalGraph.from_edge_list(edges.with_reverse_edges())
        corpus = TemporalWalkEngine(graph).run(WalkConfig(), seed=2)

        def final_loss(mode):
            trainer = BatchedSgnsTrainer(
                SgnsConfig(dim=8, epochs=2, update_mode=mode), 1024)
            trainer.train(corpus, graph.num_nodes, seed=3)
            return trainer.last_stats.losses[-1]

        assert final_loss("capped") < final_loss("mean") - 0.3


class TestDataPrepRegressions:
    def test_split_rounding_is_exact_when_fractions_cover(self):
        """Bug: 60/20/20 rounding could demand more train+valid edges
        than the early partition held (7-edge graphs), or drop an edge.
        Fix: remainder absorption when the fractions sum to 1."""
        from repro.tasks.splits import temporal_edge_split

        for n in range(3, 30):
            rng = np.random.default_rng(n)
            edges = TemporalEdgeList(
                rng.integers(0, 5, n), rng.integers(0, 5, n), rng.random(n),
                num_nodes=5,
            )
            splits = temporal_edge_split(edges, seed=n)
            assert splits.total == n

    def test_classifier_features_standardized(self):
        """Bug: unscaled embedding features made the small FNNs collapse
        onto the majority class (accuracy cliffs at exactly the class
        prior).  Fix: train-fit standardization in every task."""
        from repro.embedding import NodeEmbeddings
        from repro.tasks import NodeClassificationTask
        from repro.tasks.node_classification import NodeClassificationConfig
        from repro.tasks.training import TrainSettings

        rng = np.random.default_rng(5)
        labels = np.repeat([0, 1], 100)
        # Perfectly separable but tiny-scale features.
        matrix = (labels[:, None] + rng.normal(0, 0.1, (200, 4))) * 1e-4
        result = NodeClassificationTask(NodeClassificationConfig(
            training=TrainSettings(epochs=20, learning_rate=0.05)
        )).run(NodeEmbeddings(matrix), labels, seed=6)
        assert result.accuracy > 0.9


class TestModelRegressions:
    def test_w2v_gpu_batching_speedup_saturates(self):
        """Bug: the occupancy-division cost model let batching speedup
        grow linearly without bound (13000x at batch 16k).  Fix:
        additive per-pair device costs; amortization saturates."""
        from repro.hwmodel import Word2vecGpuModel

        model = Word2vecGpuModel(num_sentences=100_000,
                                 pairs_per_sentence=10)
        speedups = model.batching_speedups([4096, 16384])
        assert speedups[16384] < 1000
        assert speedups[16384] < 2 * speedups[4096]

    def test_oversized_batch_not_penalized(self):
        """Bug: a modeled batch larger than the corpus transferred
        phantom sentences, making batch=16k slower than batch=4k on a
        3k-sentence corpus."""
        from repro.hwmodel import Word2vecGpuModel

        model = Word2vecGpuModel(num_sentences=3000, pairs_per_sentence=10)
        assert model.batched_time(100_000) <= model.batched_time(3000) * 1.001

    def test_streaming_trace_has_spatial_reuse(self):
        """Bug: the GEMM trace emitted one address per cache line, so
        "streaming" measured 0% hit rate; real dense kernels touch every
        element and hit 7/8 in 64-byte lines."""
        from repro.hwmodel.cache import CacheConfig, CacheSim, streaming_trace

        trace = streaming_trace(64 * 1024, element_bytes=8, passes=1)
        cache = CacheSim(CacheConfig(size_bytes=4096, line_bytes=64, ways=4))
        cache.access_many(trace)
        assert cache.hit_rate > 0.8


class TestSgnsScheduleRegressions:
    def test_lr_schedule_advances_past_subsampled_sentences(self):
        """Bug: ``seen`` only advanced for sentences that survived
        subsampling while ``total_sentences`` counted all of them, so
        under aggressive subsampling the linear decay stalled near the
        keep rate and the effective LR stayed biased high.  Fix: every
        visited sentence advances the schedule."""
        from repro.embedding.trainer import SequentialSgnsTrainer, SgnsConfig
        from repro.graph import generators
        from repro.graph.csr import TemporalGraph

        recorded = []

        class Probe(SequentialSgnsTrainer):
            def _lr(self, seen, total):
                recorded.append((seen, total))
                return super()._lr(seen, total)

        edges = generators.ia_email_like(scale=0.003, seed=11)
        graph = TemporalGraph.from_edge_list(edges.with_reverse_edges())
        corpus = TemporalWalkEngine(graph).run(
            WalkConfig(num_walks_per_node=2, max_walk_length=6), seed=3
        )
        trainer = Probe(
            SgnsConfig(dim=4, epochs=2, subsample_threshold=1e-9)
        )
        trainer.train(corpus, graph.num_nodes, seed=5)
        # Aggressive subsampling drops most sentences; the schedule must
        # still sweep 0 .. total-1 exactly once per visited sentence.
        assert trainer.last_stats.sentences < len(recorded)
        seens = [s for s, _ in recorded]
        total = recorded[0][1]
        assert seens == list(range(total))

    def test_mean_loss_is_per_pair_not_per_update(self):
        """Bug: ``mean_loss`` averaged per-update batch means, so a
        2-pair sentence weighed as much as a 14-pair one and the number
        was incomparable across batch sizes.  Fix: pair-weighted mean."""
        from repro.embedding.trainer import SequentialSgnsTrainer, SgnsConfig
        from repro.walk.corpus import PAD, WalkCorpus

        matrix = np.array([[0, 1, 2, 3, 4],
                           [1, 2, PAD, PAD, PAD]], dtype=np.int64)
        corpus = WalkCorpus(matrix, np.array([5, 2], dtype=np.int64))
        trainer = SequentialSgnsTrainer(SgnsConfig(
            dim=4, epochs=1, window=2, dynamic_window=False,
            subsample_threshold=None,
        ))
        trainer.train(corpus, 5, seed=0)
        stats = trainer.last_stats
        # window=2, no dynamic shrink: the length-5 sentence yields 14
        # pairs, the length-2 sentence 2 pairs.
        assert stats.pairs_trained == 16
        assert len(stats.losses) == 2
        weighted = (stats.losses[0] * 14 + stats.losses[1] * 2) / 16
        assert stats.mean_loss == pytest.approx(weighted, rel=1e-12)
        unweighted = sum(stats.losses) / 2
        assert stats.mean_loss != pytest.approx(unweighted, rel=1e-6)


class TestStratifiedSplitRegressions:
    def test_tiny_classes_always_reach_train(self):
        """Bug: ``n_train = int(round(f * n))`` rounded to 0 for
        singleton classes (and ``n_valid`` could swallow the rest), so
        rare labels appeared *only* in test and the classifier could
        never learn them.  Fix: train gets at least one member of every
        class; test gets one from classes of >= 2; valid one from
        classes of >= 3 (when requested)."""
        from repro.tasks.splits import stratified_node_split

        labels = np.array([0] * 10 + [1] + [2] * 2 + [3] * 3)
        splits = stratified_node_split(labels, 0.4, 0.2, seed=0)
        train_classes = set(labels[splits.train])
        test_classes = set(labels[splits.test])
        valid_classes = set(labels[splits.valid])
        assert train_classes == {0, 1, 2, 3}
        assert {0, 2, 3} <= test_classes
        assert 1 not in test_classes and 1 not in valid_classes
        assert {0, 3} <= valid_classes

    def test_singleton_class_never_only_in_test(self):
        """The concrete pre-fix failure: label 1 has one node and
        train_fraction * 1 rounds to 0, so it landed in test alone."""
        from repro.tasks.splits import stratified_node_split

        labels = np.array([0] * 20 + [1])
        for seed in range(5):
            splits = stratified_node_split(labels, 0.4, 0.2, seed=seed)
            assert 1 in set(labels[splits.train])


class TestServingIndexRegressions:
    def test_cosine_denormal_norm_product_cannot_hijack_ranking(self):
        """Bug: cosine scoring guarded *zero* norms but divided by the
        raw product ``row_norm * query_norm``.  For rows of magnitude
        ~1e-162 each factor survives the zero check, yet the product
        underflows into the denormal range where the division returns
        garbage: two effectively-zero rows 45 degrees apart scored
        cosine 1.0 and outranked a genuinely aligned normal-magnitude
        row.  Fix: clamp the denominator to the smallest normal float,
        which deterministically sends effectively-zero rows to ~0
        similarity — the same convention exactly-zero rows already get.
        """
        from repro.serving import EmbeddingStore, RecommendationIndex

        tiny = 2.3e-162  # norm survives, but a product of two underflows
        matrix = np.array([
            [1.0, 1.0],    # 0: genuinely aligned with the query
            [tiny, tiny],  # 1: the query - an effectively-zero row
            [tiny, 0.0],   # 2: effectively zero, 45 degrees off
            [0.0, 0.0],    # 3: exactly zero
            [1.0, 0.0],    # 4: normal magnitude, 45 degrees off
        ])
        store = EmbeddingStore()
        store.publish(matrix, generation=0)
        index = RecommendationIndex(store, cache_size=0, metric="cosine")
        ids, scores = index.top_k(1, 4)
        assert np.all(np.isfinite(scores))
        # Pre-fix order was [0, 2, 4, 3]: row 2 scored 1.0 and beat the
        # genuinely similar row 4 (0.73).
        np.testing.assert_array_equal(ids, [0, 4, 2, 3])
        assert scores[ids == 2][0] <= 1e-10

    def test_block_topk_breaks_ties_by_lower_id(self):
        """Bug: per-block selection used ``argpartition``, which keeps
        an *arbitrary* subset of boundary ties — on duplicate-heavy
        matrices the returned ids depended on block size and violated
        the documented "ties broken by lower id" order.  Fix: threshold
        + cumulative-count selection admits exactly the lowest-id ties.
        """
        from repro.serving import EmbeddingStore, RecommendationIndex

        matrix = np.tile(np.array([[1.0, -2.0, 0.5]]), (50, 1))
        store = EmbeddingStore()
        store.publish(matrix, generation=0)
        expected = np.array([0, 1, 2, 3, 4])
        for block_size in (3, 7, 50):
            index = RecommendationIndex(store, cache_size=0,
                                        block_size=block_size)
            ids, scores = index.top_k(10, 5)
            np.testing.assert_array_equal(ids, expected)
            np.testing.assert_allclose(scores, 5.25)
