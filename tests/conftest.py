"""Shared fixtures: small deterministic graphs, corpora and embeddings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import SgnsConfig, train_embeddings
from repro.graph import TemporalGraph, generators
from repro.graph.edges import TemporalEdgeList
from repro.walk import TemporalWalkEngine, WalkConfig


@pytest.fixture()
def tiny_edges() -> TemporalEdgeList:
    """Hand-built 5-node temporal graph with known structure.

    Node 0 fans out over time; 1-2-3 form a temporally valid chain;
    node 4 is a sink (no out-edges); (0, 1) is a multi-edge.
    """
    rows = [
        (0, 1, 0.1),
        (0, 1, 0.5),   # multi-edge, later interaction
        (0, 2, 0.2),
        (0, 3, 0.9),
        (1, 2, 0.3),
        (2, 3, 0.4),
        (3, 4, 0.8),
        (1, 4, 0.05),  # early edge: unreachable from (0,1,0.1) walks
    ]
    return TemporalEdgeList.from_edges(rows, num_nodes=5)


@pytest.fixture()
def tiny_graph(tiny_edges) -> TemporalGraph:
    return TemporalGraph.from_edge_list(tiny_edges)


@pytest.fixture(scope="session")
def email_edges() -> TemporalEdgeList:
    """Small email-shaped interaction graph (heavy-tailed, bursty)."""
    return generators.ia_email_like(scale=0.003, seed=11)


@pytest.fixture(scope="session")
def email_graph(email_edges) -> TemporalGraph:
    return TemporalGraph.from_edge_list(email_edges.with_reverse_edges())


@pytest.fixture(scope="session")
def email_corpus(email_graph):
    engine = TemporalWalkEngine(email_graph)
    corpus = engine.run(WalkConfig(num_walks_per_node=4, max_walk_length=6),
                        seed=12)
    return corpus


@pytest.fixture(scope="session")
def email_walk_stats(email_graph):
    engine = TemporalWalkEngine(email_graph)
    engine.run(WalkConfig(num_walks_per_node=4, max_walk_length=6), seed=12)
    return engine.last_stats


@pytest.fixture(scope="session")
def email_embeddings(email_corpus, email_graph):
    embeddings, _stats = train_embeddings(
        email_corpus,
        email_graph.num_nodes,
        config=SgnsConfig(dim=8, epochs=2),
        batch_sentences=256,
        seed=13,
    )
    return embeddings


@pytest.fixture(scope="session")
def sbm_dataset():
    """Small labeled 3-community temporal SBM."""
    return generators.temporal_sbm(
        [60, 50, 40], intra_degree=6.0, inter_degree=1.0, seed=21
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
