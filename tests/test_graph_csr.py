"""Unit tests for the CSR temporal graph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import TemporalGraph
from repro.graph.edges import TemporalEdgeList


class TestConstruction:
    def test_shape(self, tiny_graph):
        assert tiny_graph.num_nodes == 5
        assert tiny_graph.num_edges == 8

    def test_adjacency_time_sorted_per_source(self, tiny_graph):
        for v in range(tiny_graph.num_nodes):
            _, ts = tiny_graph.neighbors(v)
            assert np.all(np.diff(ts) >= 0)

    def test_multi_edges_preserved(self, tiny_graph):
        dsts, ts = tiny_graph.neighbors(0)
        pairs = list(zip(dsts.tolist(), ts.tolist()))
        assert (1, 0.1) in pairs and (1, 0.5) in pairs

    def test_num_nodes_override(self, tiny_edges):
        g = TemporalGraph.from_edge_list(tiny_edges, num_nodes=10)
        assert g.num_nodes == 10
        assert g.out_degree(9) == 0

    def test_num_nodes_too_small_rejected(self, tiny_edges):
        with pytest.raises(GraphError):
            TemporalGraph.from_edge_list(tiny_edges, num_nodes=2)

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            TemporalGraph(np.array([1, 2]), np.array([0]), np.array([0.1]))

    def test_validation_rejects_unsorted_adjacency(self):
        indptr = np.array([0, 2])
        dst = np.array([0, 0])
        ts = np.array([0.5, 0.1])
        with pytest.raises(GraphError, match="not time-sorted"):
            TemporalGraph(indptr, dst, ts)

    def test_validation_rejects_out_of_range_dst(self):
        with pytest.raises(GraphError, match="out-of-range"):
            TemporalGraph(np.array([0, 1]), np.array([5]), np.array([0.1]))

    def test_empty_graph(self):
        g = TemporalGraph.from_edge_list(TemporalEdgeList([], [], []))
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0


class TestDegrees:
    def test_out_degree_scalar(self, tiny_graph):
        assert tiny_graph.out_degree(0) == 4
        assert tiny_graph.out_degree(4) == 0

    def test_out_degree_array(self, tiny_graph):
        deg = tiny_graph.out_degree(np.array([0, 4]))
        assert deg.tolist() == [4, 0]

    def test_out_degrees_sum_to_edges(self, tiny_graph):
        assert tiny_graph.out_degrees().sum() == tiny_graph.num_edges

    def test_max_degree(self, tiny_graph):
        assert tiny_graph.max_degree() == 4


class TestTemporalQueries:
    def test_temporal_neighbors_strict(self, tiny_graph):
        dsts, ts = tiny_graph.temporal_neighbors(0, 0.2)
        assert np.all(ts > 0.2)
        assert set(dsts.tolist()) == {1, 3}

    def test_temporal_neighbors_allow_equal(self, tiny_graph):
        dsts, ts = tiny_graph.temporal_neighbors(0, 0.2, allow_equal=True)
        assert np.all(ts >= 0.2)
        assert 2 in dsts.tolist()

    def test_temporal_neighbors_exhausted(self, tiny_graph):
        dsts, _ = tiny_graph.temporal_neighbors(0, 1.0)
        assert len(dsts) == 0

    def test_temporal_neighbors_minus_inf_sees_all(self, tiny_graph):
        dsts, _ = tiny_graph.temporal_neighbors(0, -np.inf)
        assert len(dsts) == tiny_graph.out_degree(0)

    def test_has_temporal_neighbor(self, tiny_graph):
        assert tiny_graph.has_temporal_neighbor(0, 0.5)
        assert not tiny_graph.has_temporal_neighbor(0, 0.9)
        assert not tiny_graph.has_temporal_neighbor(4, -np.inf)

    def test_range_matches_neighbors(self, tiny_graph):
        lo, hi = tiny_graph.temporal_neighbor_range(0, 0.15)
        dsts, _ = tiny_graph.temporal_neighbors(0, 0.15)
        assert hi - lo == len(dsts)


class TestConversions:
    def test_edge_list_round_trip_preserves_multiset(self, tiny_edges):
        g = TemporalGraph.from_edge_list(tiny_edges)
        back = g.to_edge_list()
        original = sorted(
            zip(tiny_edges.src, tiny_edges.dst, tiny_edges.timestamps)
        )
        returned = sorted(zip(back.src, back.dst, back.timestamps))
        assert original == returned

    def test_edge_key_set(self, tiny_graph, tiny_edges):
        assert tiny_graph.edge_key_set() == tiny_edges.edge_key_set()

    def test_time_span(self, tiny_graph, tiny_edges):
        assert tiny_graph.time_span() == pytest.approx(tiny_edges.time_span())

    def test_repr(self, tiny_graph):
        assert "num_nodes=5" in repr(tiny_graph)
