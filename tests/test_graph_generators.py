"""Unit tests for synthetic graph generators (Table II stand-ins)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import TemporalGraph, compute_stats, generators
from repro.graph.io import LabeledTemporalDataset
from repro.graph.stats import gini


class TestErdosRenyi:
    def test_shape(self):
        edges = generators.erdos_renyi_temporal(100, 500, seed=1)
        assert edges.num_nodes == 100
        assert len(edges) == 500

    def test_deterministic_by_seed(self):
        a = generators.erdos_renyi_temporal(50, 200, seed=3)
        b = generators.erdos_renyi_temporal(50, 200, seed=3)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.timestamps, b.timestamps)

    def test_seeds_differ(self):
        a = generators.erdos_renyi_temporal(50, 200, seed=3)
        b = generators.erdos_renyi_temporal(50, 200, seed=4)
        assert not np.array_equal(a.src, b.src)

    def test_no_self_loops_by_default(self):
        edges = generators.erdos_renyi_temporal(20, 500, seed=5)
        assert np.all(edges.src != edges.dst)

    def test_timestamps_in_unit_range(self):
        edges = generators.erdos_renyi_temporal(20, 200, seed=6)
        assert edges.timestamps.min() >= 0.0
        assert edges.timestamps.max() <= 1.0

    def test_growth_concentrates_late(self):
        uniform = generators.erdos_renyi_temporal(50, 5000, seed=7, growth=1.0)
        late = generators.erdos_renyi_temporal(50, 5000, seed=7, growth=3.0)
        assert late.timestamps.mean() > uniform.timestamps.mean() + 0.1

    def test_low_degree_skew(self):
        edges = generators.erdos_renyi_temporal(500, 5000, seed=8)
        g = TemporalGraph.from_edge_list(edges)
        assert gini(g.out_degrees()) < 0.4

    def test_invalid_num_nodes(self):
        with pytest.raises(GraphError):
            generators.erdos_renyi_temporal(0, 10)


class TestActivityDriven:
    def test_heavy_tailed_degrees(self):
        edges = generators.activity_driven_temporal(2000, 20000, seed=1)
        g = TemporalGraph.from_edge_list(edges)
        assert gini(g.out_degrees()) > 0.5

    def test_compact_removes_unused_ids(self):
        edges = generators.activity_driven_temporal(
            5000, 1000, seed=2, compact=True
        )
        used = set(edges.src.tolist()) | set(edges.dst.tolist())
        assert used == set(range(edges.num_nodes))

    def test_no_compact_keeps_requested_nodes(self):
        edges = generators.activity_driven_temporal(
            5000, 1000, seed=2, compact=False
        )
        assert edges.num_nodes == 5000

    def test_no_self_loops(self):
        edges = generators.activity_driven_temporal(100, 5000, seed=3)
        assert np.all(edges.src != edges.dst)

    def test_burstiness_repeats_sources(self):
        calm = generators.activity_driven_temporal(
            500, 5000, seed=4, burstiness=0.0
        )
        bursty = generators.activity_driven_temporal(
            500, 5000, seed=4, burstiness=0.5
        )

        def same_src_fraction(e):
            return (e.src[1:] == e.src[:-1]).mean()

        assert same_src_fraction(bursty) > same_src_fraction(calm) + 0.2

    def test_burstiness_raises_node_burstiness(self):
        from repro.graph import TemporalGraph
        from repro.graph.temporal_stats import node_inter_event_burstiness

        def mean_burstiness(b):
            edges = generators.activity_driven_temporal(
                1500, 15000, seed=5, burstiness=b
            )
            graph = TemporalGraph.from_edge_list(edges)
            return node_inter_event_burstiness(graph).mean()

        assert mean_burstiness(0.6) > mean_burstiness(0.0) + 0.2

    def test_invalid_burstiness(self):
        with pytest.raises(GraphError):
            generators.activity_driven_temporal(10, 10, burstiness=1.0)

    def test_exact_edge_count_with_bursts(self):
        edges = generators.activity_driven_temporal(
            200, 3333, seed=6, burstiness=0.5
        )
        assert len(edges) == 3333

    def test_too_few_nodes_rejected(self):
        with pytest.raises(GraphError):
            generators.activity_driven_temporal(1, 10)


class TestTemporalSbm:
    def test_labels_match_blocks(self):
        ds = generators.temporal_sbm([30, 20], 5.0, 1.0, seed=1)
        assert np.all(ds.labels[:30] == 0)
        assert np.all(ds.labels[30:] == 1)

    def test_assortative_structure(self):
        ds = generators.temporal_sbm([100, 100], 8.0, 1.0, seed=2)
        labels = ds.labels
        same = labels[ds.edges.src] == labels[ds.edges.dst]
        assert same.mean() > 0.7

    def test_no_self_loops(self):
        ds = generators.temporal_sbm([50, 50], 4.0, 2.0, seed=3)
        assert np.all(ds.edges.src != ds.edges.dst)

    def test_empty_blocks_rejected(self):
        with pytest.raises(GraphError):
            generators.temporal_sbm([], 1.0, 1.0)


class TestDatasetFactories:
    @pytest.mark.parametrize("name", ["ia-email", "wiki-talk", "stackoverflow"])
    def test_link_prediction_shapes(self, name):
        edges = generators.dataset_by_name(name, scale=0.002, seed=1)
        assert len(edges) > 100
        g = TemporalGraph.from_edge_list(edges)
        # Interaction networks are hub-dominated.
        assert gini(g.out_degrees()) > 0.4

    @pytest.mark.parametrize("name,classes", [
        ("dblp3", 3), ("dblp5", 5), ("brain", 10),
    ])
    def test_node_classification_shapes(self, name, classes):
        ds = generators.dataset_by_name(name, scale=0.1, seed=2)
        assert isinstance(ds, LabeledTemporalDataset)
        assert ds.num_classes == classes
        assert len(ds.labels) == ds.edges.num_nodes

    def test_unknown_name_rejected(self):
        with pytest.raises(GraphError, match="unknown dataset"):
            generators.dataset_by_name("not-a-dataset")

    def test_scale_controls_size(self):
        small = generators.ia_email_like(scale=0.001, seed=1)
        large = generators.ia_email_like(scale=0.005, seed=1)
        assert len(large) > 3 * len(small)

    def test_table2_inventory_complete(self):
        assert set(generators.TABLE2_REAL_SIZES) == {
            "ia-email", "wiki-talk", "stackoverflow",
            "dblp3", "dblp5", "brain",
        }

    def test_brain_is_dense(self):
        ds = generators.brain_like(scale=0.1, seed=3)
        mean_degree = len(ds.edges) / ds.edges.num_nodes
        assert mean_degree > 50
