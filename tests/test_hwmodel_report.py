"""Unit tests for the one-call pipeline characterization."""

import numpy as np
import pytest

from repro.embedding import SgnsConfig
from repro.embedding.trainer import TrainerStats
from repro.hwmodel.report import characterize_pipeline
from repro.walk import TemporalWalkEngine, WalkConfig


@pytest.fixture(scope="module")
def characterization(email_graph):
    engine = TemporalWalkEngine(email_graph)
    engine.run(WalkConfig(num_walks_per_node=4, max_walk_length=6), seed=1)
    stats = TrainerStats(pairs_trained=50_000, updates=40)
    return characterize_pipeline(
        walk_stats=engine.last_stats,
        trainer_stats=stats,
        sgns_config=SgnsConfig(dim=8),
        graph=email_graph,
        num_train_samples=100_000,
        num_test_samples=10_000,
    )


class TestCharacterizePipeline:
    def test_all_four_kernels_present(self, characterization):
        expected = {"rwalk", "word2vec", "train", "test"}
        assert set(characterization.instruction_mixes) == expected
        assert set(characterization.gpu_reports) == expected

    def test_summary_rows_structure(self, characterization):
        rows = characterization.summary_rows()
        assert len(rows) == 4
        for row in rows:
            assert {"kernel", "compute", "memory", "dominant stall",
                    "sm util", "flops/byte"} <= set(row)

    def test_dominant_stalls_match_fig11(self, characterization):
        reports = characterization.gpu_reports
        assert reports["rwalk"].stalls.dominant() == "compute_dependency"
        assert reports["word2vec"].stalls.dominant() == "memory_scoreboard"
        assert reports["train"].stalls.dominant() == "imc_miss"

    def test_roofline_points_cover_kernels(self, characterization):
        names = [p.name for p in characterization.roofline_points]
        assert names == ["rwalk", "word2vec", "train", "test"]
        for point in characterization.roofline_points:
            assert characterization.roofline.classify(point) in (
                "memory-bound", "compute-bound")

    def test_scaling_curve_present(self, characterization):
        assert characterization.walk_scaling[1] == pytest.approx(1.0,
                                                                 rel=0.05)
        assert characterization.walk_scaling[8] > 3.0

    def test_default_classifier_dims_follow_embedding(self, email_graph):
        engine = TemporalWalkEngine(email_graph)
        engine.run(WalkConfig(num_walks_per_node=2, max_walk_length=4),
                   seed=2)
        char = characterize_pipeline(
            walk_stats=engine.last_stats,
            trainer_stats=TrainerStats(pairs_trained=1000, updates=2),
            sgns_config=SgnsConfig(dim=16),
            graph=email_graph,
            num_train_samples=1000,
            num_test_samples=100,
        )
        # Feature dim = 2d = 32 drives the train profile notes.
        assert char.instruction_mixes["train"].mix.total > 0
