"""Child process for the WAL crash-recovery tests.

Appends a deterministic sequence of edge batches to a WAL, recording an
ack line (fsync'd) after every *acknowledged* append, while a
``REPRO_FAULTS`` crash spec kills the process mid-write.  The parent
test asserts that ``replay()`` reconstructs exactly the acknowledged
prefix, bit-identically.

Not a test module (no ``test_`` prefix); invoked via subprocess by
``test_stream_recovery.py``.

Usage::

    python stream_crash_child.py WAL_DIR ACK_FILE MODE \
        NUM_BATCHES BATCH_SIZE SEGMENT_MAX_BYTES

``MODE`` is ``wal`` (append directly to a WriteAheadLog) or
``controller`` (stream the batches through an IngestQueue +
StreamController).  The fault plan comes from the environment.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro.faults import FaultPlan
from repro.graph.dynamic import DynamicTemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.stream import IngestQueue, StreamController, WriteAheadLog

SEED = 7
NUM_NODES = 48


def generate_batches(num_batches: int, batch_size: int):
    """The deterministic batch tape shared with the parent test."""
    rng = np.random.default_rng(SEED)
    return [
        TemporalEdgeList(
            rng.integers(0, NUM_NODES, size=batch_size),
            rng.integers(0, NUM_NODES, size=batch_size),
            rng.random(batch_size),
            num_nodes=NUM_NODES,
        )
        for _ in range(num_batches)
    ]


def _ack(path: str, batch_index: int, edges: int) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{batch_index}:{edges}\n")
        handle.flush()
        os.fsync(handle.fileno())


def main(argv: list[str]) -> int:
    wal_dir, ack_file, mode = argv[1], argv[2], argv[3]
    num_batches, batch_size = int(argv[4]), int(argv[5])
    segment_max_bytes = int(argv[6])
    plan = FaultPlan.from_env()
    batches = generate_batches(num_batches, batch_size)

    if mode == "wal":
        wal = WriteAheadLog(wal_dir, segment_max_bytes=segment_max_bytes,
                            fault_plan=plan)
        for index, batch in enumerate(batches):
            wal.append(batch)  # a crash fault never returns from here
            _ack(ack_file, index, len(batch))
        wal.close()
    elif mode == "controller":
        wal = WriteAheadLog(wal_dir, segment_max_bytes=segment_max_bytes)
        queue = IngestQueue(max_edges=num_batches * batch_size + 1)
        controller = StreamController(DynamicTemporalGraph(), queue,
                                      wal=wal, fault_plan=plan)
        controller.start()
        for batch in batches:
            queue.put(batch)
        controller.stop()  # drains; the crash fires on the victim batch
    else:
        raise SystemExit(f"unknown mode {mode!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
