"""Unit tests for alias sampling and the negative sampler."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.embedding.negative import AliasTable, NegativeSampler
from repro.embedding.vocab import Vocabulary


class TestAliasTable:
    def test_reconstructed_probabilities_exact(self):
        weights = np.array([5.0, 1.0, 3.0, 1.0])
        table = AliasTable(weights)
        expected = weights / weights.sum()
        assert np.allclose(table.probabilities(), expected)

    def test_uniform_weights(self):
        table = AliasTable(np.ones(7))
        assert np.allclose(table.probabilities(), 1 / 7)

    def test_zero_weight_entries_never_sampled(self, rng):
        table = AliasTable(np.array([1.0, 0.0, 1.0]))
        draws = table.sample(5000, rng)
        assert 1 not in draws

    def test_empirical_distribution(self, rng):
        weights = np.array([0.7, 0.2, 0.1])
        table = AliasTable(weights)
        draws = table.sample(20000, rng)
        freqs = np.bincount(draws, minlength=3) / len(draws)
        assert np.allclose(freqs, weights, atol=0.02)

    def test_single_entry(self, rng):
        table = AliasTable(np.array([3.0]))
        assert np.all(table.sample(10, rng) == 0)

    def test_rejects_empty(self):
        with pytest.raises(EmbeddingError):
            AliasTable(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(EmbeddingError):
            AliasTable(np.array([1.0, -0.5]))

    def test_rejects_all_zero(self):
        with pytest.raises(EmbeddingError):
            AliasTable(np.zeros(3))

    def test_deterministic_by_seed(self):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(table.sample(100, 42), table.sample(100, 42))


class TestNegativeSampler:
    def test_absent_nodes_never_drawn(self, rng):
        vocab = Vocabulary(np.array([10, 0, 5, 0]))
        sampler = NegativeSampler(vocab)
        draws = sampler.sample(5000, rng)
        assert set(np.unique(draws)) <= {0, 2}

    def test_matrix_shape(self, rng):
        vocab = Vocabulary(np.array([10, 5, 5]))
        sampler = NegativeSampler(vocab)
        matrix = sampler.sample_matrix(7, 3, rng)
        assert matrix.shape == (7, 3)

    def test_empty_corpus_rejected(self):
        with pytest.raises(EmbeddingError, match="empty"):
            NegativeSampler(Vocabulary(np.zeros(4, dtype=int)))

    def test_smoothing_flattens_distribution(self, rng):
        counts = np.array([1000, 10])
        smoothed = NegativeSampler(Vocabulary(counts), power=0.75)
        draws = smoothed.sample(20000, rng)
        freq_rare = np.mean(draws == 1)
        raw_share = 10 / 1010
        assert freq_rare > raw_share  # 0.75 power boosts rare nodes
