"""Tests for shard replication, failover, and live rebalancing
(:mod:`repro.serving.sharding`, PR 9).

The contracts pinned here, each against the single-process oracle:

- **replica failover**: with ``replication_factor=2``, killing one
  replica of *every* shard — before a query or between routing and
  reply — yields bit-identical top-k/score results with
  ``serving.shard.degraded_queries == 0``;
- **degraded-path metrics**: with no surviving sibling a mid-gather
  death is counted once as a gather drop *and* once as a degraded
  query, while a dead-then-irrelevant replica inflates neither;
- **live rebalance**: :meth:`ShardedFrontend.rebalance` migrates
  between plans under closed-loop load with zero query errors and zero
  mixed-plan responses (every response matches the oracle bit for
  bit), and publishes keep working across the flip;
- **failover bug sweep**: ``score_link`` retries the peer shard when
  the anchor dies mid-request (not just when it was dead up front);
  the router's vector LRU drops superseded-version entries at install
  time; ``close()`` stops hung workers concurrently, joins receiver
  threads, and clears the vector cache.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import ServingError
from repro.observability import Recorder, use_recorder
from repro.serving import (
    EmbeddingStore,
    RecommendationIndex,
    ShardPlan,
    ShardedFrontend,
    ShardedPublisher,
    ShardedServingConfig,
    run_load,
)
from repro.serving.sharding import _ShardDownError

pytestmark = pytest.mark.shards


def make_store(matrix: np.ndarray, generation: int = 0) -> EmbeddingStore:
    store = EmbeddingStore()
    store.publish(matrix, generation=generation)
    return store


def oracle_for(matrix: np.ndarray) -> RecommendationIndex:
    return RecommendationIndex(make_store(matrix), cache_size=0)


def sharded(plan: ShardPlan, store: EmbeddingStore,
            config: ShardedServingConfig | None = None) -> ShardedFrontend:
    frontend = ShardedFrontend(plan, config).start()
    ShardedPublisher(frontend).attach(store)
    return frontend


def einsum_score(a: np.ndarray, b: np.ndarray) -> float:
    """The worker's scoring kernel (einsum, bitwise-commutative) — the
    oracle for score_link; BLAS ``@`` can differ in the last ulp."""
    return float(np.einsum("bd,bd->b", a[None, :], b[None, :])[0])


def kill_on(client, op: str):
    """Patch ``client`` so its next ``op`` request kills the worker
    first and then issues the doomed request — the death lands
    deterministically between routing (the router picked this replica
    while it was alive) and the reply, the window an up-front-only
    liveness check misses."""
    original = client.request_async

    def dying_request(request_op, payload):
        if request_op == op:
            client.kill()
        return original(request_op, payload)

    client.request_async = dying_request
    return client


class TestReplicaFailover:
    def test_kill_one_replica_of_every_shard_bit_identical(self):
        rng = np.random.default_rng(50)
        matrix = rng.standard_normal((143, 8))
        oracle = oracle_for(matrix)
        plan = ShardPlan(3, "hash")
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                for shard in range(plan.num_shards):
                    frontend.kill_replica(shard, 0)
                assert frontend.alive_shards == 3
                assert frontend.alive_workers == 3
                for node in (0, 7, 71, 141, 142):
                    ids, scores = frontend.top_k(node, 11)
                    exp_ids, exp_scores = oracle.top_k(node, 11)
                    np.testing.assert_array_equal(ids, exp_ids)
                    np.testing.assert_array_equal(scores, exp_scores)
                src, dst = 3, 99
                assert (frontend.score_link(src, dst)
                        == einsum_score(matrix[src], matrix[dst]))
        counters = recorder.counters
        assert counters.get("serving.shard.degraded_queries", 0) == 0
        assert counters.get("serving.shard.gather_drops", 0) == 0

    def test_round_robin_spreads_reads_across_replicas(self):
        rng = np.random.default_rng(51)
        matrix = rng.standard_normal((80, 6))
        # Hash plan: query ownership alternates pseudo-randomly, so the
        # per-query vector fetch can't phase-lock the scatter's
        # round-robin cursor onto one replica.
        plan = ShardPlan(2, "hash")
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                for node in range(20):
                    frontend.top_k(node, 5)
        counters = recorder.counters
        for shard in range(2):
            for replica in range(2):
                key = f"serving.shard.{shard}.replica.{replica}.requests"
                assert counters.get(key, 0) > 0, key

    def test_mid_gather_death_fails_over_to_sibling(self):
        rng = np.random.default_rng(52)
        matrix = rng.standard_normal((90, 6))
        oracle = oracle_for(matrix)
        plan = ShardPlan(2, "range")
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                # Replica 0 of shard 1 dies after the topk scatter
                # reaches it; the router must re-issue to replica 1.
                kill_on(frontend._table.groups[1][0], "topk")
                ids, scores = frontend.top_k(0, 9)
                exp_ids, exp_scores = oracle.top_k(0, 9)
                np.testing.assert_array_equal(ids, exp_ids)
                np.testing.assert_array_equal(scores, exp_scores)
        counters = recorder.counters
        assert counters.get("serving.shard.replica.failovers", 0) >= 1
        assert counters.get("serving.shard.degraded_queries", 0) == 0
        assert counters.get("serving.shard.gather_drops", 0) == 0


class TestDegradedPathMetrics:
    def test_mid_gather_death_without_sibling_degrades_once(self):
        rng = np.random.default_rng(53)
        matrix = rng.standard_normal((120, 8))
        plan = ShardPlan(3, "range")
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix),
                         ShardedServingConfig(cache_size=0)) as frontend:
                kill_on(frontend._table.groups[1][0], "topk")
                query = 0  # owned by shard 0: the vector fetch survives
                ids, scores = frontend.top_k(query, 10)
                surviving = np.concatenate([
                    plan.owned_ids(0, 120), plan.owned_ids(2, 120),
                ])
                oracle = oracle_for(matrix[surviving])
                local_query = int(np.searchsorted(surviving, query))
                exp_local, exp_scores = oracle.top_k(local_query, 10)
                np.testing.assert_array_equal(ids, surviving[exp_local])
                np.testing.assert_array_equal(scores, exp_scores)
        counters = recorder.counters
        assert counters.get("serving.shard.gather_drops", 0) == 1
        assert counters.get("serving.shard.degraded_queries", 0) == 1

    def test_dead_but_irrelevant_replica_does_not_inflate_degraded(self):
        rng = np.random.default_rng(54)
        matrix = rng.standard_normal((100, 6))
        plan = ShardPlan(2, "hash")
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                frontend.kill_replica(0, 1)
                for node in range(15):
                    frontend.top_k(node, 5)
        counters = recorder.counters
        # Every gather still answered from all shards: the dead
        # replica's sibling covered it, so nothing degraded and
        # nothing dropped.
        assert counters.get("serving.shard.degraded_queries", 0) == 0
        assert counters.get("serving.shard.gather_drops", 0) == 0
        fanin = recorder.histograms["serving.shard.gather_fanin"]
        assert fanin.mean == 2.0


class TestScoreLinkMidRequestFailover:
    def test_anchor_death_mid_request_fails_over_to_peer_shard(self):
        rng = np.random.default_rng(55)
        matrix = rng.standard_normal((60, 4))
        plan = ShardPlan(2, "range")
        with sharded(plan, make_store(matrix)) as frontend:
            src = int(plan.owned_ids(0, 60)[0])
            dst = int(plan.owned_ids(1, 60)[0])
            # Warm the router's vector cache with src's vector so the
            # dst-anchored retry can ship it once shard 0 is gone.
            frontend.top_k(src, 3)
            kill_on(frontend._table.groups[0][0], "score")
            # Anchor (shard 0) dies between routing and reply; the old
            # code leaked _ShardDownError here instead of retrying on
            # dst's shard.
            expected = einsum_score(matrix[src], matrix[dst])
            assert frontend.score_link(src, dst) == expected

    def test_anchor_death_mid_request_fails_over_to_sibling(self):
        rng = np.random.default_rng(56)
        matrix = rng.standard_normal((60, 4))
        plan = ShardPlan(2, "range")
        config = ShardedServingConfig(replication_factor=2,
                                      vector_cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                src = int(plan.owned_ids(0, 60)[0])
                dst = int(plan.owned_ids(1, 60)[0])
                for replica in range(2):
                    kill_on(frontend._table.groups[0][replica], "score")
                # Both src-shard replicas die mid-request one after the
                # other.  The dst-anchored retries then need src's
                # vector, which is unfetchable (owning shard gone,
                # cache disabled) — every direction dead-ends, and a
                # plain ServingError (not the internal _ShardDownError)
                # must surface.
                with pytest.raises(ServingError) as excinfo:
                    frontend.score_link(src, dst)
                assert not isinstance(excinfo.value, _ShardDownError)
        assert recorder.counters.get(
            "serving.shard.replica.failovers", 0) >= 1

    def test_mid_request_death_with_replicas_is_transparent(self):
        rng = np.random.default_rng(57)
        matrix = rng.standard_normal((60, 4))
        plan = ShardPlan(2, "range")
        config = ShardedServingConfig(replication_factor=2)
        with sharded(plan, make_store(matrix), config) as frontend:
            src = int(plan.owned_ids(0, 60)[0])
            dst = int(plan.owned_ids(1, 60)[0])
            # Pre-warm the router's vector cache with src's vector,
            # then take down both anchor replicas mid-request: the
            # dst-anchored retry ships the cached src vector and the
            # caller never notices.
            frontend.top_k(src, 3)
            kill_on(frontend._table.groups[0][0], "score")
            kill_on(frontend._table.groups[0][1], "score")
            expected = einsum_score(matrix[src], matrix[dst])
            assert frontend.score_link(src, dst) == expected


class TestVectorCachePurge:
    def test_install_purges_superseded_version_entries(self):
        rng = np.random.default_rng(58)
        first = rng.standard_normal((50, 4))
        second = rng.standard_normal((50, 4))
        store = make_store(first, generation=1)
        with sharded(ShardPlan(2, "hash"), store) as frontend:
            for node in range(10):
                frontend.top_k(node, 3)
            with frontend._vector_lock:
                assert len(frontend._vector_cache) == 10
                assert {key[0] for key in frontend._vector_cache} == {1}
            store.publish(second, generation=2)
            # Version-1 entries can never be read again; they must not
            # squat in the LRU evicting hot version-2 vectors.
            with frontend._vector_lock:
                assert len(frontend._vector_cache) == 0
            for node in range(4):
                frontend.top_k(node, 3)
            with frontend._vector_lock:
                keys = set(frontend._vector_cache)
            assert {key[0] for key in keys} == {2}
            assert {key[1] for key in keys} == {0, 1, 2, 3}


class TestConcurrentClose:
    def test_close_with_hung_workers_is_concurrent_and_joins_receivers(
            self):
        rng = np.random.default_rng(59)
        matrix = rng.standard_normal((60, 4))
        config = ShardedServingConfig(stop_timeout=0.5)
        frontend = sharded(ShardPlan(3, "range"), make_store(matrix),
                           config)
        clients = frontend._table.all_clients()
        # SIGSTOP leaves each worker alive but unresponsive: the stop
        # request and SIGTERM both stall, forcing the full
        # join/terminate/kill escalation per worker (SIGKILL is the
        # only signal a stopped process can't ignore).
        for client in clients:
            os.kill(client._process.pid, signal.SIGSTOP)
        start = time.monotonic()
        frontend.close()
        wall = time.monotonic() - start
        # Serial escalation would cost >= 3 x (0.5 + 1.0) s; concurrent
        # close bounds it by one worker's escalation.
        assert wall < 4.0, f"close took {wall:.2f}s — stops ran serially?"
        for client in clients:
            assert not client.alive
            assert not client._receiver.is_alive()
        with frontend._vector_lock:
            assert len(frontend._vector_cache) == 0
        frontend.close()  # idempotent

    def test_close_is_idempotent_and_cheap_when_healthy(self):
        rng = np.random.default_rng(60)
        frontend = sharded(ShardPlan(2, "hash"),
                           make_store(rng.standard_normal((30, 4))))
        start = time.monotonic()
        frontend.close()
        assert time.monotonic() - start < 3.0
        frontend.close()


class TestRebalance:
    def test_rebalance_preserves_oracle_under_load(self):
        rng = np.random.default_rng(61)
        matrix = rng.standard_normal((240, 8))
        oracle = oracle_for(matrix)
        expected = {node: oracle.top_k(node, 8) for node in range(240)}
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), make_store(matrix),
                         ShardedServingConfig(cache_size=0)) as frontend:
                stop = threading.Event()
                failures: list = []

                def reader() -> None:
                    local = np.random.default_rng(
                        threading.get_ident() % 2**32)
                    while not stop.is_set():
                        node = int(local.integers(0, 240))
                        try:
                            ids, scores = frontend.top_k(node, 8)
                        except ServingError as exc:
                            failures.append((node, "error", str(exc)))
                            continue
                        exp_ids, exp_scores = expected[node]
                        if not (np.array_equal(ids, exp_ids)
                                and np.array_equal(scores, exp_scores)):
                            failures.append((node, "mismatch", ids))

                threads = [threading.Thread(target=reader)
                           for _ in range(3)]
                for thread in threads:
                    thread.start()
                try:
                    report = frontend.rebalance(ShardPlan(3, "range"))
                    assert frontend.plan.num_shards == 3
                    second = frontend.rebalance(ShardPlan(2, "range"))
                finally:
                    stop.set()
                    for thread in threads:
                        thread.join()
                # Zero query errors and zero mixed-plan responses: every
                # answer matched the oracle bit for bit across two plan
                # flips under concurrent load.
                assert not failures, failures[:3]
                assert report.seconds > 0
                assert report.old_plan.num_shards == 2
                assert report.new_plan.num_shards == 3
                assert second.drained
                # The new plan serves queries with full fan-in.
                ids, scores = frontend.top_k(5, 8)
                np.testing.assert_array_equal(ids, expected[5][0])
        counters = recorder.counters
        assert counters.get("serving.shard.rebalance.count", 0) == 2
        assert counters.get("serving.shard.degraded_queries", 0) == 0
        assert "serving.shard.rebalance.seconds" in recorder.histograms

    def test_publish_after_rebalance(self):
        rng = np.random.default_rng(62)
        first = rng.standard_normal((60, 4))
        second = rng.standard_normal((80, 4))
        store = make_store(first, generation=1)
        with sharded(ShardPlan(2, "hash"), store) as frontend:
            frontend.rebalance(ShardPlan(3, "hash"))
            store.publish(second, generation=2)
            assert frontend.num_nodes == 80
            oracle = oracle_for(second)
            ids, scores = frontend.top_k(17, 9)
            exp_ids, exp_scores = oracle.top_k(17, 9)
            np.testing.assert_array_equal(ids, exp_ids)
            np.testing.assert_array_equal(scores, exp_scores)

    def test_rebalance_before_first_publish(self):
        with ShardedFrontend(ShardPlan(2, "hash")).start() as frontend:
            report = frontend.rebalance(ShardPlan(3, "range"))
            assert report.install_seconds == 0.0
            publisher = ShardedPublisher(frontend)
            publisher.publish(np.eye(6), generation=0)
            ids, _scores = frontend.top_k(0, 3)
            assert len(ids) == 3

    def test_rebalance_with_replicas_and_strategy_change(self):
        rng = np.random.default_rng(63)
        matrix = rng.standard_normal((90, 6))
        oracle = oracle_for(matrix)
        config = ShardedServingConfig(replication_factor=2)
        with sharded(ShardPlan(3, "range"), make_store(matrix),
                     config) as frontend:
            frontend.rebalance(ShardPlan(2, "hash"))
            assert frontend.alive_workers == 4  # 2 shards x 2 replicas
            frontend.kill_replica(1, 0)
            ids, scores = frontend.top_k(42, 7)
            exp_ids, exp_scores = oracle.top_k(42, 7)
            np.testing.assert_array_equal(ids, exp_ids)
            np.testing.assert_array_equal(scores, exp_scores)

    def test_rebalance_requires_started_frontend(self):
        frontend = ShardedFrontend(ShardPlan(2, "hash"))
        with pytest.raises(ServingError):
            frontend.rebalance(ShardPlan(3, "hash"))
        with pytest.raises(ServingError):
            ShardedFrontend(ShardPlan(2, "hash")).start().rebalance(4)


class TestWorkerMetricsAggregation:
    def test_worker_metrics_merge_back_to_router(self):
        rng = np.random.default_rng(64)
        matrix = rng.standard_normal((120, 8))
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), make_store(matrix),
                         ShardedServingConfig(cache_size=0)) as frontend:
                run_load(frontend, num_requests=30, clients=2,
                         topk_fraction=1.0, k=5, seed=2)
                doc = frontend.worker_metrics()
        # The merged doc carries worker-internal counters that would
        # otherwise die with the worker processes.
        assert doc["counters"]["serving.index.gemm_rows"] > 0
        assert doc["counters"]["serving.store.publishes"] >= 2
        # ...and the ambient recorder got them under the workers prefix.
        counters = recorder.counters
        prefixed = "serving.shard.workers.serving.index.gemm_rows"
        assert counters[prefixed] == doc["counters"]["serving.index.gemm_rows"]
        assert recorder.gauges["serving.shard.workers.reporting"] == 2

    def test_worker_metrics_sum_across_replicas_and_skip_dead(self):
        rng = np.random.default_rng(65)
        matrix = rng.standard_normal((80, 6))
        config = ShardedServingConfig(replication_factor=2, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), make_store(matrix),
                         config) as frontend:
                for node in range(10):
                    frontend.top_k(node, 5)
                frontend.kill_replica(0, 0)
                doc = frontend.worker_metrics()
        # 3 of 4 workers survive; each installed the publish once.
        assert doc["counters"]["serving.store.publishes"] == 3
        assert recorder.gauges["serving.shard.workers.reporting"] == 3

    def test_histogram_merge_is_exact(self):
        from repro.observability import Histogram
        left = Histogram()
        right = Histogram()
        combined = Histogram()
        for value in (1.0, 5.0, 2.0):
            left.observe(value)
            combined.observe(value)
        for value in (9.0, 0.5):
            right.observe(value)
            combined.observe(value)
        left.merge_state(right.state())
        assert left.count == combined.count
        assert left.total == combined.total
        assert left.min == combined.min
        assert left.max == combined.max
        assert left.summary() == combined.summary()
        # Merging an empty histogram is a no-op (no inf min leakage).
        before = left.summary()
        left.merge_state(Histogram().state())
        assert left.summary() == before


class TestReplicationConfig:
    def test_config_validation(self):
        with pytest.raises(ServingError):
            ShardedServingConfig(replication_factor=0)
        with pytest.raises(ServingError):
            ShardedServingConfig(stop_timeout=0.0)
        config = ShardedServingConfig(replication_factor=3)
        assert config.replication_factor == 3

    def test_replicated_load_run_is_clean(self):
        rng = np.random.default_rng(66)
        matrix = rng.standard_normal((150, 8))
        plan = ShardPlan(2, "hash")
        config = ShardedServingConfig(replication_factor=2)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                report = run_load(frontend, num_requests=60, clients=4,
                                  topk_fraction=0.5, k=5, seed=3)
        assert report.requests == 60
        assert report.errors == 0
        counters = recorder.counters
        assert counters.get("serving.shard.degraded_queries", 0) == 0
        fanin = recorder.histograms["serving.shard.gather_fanin"]
        assert fanin.mean == 2.0


class TestDeadReplicaRotation:
    """Regression (PR 10 satellite): ``live_replicas`` must rotate over
    the *live* subset.  The old code rotated over the full group and
    filtered afterwards, so a dead replica's every pick collapsed onto
    whichever sibling followed it in the rotation — a deterministic 2:1
    load skew at R=3 — and nothing counted the skipped picks."""

    def test_rotation_balances_around_dead_replica(self):
        rng = np.random.default_rng(67)
        matrix = rng.standard_normal((90, 6))
        # Range plan so shard 0 owns [0, 45): querying only those nodes
        # keeps the anchor fetch off shard 1, whose cursor then advances
        # exactly once per query (at scatter) — the balance assertion
        # below is deterministic, not statistical.
        plan = ShardPlan(2, "range")
        config = ShardedServingConfig(replication_factor=3, cache_size=0)
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix), config) as frontend:
                frontend.kill_replica(1, 1)
                for node in range(30):
                    ids, _scores = frontend.top_k(node, 5)
                    assert len(ids) == 5
        counters = recorder.counters
        picks = [counters.get(
            f"serving.shard.1.replica.{replica}.requests", 0.0)
            for replica in range(3)]
        assert picks[1] == 0  # the dead slot never chosen
        assert picks[0] + picks[2] == 30
        # Live siblings alternate: the dead slot's share is split
        # evenly, not dumped onto its rotation successor (old behavior:
        # 10 vs 20).
        assert abs(picks[0] - picks[2]) <= 1
        assert counters["serving.shard.replica.skipped_dead"] >= 30
        assert counters.get("serving.shard.degraded_queries", 0) == 0
