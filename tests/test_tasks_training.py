"""Unit tests for the shared classifier training loop."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import BCEWithLogitsLoss, Linear, ReLU, Sequential
from repro.nn.metrics import binary_accuracy
from repro.tasks.training import TrainHistory, TrainSettings, train_classifier


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


def separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(float)
    return (x[: n // 2], y[: n // 2]), (x[n // 2:], y[n // 2:])


def evaluate(model, x, y):
    return binary_accuracy(_sigmoid(model.forward(x).reshape(-1)), y)


class TestTrainSettings:
    def test_invalid_epochs(self):
        with pytest.raises(TrainingError):
            TrainSettings(epochs=0)

    def test_invalid_batch(self):
        with pytest.raises(TrainingError):
            TrainSettings(batch_size=0)


class TestTrainClassifier:
    def test_learns_separable_data(self):
        train, valid = separable_data()
        model = Sequential(Linear(4, 8, seed=1), ReLU(), Linear(8, 1, seed=2))
        history = train_classifier(
            model, BCEWithLogitsLoss(), train, valid,
            TrainSettings(epochs=20, learning_rate=0.1),
            evaluate, seed=3,
        )
        assert history.records[-1].valid_accuracy > 0.85
        assert history.final_train_loss < history.records[0].train_loss

    def test_history_bookkeeping(self):
        train, valid = separable_data()
        model = Sequential(Linear(4, 4, seed=1), ReLU(), Linear(4, 1, seed=2))
        history = train_classifier(
            model, BCEWithLogitsLoss(), train, valid,
            TrainSettings(epochs=5, learning_rate=0.05),
            evaluate, seed=3,
        )
        assert history.epochs_run == 5
        assert history.total_seconds == pytest.approx(
            sum(r.seconds for r in history.records)
        )
        assert history.seconds_per_epoch == pytest.approx(
            history.total_seconds / 5
        )
        assert [r.epoch for r in history.records] == list(range(5))

    def test_target_accuracy_stops_early(self):
        train, valid = separable_data()
        model = Sequential(Linear(4, 8, seed=1), ReLU(), Linear(8, 1, seed=2))
        history = train_classifier(
            model, BCEWithLogitsLoss(), train, valid,
            TrainSettings(epochs=50, learning_rate=0.1,
                          target_accuracy=0.8),
            evaluate, seed=3,
        )
        assert history.stopped_early
        assert history.epochs_run < 50
        assert history.records[-1].valid_accuracy >= 0.8

    def test_unreachable_target_runs_all_epochs(self):
        train, valid = separable_data()
        model = Sequential(Linear(4, 2, seed=1), ReLU(), Linear(2, 1, seed=2))
        history = train_classifier(
            model, BCEWithLogitsLoss(), train, valid,
            TrainSettings(epochs=4, learning_rate=0.01,
                          target_accuracy=1.01),
            evaluate, seed=3,
        )
        assert not history.stopped_early
        assert history.epochs_run == 4

    def test_deterministic_by_seed(self):
        train, valid = separable_data()

        def run():
            model = Sequential(Linear(4, 4, seed=1), ReLU(),
                               Linear(4, 1, seed=2))
            return train_classifier(
                model, BCEWithLogitsLoss(), train, valid,
                TrainSettings(epochs=3, learning_rate=0.05),
                evaluate, seed=9,
            )

        a, b = run(), run()
        assert a.final_train_loss == b.final_train_loss
        assert (a.records[-1].valid_accuracy
                == b.records[-1].valid_accuracy)

    def test_train_loss_invariant_to_batch_size(self):
        # Regression: train_loss was the unweighted mean of batch
        # losses, so the smaller final batch was over-weighted and the
        # reported loss changed with batch_size.  With a vanishing
        # learning rate the weights never move, so the sample-weighted
        # epoch loss must be the full-dataset mean loss for any
        # batching.
        train, valid = separable_data()
        losses = []
        for batch_size in (32, 64, 100, 128):
            model = Sequential(Linear(4, 4, seed=1), ReLU(),
                               Linear(4, 1, seed=2))
            history = train_classifier(
                model, BCEWithLogitsLoss(), train, valid,
                TrainSettings(epochs=1, batch_size=batch_size,
                              learning_rate=1e-12, momentum=0.0),
                evaluate, seed=3,
            )
            losses.append(history.final_train_loss)
        assert np.allclose(losses, losses[0], atol=1e-9)

    def test_empty_history_defaults(self):
        history = TrainHistory()
        assert history.epochs_run == 0
        assert history.seconds_per_epoch == 0.0
        assert np.isnan(history.final_train_loss)
