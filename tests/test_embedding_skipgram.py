"""Unit tests for the SGNS model math (gradients verified numerically)."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.embedding.skipgram import SkipGramModel, generate_pairs, sigmoid


class TestSigmoid:
    def test_range_and_symmetry(self):
        x = np.linspace(-20, 20, 101)
        s = sigmoid(x)
        assert np.all((s > 0) & (s < 1))
        assert np.allclose(s + sigmoid(-x), 1.0)

    def test_extreme_values_finite(self):
        assert np.isfinite(sigmoid(np.array([-1e6, 1e6]))).all()


class TestGeneratePairs:
    def test_short_sentence_yields_nothing(self, rng):
        c, o = generate_pairs(np.array([5]), window=3, rng=rng)
        assert len(c) == 0 and len(o) == 0

    def test_fixed_window_pair_count(self, rng):
        sentence = np.arange(5)
        c, o = generate_pairs(sentence, window=2, rng=rng, dynamic_window=False)
        # Each position pairs with up to 2 on each side: 4+... total 14.
        assert len(c) == 14
        assert len(c) == len(o)

    def test_no_self_pairs(self, rng):
        c, o = generate_pairs(np.arange(6), window=3, rng=rng)
        assert np.all(c != o) or np.any(c != o)  # positions differ even if ids could repeat
        # With distinct ids, center never equals context.
        assert not np.any((c == o))

    def test_dynamic_window_produces_fewer_or_equal_pairs(self, rng):
        sentence = np.arange(8)
        fixed_c, _ = generate_pairs(sentence, 4, rng, dynamic_window=False)
        dyn_c, _ = generate_pairs(sentence, 4, rng, dynamic_window=True)
        assert len(dyn_c) <= len(fixed_c)

    def test_pairs_within_window(self, rng):
        sentence = np.arange(10)
        c, o = generate_pairs(sentence, 2, rng, dynamic_window=False)
        assert np.all(np.abs(c - o) <= 2)


def _reference_generate_pairs(sentence, window, rng, dynamic_window=True):
    """The pre-vectorization per-sentence double loop, kept as the
    equivalence oracle for the hot-path implementation."""
    n = len(sentence)
    if n < 2:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    centers: list[int] = []
    contexts: list[int] = []
    if dynamic_window:
        spans = rng.integers(1, window + 1, size=n)
    else:
        spans = np.full(n, window)
    for i in range(n):
        b = int(spans[i])
        lo = max(0, i - b)
        hi = min(n, i + b + 1)
        for j in range(lo, hi):
            if j != i:
                centers.append(int(sentence[i]))
                contexts.append(int(sentence[j]))
    return (np.asarray(centers, dtype=np.int64),
            np.asarray(contexts, dtype=np.int64))


class TestGeneratePairsVectorized:
    """Regression: generate_pairs was vectorized; it must stay
    bit-identical to the double loop — same pair stream order and the
    same RNG draw sequence — so every SGNS corpus is unchanged."""

    @pytest.mark.parametrize("dynamic", [True, False])
    @pytest.mark.parametrize("window", [1, 2, 5, 9])
    def test_bit_identical_to_reference(self, dynamic, window):
        master = np.random.default_rng(42)
        for n in (2, 3, 5, 8, 17, 33):
            sentence = master.integers(0, 50, size=n)
            seed = int(master.integers(0, 2**31))
            c_new, o_new = generate_pairs(
                sentence, window, np.random.default_rng(seed),
                dynamic_window=dynamic,
            )
            c_ref, o_ref = _reference_generate_pairs(
                sentence, window, np.random.default_rng(seed),
                dynamic_window=dynamic,
            )
            assert np.array_equal(c_new, c_ref)
            assert np.array_equal(o_new, o_ref)
            assert c_new.dtype == np.int64 and o_new.dtype == np.int64

    def test_rng_state_advances_identically(self):
        # Downstream draws (negative sampling) must see the same stream.
        rng_new = np.random.default_rng(7)
        rng_ref = np.random.default_rng(7)
        sentence = np.arange(20)
        generate_pairs(sentence, 4, rng_new)
        _reference_generate_pairs(sentence, 4, rng_ref)
        assert rng_new.integers(0, 10**9) == rng_ref.integers(0, 10**9)

    def test_faster_than_reference_loop(self):
        # The vectorized path must beat the Python double loop on a
        # long sentence (~30-100x in practice; assert a loose 2x so the
        # test stays robust on loaded CI machines).
        import time

        sentence = np.random.default_rng(0).integers(0, 1000, size=4000)

        def best_of(fn, repeats=3):
            times = []
            for _ in range(repeats):
                rng = np.random.default_rng(1)
                start = time.perf_counter()
                fn(sentence, 8, rng, dynamic_window=True)
                times.append(time.perf_counter() - start)
            return min(times)

        fast = best_of(generate_pairs)
        slow = best_of(_reference_generate_pairs)
        assert fast * 2 < slow


class TestSkipGramModel:
    def test_init_shapes(self):
        model = SkipGramModel(10, 4, seed=1)
        assert model.w_in.shape == (10, 4)
        assert model.w_out.shape == (10, 4)
        assert np.all(model.w_out == 0.0)
        assert np.all(np.abs(model.w_in) <= 0.5 / 4)

    def test_invalid_dims(self):
        with pytest.raises(EmbeddingError):
            SkipGramModel(0, 4)
        with pytest.raises(EmbeddingError):
            SkipGramModel(4, 0)

    def test_initial_loss_is_log2_times_scores(self):
        # With w_out = 0 every score is 0, so the loss is (1+K) * ln 2.
        model = SkipGramModel(5, 8, seed=1)
        loss = model.pair_loss(0, 1, np.array([2, 3, 4]))
        assert loss == pytest.approx(4 * np.log(2.0), rel=1e-6)

    def test_gradients_match_finite_differences(self):
        model = SkipGramModel(6, 5, seed=2)
        rng = np.random.default_rng(3)
        model.w_out[:] = rng.normal(0, 0.3, size=model.w_out.shape)
        centers = np.array([0, 1])
        contexts = np.array([2, 3])
        negatives = np.array([[4, 5], [5, 0]])
        gc, go, gn, _ = model.batch_gradients(centers, contexts, negatives)

        eps = 1e-6

        def total_loss():
            _, _, _, loss = model.batch_gradients(centers, contexts, negatives)
            return loss * len(centers)  # batch_gradients returns the mean

        # Probe a few coordinates of each gradient block.
        for b, row in ((0, centers[0]), (1, centers[1])):
            for d in range(3):
                old = model.w_in[row, d]
                model.w_in[row, d] = old + eps
                up = total_loss()
                model.w_in[row, d] = old - eps
                down = total_loss()
                model.w_in[row, d] = old
                numeric = (up - down) / (2 * eps)
                assert gc[b, d] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

        old = model.w_out[contexts[0], 1]
        model.w_out[contexts[0], 1] = old + eps
        up = total_loss()
        model.w_out[contexts[0], 1] = old - eps
        down = total_loss()
        model.w_out[contexts[0], 1] = old
        numeric = (up - down) / (2 * eps)
        assert go[0, 1] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_training_pair_reduces_its_loss(self):
        model = SkipGramModel(6, 4, seed=4)
        centers = np.array([0])
        contexts = np.array([1])
        negatives = np.array([[2, 3]])
        before = model.pair_loss(0, 1, negatives[0])
        for _ in range(50):
            gc, go, gn, _ = model.batch_gradients(centers, contexts, negatives)
            model.apply_batch(centers, contexts, negatives, gc, go, gn, lr=0.1)
        after = model.pair_loss(0, 1, negatives[0])
        assert after < before


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        model = SkipGramModel(7, 4, seed=1)
        rng = np.random.default_rng(2)
        model.w_out[:] = rng.normal(size=model.w_out.shape)
        path = tmp_path / "model.npz"
        model.save(path)
        back = SkipGramModel.load(path)
        assert np.array_equal(back.w_in, model.w_in)
        assert np.array_equal(back.w_out, model.w_out)

    def test_load_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, w_in=np.zeros((2, 2)))
        with pytest.raises(EmbeddingError, match="missing"):
            SkipGramModel.load(path)

    def test_load_shape_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, w_in=np.zeros((2, 2)), w_out=np.zeros((3, 2)))
        with pytest.raises(EmbeddingError, match="shapes differ"):
            SkipGramModel.load(path)

    def test_loaded_model_continues_training(self, tmp_path):
        model = SkipGramModel(6, 4, seed=3)
        path = tmp_path / "model.npz"
        model.save(path)
        back = SkipGramModel.load(path)
        centers = np.array([0])
        contexts = np.array([1])
        negatives = np.array([[2, 3]])
        before = back.pair_loss(0, 1, negatives[0])
        for _ in range(30):
            gc, go, gn, _ = back.batch_gradients(centers, contexts, negatives)
            back.apply_batch(centers, contexts, negatives, gc, go, gn, lr=0.1)
        assert back.pair_loss(0, 1, negatives[0]) < before


class TestApplyBatchModes:
    def setup_pairs(self):
        model = SkipGramModel(5, 4, seed=5)
        rng = np.random.default_rng(6)
        model.w_out[:] = rng.normal(0, 0.2, size=model.w_out.shape)
        centers = np.array([0, 0, 0, 1])
        contexts = np.array([1, 2, 3, 2])
        negatives = np.array([[4], [4], [4], [3]])
        grads = model.batch_gradients(centers, contexts, negatives)[:3]
        return model, centers, contexts, negatives, grads

    def test_sum_accumulates_duplicates(self):
        model, c, o, n, (gc, go, gn) = self.setup_pairs()
        before = model.w_in[0].copy()
        expected = before - 1.0 * (gc[0] + gc[1] + gc[2])
        model.apply_batch(c, o, n, gc, go, gn, lr=1.0, update="sum")
        assert np.allclose(model.w_in[0], expected)

    def test_mean_averages_duplicates(self):
        model, c, o, n, (gc, go, gn) = self.setup_pairs()
        before = model.w_in[0].copy()
        expected = before - 1.0 * (gc[0] + gc[1] + gc[2]) / 3.0
        model.apply_batch(c, o, n, gc, go, gn, lr=1.0, update="mean")
        assert np.allclose(model.w_in[0], expected)

    def test_capped_full_sum_below_cap(self):
        model, c, o, n, (gc, go, gn) = self.setup_pairs()
        before = model.w_in[0].copy()
        expected = before - (gc[0] + gc[1] + gc[2])  # 3 <= cap
        model.apply_batch(c, o, n, gc, go, gn, lr=1.0, update="capped", cap=8)
        assert np.allclose(model.w_in[0], expected)

    def test_capped_scales_above_cap(self):
        model, c, o, n, (gc, go, gn) = self.setup_pairs()
        before = model.w_in[0].copy()
        expected = before - (gc[0] + gc[1] + gc[2]) * (2.0 / 3.0)
        model.apply_batch(c, o, n, gc, go, gn, lr=1.0, update="capped", cap=2)
        assert np.allclose(model.w_in[0], expected)

    def test_unknown_mode_rejected(self):
        model, c, o, n, (gc, go, gn) = self.setup_pairs()
        with pytest.raises(EmbeddingError):
            model.apply_batch(c, o, n, gc, go, gn, lr=0.1, update="bogus")
