"""Unit tests for the hierarchical-softmax word2vec objective."""

import numpy as np
import pytest

from repro.embedding import SgnsConfig, train_embeddings
from repro.embedding.hsoftmax import (
    BatchedHsTrainer,
    HierarchicalSoftmaxModel,
    HuffmanTree,
)
from repro.errors import EmbeddingError


class TestHuffmanTree:
    def test_prefix_code_property(self):
        tree = HuffmanTree(np.array([5, 3, 2, 2, 1]))
        codes = []
        for leaf in range(5):
            length = int(tree.code_lengths[leaf])
            codes.append(tuple(tree.codes[leaf, :length].tolist()))
        # No code is a prefix of another (Huffman invariant).
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert a != b[: len(a)]

    def test_frequent_nodes_get_short_codes(self):
        counts = np.array([1000, 1, 1, 1, 1, 1, 1, 1])
        tree = HuffmanTree(counts)
        assert tree.code_lengths[0] == tree.code_lengths.min()

    def test_expected_code_length_near_entropy(self):
        rng = np.random.default_rng(1)
        counts = rng.integers(1, 100, size=64)
        tree = HuffmanTree(counts)
        p = counts / counts.sum()
        entropy = -np.sum(p * np.log2(p))
        mean_len = tree.mean_code_length(counts)
        # Huffman is within 1 bit of the entropy.
        assert entropy <= mean_len <= entropy + 1.0

    def test_inner_ids_in_range(self):
        tree = HuffmanTree(np.array([4, 3, 2, 1]))
        for leaf in range(4):
            length = int(tree.code_lengths[leaf])
            assert np.all(tree.paths[leaf, :length] < tree.num_inner)
            assert np.all(tree.paths[leaf, :length] >= 0)

    def test_single_leaf(self):
        tree = HuffmanTree(np.array([7]))
        assert tree.num_leaves == 1
        assert tree.code_lengths[0] == 0

    def test_two_leaves(self):
        tree = HuffmanTree(np.array([3, 5]))
        assert np.all(tree.code_lengths == 1)
        # The two leaves take opposite branches of the single inner node.
        assert tree.codes[0, 0] != tree.codes[1, 0]

    def test_zero_counts_still_coded(self):
        tree = HuffmanTree(np.array([10, 0, 5]))
        assert tree.code_lengths[1] >= 1

    def test_invalid_counts(self):
        with pytest.raises(EmbeddingError):
            HuffmanTree(np.array([]))
        with pytest.raises(EmbeddingError):
            HuffmanTree(np.array([1, -1]))


class TestHierarchicalSoftmaxModel:
    def test_probabilities_sum_to_one(self):
        # Summing exact P(context|center) over all leaves must give 1:
        # the tree's branch sigmoids define a proper distribution.
        counts = np.array([4, 3, 2, 2, 1, 1])
        model = HierarchicalSoftmaxModel(counts, dim=4, seed=1)
        rng = np.random.default_rng(2)
        model.w_inner[:] = rng.normal(0, 0.5, size=model.w_inner.shape)
        total = sum(model.context_probability(0, ctx) for ctx in range(6))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_initial_loss_matches_code_length(self):
        # Zero inner weights => each branch costs ln 2.
        counts = np.array([2, 2, 2, 2])
        model = HierarchicalSoftmaxModel(counts, dim=4, seed=1)
        length = int(model.tree.code_lengths[1])
        assert model.pair_loss(0, 1) == pytest.approx(length * np.log(2.0))

    def test_gradients_match_finite_differences(self):
        counts = np.array([5, 4, 3, 2, 1])
        model = HierarchicalSoftmaxModel(counts, dim=3, seed=3)
        rng = np.random.default_rng(4)
        model.w_inner[:] = rng.normal(0, 0.3, size=model.w_inner.shape)
        centers = np.array([0, 2])
        contexts = np.array([1, 4])
        gc, gi, paths, mask, _ = model.batch_gradients(centers, contexts)

        eps = 1e-6

        def batch_loss():
            *_, loss = model.batch_gradients(centers, contexts)
            return loss * len(centers)

        for b in range(2):
            for d in range(3):
                row = centers[b]
                old = model.w_in[row, d]
                model.w_in[row, d] = old + eps
                up = batch_loss()
                model.w_in[row, d] = old - eps
                down = batch_loss()
                model.w_in[row, d] = old
                numeric = (up - down) / (2 * eps)
                assert gc[b, d] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

        # One inner-row gradient entry.
        inner = int(paths[0, 0])
        old = model.w_inner[inner, 1]
        model.w_inner[inner, 1] = old + eps
        up = batch_loss()
        model.w_inner[inner, 1] = old - eps
        down = batch_loss()
        model.w_inner[inner, 1] = old
        numeric = (up - down) / (2 * eps)
        # Gradient contributions to this row may come from several pairs.
        contributions = 0.0
        for b in range(2):
            for l in range(paths.shape[1]):
                if mask[b, l] and paths[b, l] == inner:
                    contributions += gi[b, l, 1]
        assert contributions == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_training_increases_context_probability(self):
        counts = np.array([3, 3, 3, 3])
        model = HierarchicalSoftmaxModel(counts, dim=6, seed=5)
        before = model.context_probability(0, 1)
        centers = np.array([0])
        contexts = np.array([1])
        for _ in range(100):
            gc, gi, paths, mask, _ = model.batch_gradients(centers, contexts)
            model.apply_batch(centers, gc, gi, paths, mask, lr=0.2)
        assert model.context_probability(0, 1) > before + 0.2


class TestBatchedHsTrainer:
    def test_loss_decreases(self, email_corpus, email_graph):
        # Batched HS converges slower than SGNS: gradients of opposing
        # branches cancel inside a batch at the root rows, so it needs
        # smaller batches (more update rounds) and a higher lr.
        trainer = BatchedHsTrainer(
            SgnsConfig(dim=8, epochs=5, learning_rate=0.1),
            batch_sentences=64,
        )
        trainer.train(email_corpus, email_graph.num_nodes, seed=1)
        losses = trainer.last_stats.losses
        assert losses[-1] < losses[0] - 0.1

    def test_front_door_objective(self, email_corpus, email_graph):
        emb, stats = train_embeddings(
            email_corpus, email_graph.num_nodes,
            SgnsConfig(dim=8, epochs=2), batch_sentences=256,
            seed=2, objective="hierarchical-softmax",
        )
        assert emb.matrix.shape == (email_graph.num_nodes, 8)
        assert stats.pairs_trained > 0

    def test_unknown_objective_rejected(self, email_corpus, email_graph):
        with pytest.raises(EmbeddingError, match="unknown objective"):
            train_embeddings(email_corpus, email_graph.num_nodes,
                             objective="softmax-everything")

    def test_hs_embeddings_usable_downstream(self, email_corpus, email_graph,
                                             email_edges):
        from repro.tasks import LinkPredictionTask
        from repro.tasks.link_prediction import LinkPredictionConfig
        from repro.tasks.training import TrainSettings

        emb, _ = train_embeddings(
            email_corpus, email_graph.num_nodes,
            SgnsConfig(dim=8, epochs=5, learning_rate=0.1),
            batch_sentences=64, seed=3,
            objective="hierarchical-softmax",
        )
        result = LinkPredictionTask(LinkPredictionConfig(
            training=TrainSettings(epochs=10, learning_rate=0.05)
        )).run(emb, email_edges, seed=4)
        assert result.auc > 0.65
