"""Unit tests for the write-ahead edge log (format, rotation, recovery)."""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph.edges import TemporalEdgeList
from repro.stream import WriteAheadLog, replay
from repro.stream.wal import (
    FINAL_SUFFIX,
    HEADER_SIZE,
    OPEN_SUFFIX,
    RECORD_SIZE,
)

pytestmark = pytest.mark.stream


def make_batch(rng, n, num_nodes=64):
    return TemporalEdgeList(
        rng.integers(0, num_nodes, size=n),
        rng.integers(0, num_nodes, size=n),
        rng.random(n),
        num_nodes=num_nodes,
    )


def assert_edges_equal(a: TemporalEdgeList, b: TemporalEdgeList) -> None:
    assert np.array_equal(a.src, b.src)
    assert np.array_equal(a.dst, b.dst)
    assert np.array_equal(a.timestamps, b.timestamps)
    assert a.num_nodes == b.num_nodes


class TestRoundTrip:
    def test_empty_dir_replays_empty(self, tmp_path):
        result = replay(tmp_path / "missing")
        assert result.batches == []
        assert result.total_edges == 0
        assert result.truncated_bytes == 0

    def test_single_batch_bit_identical(self, tmp_path):
        rng = np.random.default_rng(1)
        batch = make_batch(rng, 17)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append(batch) == 1
        result = replay(tmp_path)
        assert len(result.batches) == 1
        assert_edges_equal(result.batches[0], batch)
        assert result.edge_list().num_nodes == batch.num_nodes

    def test_many_batches_preserve_order_and_boundaries(self, tmp_path):
        rng = np.random.default_rng(2)
        batches = [make_batch(rng, rng.integers(1, 30)) for _ in range(12)]
        with WriteAheadLog(tmp_path) as wal:
            for batch in batches:
                wal.append(batch)
        result = replay(tmp_path)
        assert len(result.batches) == 12
        for got, expected in zip(result.batches, batches):
            assert_edges_equal(got, expected)
        assert_edges_equal(result.edge_list(),
                           TemporalEdgeList.concatenate(batches))

    def test_rotation_splits_into_segments(self, tmp_path):
        rng = np.random.default_rng(3)
        batches = [make_batch(rng, 10) for _ in range(10)]
        with WriteAheadLog(tmp_path, segment_max_bytes=1024) as wal:
            for batch in batches:
                wal.append(batch)
            assert wal.segment_count > 2
        finals = list(tmp_path.glob(f"*{FINAL_SUFFIX}"))
        assert len(finals) > 2
        assert not list(tmp_path.glob(f"*{OPEN_SUFFIX}"))  # closed cleanly
        result = replay(tmp_path)
        assert len(result.batches) == 10
        assert_edges_equal(result.edge_list(),
                           TemporalEdgeList.concatenate(batches))

    def test_reopen_continues_in_fresh_segment(self, tmp_path):
        rng = np.random.default_rng(4)
        first, second = make_batch(rng, 5), make_batch(rng, 7)
        with WriteAheadLog(tmp_path) as wal:
            wal.append(first)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.committed_batches == 1
            assert wal.committed_edges == 5
            assert wal.append(second) == 2
        result = replay(tmp_path)
        assert [len(b) for b in result.batches] == [5, 7]
        assert_edges_equal(result.batches[1], second)

    def test_append_empty_batch_rejected(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            with pytest.raises(StreamError):
                wal.append(TemporalEdgeList([], [], []))

    def test_append_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        with pytest.raises(StreamError):
            wal.append(make_batch(np.random.default_rng(0), 3))

    def test_nosync_mode_still_replays(self, tmp_path):
        rng = np.random.default_rng(5)
        batch = make_batch(rng, 9)
        with WriteAheadLog(tmp_path, sync=False) as wal:
            wal.append(batch)
        assert_edges_equal(replay(tmp_path).batches[0], batch)


class TestTornTailRecovery:
    def _write_then_tear(self, tmp_path, rng, tear_bytes):
        """Append 3 batches, then leave torn garbage on the open tail."""
        batches = [make_batch(rng, 8) for _ in range(3)]
        wal = WriteAheadLog(tmp_path)
        for batch in batches:
            wal.append(batch)
        wal._handle.write(tear_bytes)
        wal._handle.flush()
        # No close(): simulates the process dying here.
        return batches

    def test_partial_record_truncated(self, tmp_path):
        rng = np.random.default_rng(6)
        batches = self._write_then_tear(tmp_path, rng, b"\x00" * 11)
        result = replay(tmp_path)
        assert len(result.batches) == 3
        assert result.truncated_bytes == 11
        assert_edges_equal(result.edge_list(),
                           TemporalEdgeList.concatenate(batches))

    def test_crc_corrupt_tail_truncated(self, tmp_path):
        rng = np.random.default_rng(7)
        bad = struct.pack("<Bqqd", 0, 1, 2, 0.5) + struct.pack("<I", 0xDEAD)
        batches = self._write_then_tear(tmp_path, rng, bad)
        result = replay(tmp_path)
        assert len(result.batches) == 3
        assert result.truncated_bytes == RECORD_SIZE
        assert_edges_equal(result.edge_list(),
                           TemporalEdgeList.concatenate(batches))

    def test_uncommitted_records_truncated(self, tmp_path):
        # Valid edge records with no commit: the in-flight batch's edges
        # must not replay (they were never acknowledged).
        rng = np.random.default_rng(8)
        body = struct.pack("<Bqqd", 0, 3, 4, 0.25)
        record = body + struct.pack("<I", zlib.crc32(body))
        batches = self._write_then_tear(tmp_path, rng, record * 2)
        result = replay(tmp_path)
        assert len(result.batches) == 3
        assert result.truncated_bytes == 2 * RECORD_SIZE
        assert result.total_edges == sum(len(b) for b in batches)

    def test_reopen_repairs_and_continues(self, tmp_path):
        rng = np.random.default_rng(9)
        batches = self._write_then_tear(tmp_path, rng, b"\xffgarbage")
        extra = make_batch(rng, 4)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.committed_batches == 3
            wal.append(extra)
        result = replay(tmp_path)
        assert len(result.batches) == 4
        assert result.truncated_bytes == 0  # repair removed the tear
        assert_edges_equal(result.batches[3], extra)
        assert_edges_equal(
            result.edge_list(),
            TemporalEdgeList.concatenate(batches + [extra]),
        )

    def test_torn_header_segment_dropped_and_index_reused(self, tmp_path):
        rng = np.random.default_rng(10)
        with WriteAheadLog(tmp_path) as wal:
            wal.append(make_batch(rng, 6))
        # Fake a crash during the next segment's header write.
        torn = tmp_path / f"segment-{1:08d}{OPEN_SUFFIX}"
        torn.write_bytes(b"RWALSEG1\x01")
        with WriteAheadLog(tmp_path) as wal:
            wal.append(make_batch(rng, 6))
        result = replay(tmp_path)
        assert len(result.batches) == 2
        assert result.segments == 2


class TestCorruptionDetection:
    def test_corrupt_finalized_segment_raises(self, tmp_path):
        rng = np.random.default_rng(11)
        with WriteAheadLog(tmp_path, segment_max_bytes=512) as wal:
            for _ in range(6):
                wal.append(make_batch(rng, 8))
        final = sorted(tmp_path.glob(f"*{FINAL_SUFFIX}"))[0]
        data = bytearray(final.read_bytes())
        data[HEADER_SIZE + 5] ^= 0xFF  # flip a byte inside record 0
        final.write_bytes(bytes(data))
        with pytest.raises(StreamError, match="corrupt"):
            replay(tmp_path)

    def test_corrupt_header_raises(self, tmp_path):
        rng = np.random.default_rng(12)
        with WriteAheadLog(tmp_path) as wal:
            wal.append(make_batch(rng, 3))
        final = sorted(tmp_path.glob(f"*{FINAL_SUFFIX}"))[0]
        data = bytearray(final.read_bytes())
        data[9] ^= 0xFF  # inside the header
        final.write_bytes(bytes(data))
        with pytest.raises(StreamError):
            replay(tmp_path)

    def test_segment_gap_raises(self, tmp_path):
        rng = np.random.default_rng(13)
        with WriteAheadLog(tmp_path, segment_max_bytes=512) as wal:
            for _ in range(6):
                wal.append(make_batch(rng, 8))
        victims = sorted(tmp_path.glob(f"*{FINAL_SUFFIX}"))
        assert len(victims) >= 3
        victims[1].unlink()  # hole in the middle of the sequence
        with pytest.raises(StreamError, match="gap"):
            replay(tmp_path)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / f"segment-{0:08d}{FINAL_SUFFIX}"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 40)
        with pytest.raises(StreamError, match="magic"):
            replay(tmp_path)

    def test_tiny_segment_threshold_rejected(self, tmp_path):
        with pytest.raises(StreamError):
            WriteAheadLog(tmp_path, segment_max_bytes=16)


class TestFailedAppendRollback:
    def test_error_fault_rolls_back_then_retry_succeeds(self, tmp_path):
        from repro.faults import FaultPlan

        rng = np.random.default_rng(14)
        plan = FaultPlan.parse("stream.wal.fsync:error:1:1")
        wal = WriteAheadLog(tmp_path, fault_plan=plan)
        first, second = make_batch(rng, 5), make_batch(rng, 5)
        wal.append(first)
        from repro.errors import FaultInjected
        with pytest.raises(FaultInjected):
            wal.append(second)
        # The failed batch left no stray records: the retry commits
        # cleanly and replay sees exactly two intact batches.
        assert wal.append(second) == 2
        wal.close()
        result = replay(tmp_path)
        assert len(result.batches) == 2
        assert_edges_equal(result.batches[1], second)

    def test_write_site_error_rolls_back_mid_record_write(self, tmp_path):
        from repro.errors import FaultInjected
        from repro.faults import FaultPlan

        rng = np.random.default_rng(15)
        plan = FaultPlan.parse("stream.wal.write:error:0:1")
        wal = WriteAheadLog(tmp_path, fault_plan=plan)
        batch = make_batch(rng, 20)
        with pytest.raises(FaultInjected):
            wal.append(batch)
        assert wal.append(batch) == 1
        wal.close()
        result = replay(tmp_path)
        assert len(result.batches) == 1
        assert_edges_equal(result.batches[0], batch)
