"""Unit tests for the DataLoader."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import DataLoader


class TestDataLoader:
    def test_batches_cover_all_samples(self):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        loader = DataLoader(x, y, batch_size=3, seed=1)
        seen = np.concatenate([yb for _, yb in loader])
        assert sorted(seen.tolist()) == list(range(10))

    def test_len_rounds_up(self):
        loader = DataLoader(np.zeros((10, 1)), np.zeros(10), batch_size=3)
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(np.zeros((10, 1)), np.zeros(10), batch_size=3,
                            drop_last=True)
        assert len(loader) == 3
        assert sum(len(yb) for _, yb in loader) == 9

    def test_shuffle_changes_order_between_epochs(self):
        x = np.arange(50).reshape(50, 1)
        loader = DataLoader(x, np.arange(50), batch_size=50, seed=2)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6).reshape(6, 1)
        loader = DataLoader(x, np.arange(6), batch_size=2, shuffle=False)
        batches = [yb.tolist() for _, yb in loader]
        assert batches == [[0, 1], [2, 3], [4, 5]]

    def test_features_align_with_targets(self):
        x = np.arange(20).reshape(20, 1)
        y = np.arange(20)
        loader = DataLoader(x, y, batch_size=7, seed=3)
        for xb, yb in loader:
            assert np.array_equal(xb.reshape(-1), yb)

    def test_length_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            DataLoader(np.zeros((3, 1)), np.zeros(2))

    def test_invalid_batch_size(self):
        with pytest.raises(TrainingError):
            DataLoader(np.zeros((3, 1)), np.zeros(3), batch_size=0)
