"""Unit tests for the node2vec second-order walker."""

import numpy as np
import pytest

from repro.baselines.node2vec import Node2VecWalker
from repro.errors import WalkError
from repro.graph import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.walk import WalkConfig


def line_with_triangle() -> TemporalGraph:
    """0 <-> 1 <-> 2 plus 1 <-> 3, with 0 <-> 2 closing a triangle.

    From node 1 arriving via 0: node 2 is a common neighbor (weight 1),
    node 0 is the return node (1/p), node 3 is outward (1/q).
    """
    rows = []
    for u, v in [(0, 1), (1, 2), (1, 3), (0, 2)]:
        rows.append((u, v, 0.5))
        rows.append((v, u, 0.5))
    return TemporalGraph.from_edge_list(TemporalEdgeList.from_edges(rows))


class TestNode2VecWalker:
    def test_invalid_parameters(self):
        graph = line_with_triangle()
        with pytest.raises(WalkError):
            Node2VecWalker(graph, p=0.0)
        with pytest.raises(WalkError):
            Node2VecWalker(graph, q=-1.0)

    def test_contract(self):
        graph = line_with_triangle()
        walker = Node2VecWalker(graph)
        corpus = walker.run(WalkConfig(num_walks_per_node=2,
                                       max_walk_length=4), seed=1)
        assert corpus.num_walks == 2 * graph.num_nodes
        keys = graph.edge_key_set()
        for i in range(corpus.num_walks):
            walk = corpus.walk(i)
            for a, b in zip(walk[:-1], walk[1:]):
                assert (int(a), int(b)) in keys

    def test_low_p_returns_often(self):
        graph = line_with_triangle()
        config = WalkConfig(num_walks_per_node=400, max_walk_length=3)
        returny = Node2VecWalker(graph, p=0.05, q=1.0).run(
            config, seed=2, start_nodes=np.array([0]))
        neutral = Node2VecWalker(graph, p=1.0, q=1.0).run(
            config, seed=2, start_nodes=np.array([0]))

        def return_rate(corpus):
            full = corpus.matrix[corpus.lengths == 3]
            return np.mean(full[:, 2] == full[:, 0])

        assert return_rate(returny) > return_rate(neutral) + 0.15

    def test_high_q_stays_local(self):
        graph = line_with_triangle()
        config = WalkConfig(num_walks_per_node=400, max_walk_length=3)

        def outward_rate(q):
            corpus = Node2VecWalker(graph, p=10.0, q=q).run(
                config, seed=3, start_nodes=np.array([0]))
            # Walks 0 -> 1 -> x: node 3 is the outward choice.
            full = corpus.matrix[corpus.lengths == 3]
            via_1 = full[full[:, 1] == 1]
            if len(via_1) == 0:
                return 0.0
            return float(np.mean(via_1[:, 2] == 3))

        assert outward_rate(q=10.0) < outward_rate(q=0.1) - 0.15

    def test_deterministic_by_seed(self):
        graph = line_with_triangle()
        config = WalkConfig(num_walks_per_node=2, max_walk_length=4)
        a = Node2VecWalker(graph, 0.5, 2.0).run(config, seed=4)
        b = Node2VecWalker(graph, 0.5, 2.0).run(config, seed=4)
        assert np.array_equal(a.matrix, b.matrix)

    def test_sink_terminates(self):
        edges = TemporalEdgeList([0], [1], [0.5])
        graph = TemporalGraph.from_edge_list(edges)
        corpus = Node2VecWalker(graph).run(
            WalkConfig(num_walks_per_node=3, max_walk_length=5), seed=5)
        # Walks from 0 reach 1 (sink) and stop.
        assert corpus.lengths.max() == 2
