"""Smoke tests: the fast example scripts run end to end.

The heavyweight sweep/hardware examples are exercised by the benchmark
suite's equivalent experiments; here we verify the quick ones execute
as shipped (they are the README's first contact with the library).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "extend_link_property_prediction.py",
    "evolving_graph.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example should print results"


def test_all_examples_present_and_documented():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        text = (EXAMPLES_DIR / script).read_text(encoding="utf-8")
        assert text.startswith('"""'), f"{script} needs a docstring"
        assert "Run:" in text, f"{script} docstring should say how to run"
