"""Engine-vs-reference equivalence tests.

The scalar reference (a line-by-line Algorithm 1 transcription) is the
oracle: the vectorized engine must satisfy the same invariants and, on
fixed graphs, produce statistically indistinguishable walk populations.
"""

import numpy as np
import pytest

from repro.graph import TemporalGraph, generators
from repro.walk import TemporalWalkEngine, WalkConfig, run_walks_reference


@pytest.fixture(scope="module")
def small_graph():
    edges = generators.ia_email_like(scale=0.0008, seed=31)
    return TemporalGraph.from_edge_list(edges)


class TestEquivalence:
    def test_contract_matches(self, small_graph):
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=4)
        ref = run_walks_reference(small_graph, cfg, seed=1)
        eng = TemporalWalkEngine(small_graph).run(cfg, seed=1)
        assert ref.num_walks == eng.num_walks
        assert ref.max_walk_length == eng.max_walk_length
        assert np.array_equal(ref.start_nodes, eng.start_nodes)

    def test_both_temporally_valid(self, small_graph):
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=5)
        ref = run_walks_reference(small_graph, cfg, seed=2)
        eng = TemporalWalkEngine(small_graph).run(cfg, seed=2)
        assert ref.validate_temporal_order(small_graph)
        assert eng.validate_temporal_order(small_graph)

    @pytest.mark.parametrize("bias", ["uniform", "softmax-recency", "linear"])
    def test_length_distributions_match(self, small_graph, bias):
        cfg = WalkConfig(num_walks_per_node=6, max_walk_length=5, bias=bias)
        ref = run_walks_reference(small_graph, cfg, seed=3)
        eng = TemporalWalkEngine(small_graph).run(cfg, seed=4)
        # Termination is structural (no valid neighbor), so both
        # implementations must produce near-identical length histograms.
        assert ref.lengths.mean() == pytest.approx(eng.lengths.mean(), rel=0.1)

    def test_visit_distributions_match(self, small_graph):
        cfg = WalkConfig(num_walks_per_node=8, max_walk_length=5)
        ref = run_walks_reference(small_graph, cfg, seed=5)
        eng = TemporalWalkEngine(small_graph).run(cfg, seed=6)
        n = small_graph.num_nodes
        f_ref = ref.node_frequencies(n) / ref.total_nodes()
        f_eng = eng.node_frequencies(n) / eng.total_nodes()
        # Total variation distance between visit distributions is small
        # (bounded by sampling noise at this corpus size).
        tv = 0.5 * np.abs(f_ref - f_eng).sum()
        assert tv < 0.12

    def test_deterministic_by_seed(self, small_graph):
        cfg = WalkConfig(num_walks_per_node=1, max_walk_length=4)
        a = run_walks_reference(small_graph, cfg, seed=7)
        b = run_walks_reference(small_graph, cfg, seed=7)
        assert np.array_equal(a.matrix, b.matrix)

    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_windowed_visit_distributions_match(self, small_graph, direction):
        # The reference implements time_window and backward walks too,
        # so the windowed engine kernels validate against the same
        # scalar oracle as the plain forward walk.
        cfg = WalkConfig(num_walks_per_node=8, max_walk_length=5,
                         time_window=0.3, direction=direction)
        ref = run_walks_reference(small_graph, cfg, seed=15)
        eng = TemporalWalkEngine(small_graph).run(cfg, seed=16)
        n = small_graph.num_nodes
        f_ref = ref.node_frequencies(n) / ref.total_nodes()
        f_eng = eng.node_frequencies(n) / eng.total_nodes()
        tv = 0.5 * np.abs(f_ref - f_eng).sum()
        assert tv < 0.12

    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_windowed_termination_matches(self, small_graph, direction):
        # Window-induced termination is structural (an empty truncated
        # range), so both implementations must cut walks at the same
        # places on average.
        cfg = WalkConfig(num_walks_per_node=6, max_walk_length=5,
                         time_window=0.15, direction=direction)
        ref = run_walks_reference(small_graph, cfg, seed=17)
        eng = TemporalWalkEngine(small_graph).run(cfg, seed=18)
        assert ref.lengths.mean() == pytest.approx(eng.lengths.mean(),
                                                   rel=0.1)

    def test_backward_walks_temporally_valid(self, small_graph):
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=5,
                         direction="backward")
        ref = run_walks_reference(small_graph, cfg, seed=19)
        assert ref.validate_temporal_order(small_graph,
                                           direction="backward")
