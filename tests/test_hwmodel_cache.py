"""Unit tests for the cache simulator."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.hwmodel.cache import (
    CacheConfig,
    CacheHierarchy,
    CacheSim,
    embedding_trace,
    streaming_trace,
    walk_trace,
)


def small_cache(size=1024, line=64, ways=2):
    return CacheSim(CacheConfig(size_bytes=size, line_bytes=line, ways=ways))


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=1024, line_bytes=64, ways=2)
        assert cfg.num_sets == 8

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ModelError):
            CacheConfig(size_bytes=0)

    def test_non_multiple_rejected(self):
        with pytest.raises(ModelError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=2)


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)       # same line
        assert not cache.access(64)   # next line

    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_lru_evicts_least_recent(self):
        # 2-way cache: three lines mapping to the same set.
        cache = small_cache(size=1024, line=64, ways=2)  # 8 sets
        set_stride = 8 * 64
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a most recent
        cache.access(c)      # evicts b (LRU)
        assert cache.access(a)
        assert not cache.access(b)

    def test_working_set_fits(self):
        cache = small_cache(size=4096, line=64, ways=4)
        trace = np.tile(np.arange(0, 2048, 64), 10)
        hits = cache.access_many(trace)
        # After the cold pass, everything hits.
        assert hits[len(trace) // 10:].all()

    def test_working_set_exceeds_capacity_thrashes(self):
        cache = small_cache(size=1024, line=64, ways=2)
        # Sequential sweep over 64 KiB, repeated: always evicted before reuse.
        trace = np.tile(np.arange(0, 65536, 64), 3)
        cache.access_many(trace)
        assert cache.hit_rate < 0.05

    def test_reset_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.accesses == 0


class TestHierarchy:
    def test_l2_catches_l1_evictions(self):
        hierarchy = CacheHierarchy(
            l1=CacheConfig(size_bytes=512, line_bytes=64, ways=2),
            l2=CacheConfig(size_bytes=8192, line_bytes=64, ways=4),
        )
        trace = np.tile(np.arange(0, 4096, 64), 5)
        result = hierarchy.access_many(trace)
        assert result["l2_hit_rate"] > result["l1_hit_rate"]
        assert result["dram_accesses"] >= 4096 / 64  # at least cold misses


class TestTraces:
    def test_walk_trace_nonempty(self, email_corpus, email_graph):
        trace = walk_trace(email_corpus, email_graph, limit=5000)
        assert 0 < len(trace) <= 5000

    def test_embedding_trace_padding_spreads_addresses(self, email_corpus):
        packed = embedding_trace(email_corpus, dim=8, pad_to_line=False,
                                 limit=2000)
        padded = embedding_trace(email_corpus, dim=8, pad_to_line=True,
                                 limit=2000)
        # Padding gives every row its own line => a larger address span.
        assert padded.max() > packed.max()

    def test_padding_hurts_small_cache_hit_rate(self, email_corpus):
        results = {}
        for pad in (False, True):
            trace = embedding_trace(email_corpus, dim=8, pad_to_line=pad,
                                    limit=20000)
            cache = small_cache(size=8192, line=64, ways=4)
            cache.access_many(trace)
            results[pad] = cache.hit_rate
        # §V-B: padding under-utilizes lines when d is small.
        assert results[False] >= results[True]

    def test_streaming_trace_is_sequential(self):
        trace = streaming_trace(1024, element_bytes=8, passes=1)
        assert np.all(np.diff(trace) == 8)

    def test_streaming_trace_caches_well_despite_capacity(self):
        # Element-granularity streaming hits 7/8 of accesses in a 64-byte
        # line cache even when the buffer exceeds capacity.
        trace = streaming_trace(256 * 1024, element_bytes=8, passes=2,
                                limit=60_000)
        cache = small_cache(size=8192, line=64, ways=4)
        cache.access_many(trace)
        assert cache.hit_rate == pytest.approx(7 / 8, abs=0.01)
