"""Unit tests for accuracy and ROC-AUC."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import accuracy, binary_accuracy, roc_auc


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 2])) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            accuracy(np.array([0]), np.array([0, 1]))


class TestBinaryAccuracy:
    def test_threshold(self):
        probs = np.array([0.9, 0.4, 0.6, 0.1])
        targets = np.array([1, 0, 0, 0])
        assert binary_accuracy(probs, targets) == pytest.approx(0.75)

    def test_custom_threshold(self):
        probs = np.array([0.6, 0.6])
        assert binary_accuracy(probs, np.array([1, 1]), threshold=0.7) == 0.0


class TestRocAuc:
    def test_perfect_separation(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        targets = np.array([1, 1, 0, 0])
        assert roc_auc(scores, targets) == 1.0

    def test_perfect_inversion(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        targets = np.array([1, 1, 0, 0])
        assert roc_auc(scores, targets) == 0.0

    def test_random_scores_near_half(self, rng):
        scores = rng.random(4000)
        targets = rng.integers(0, 2, 4000)
        assert roc_auc(scores, targets) == pytest.approx(0.5, abs=0.03)

    def test_single_class_returns_half(self):
        assert roc_auc(np.array([0.1, 0.9]), np.array([1, 1])) == 0.5

    def test_ties_get_average_rank(self):
        # One tied pair split across classes contributes exactly 0.5.
        scores = np.array([0.5, 0.5])
        targets = np.array([1, 0])
        assert roc_auc(scores, targets) == pytest.approx(0.5)

    def test_matches_pairwise_definition(self, rng):
        scores = rng.random(60)
        targets = rng.integers(0, 2, 60)
        pos = scores[targets == 1]
        neg = scores[targets == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        expected = wins / (len(pos) * len(neg))
        assert roc_auc(scores, targets) == pytest.approx(expected)

    def test_invariant_to_monotone_transform(self, rng):
        scores = rng.random(100)
        targets = rng.integers(0, 2, 100)
        assert roc_auc(scores, targets) == pytest.approx(
            roc_auc(np.exp(scores * 3), targets)
        )
