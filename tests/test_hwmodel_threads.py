"""Unit tests for the thread-scaling simulator (Fig. 10)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.hwmodel.threads import (
    SchedulerCosts,
    scaling_curve,
    simulate_schedule,
)

NO_CAP = SchedulerCosts(bandwidth_speedup_cap=None, per_thread_startup=0.0,
                        per_chunk_dispatch=0.0, per_steal=0.0)


class TestSimulateSchedule:
    def test_single_thread_matches_serial(self):
        work = np.ones(100)
        result = simulate_schedule(work, 1, costs=NO_CAP)
        assert result.makespan == pytest.approx(100.0)
        assert result.speedup == pytest.approx(1.0)

    def test_uniform_work_scales_linearly(self):
        work = np.ones(1000)
        result = simulate_schedule(work, 10, policy="static", costs=NO_CAP)
        assert result.speedup == pytest.approx(10.0, rel=0.05)

    def test_dynamic_beats_static_on_sorted_skew(self):
        # Put all heavy items in one contiguous block: static assigns the
        # block to one thread, dynamic spreads chunks.
        work = np.concatenate([np.full(128, 100.0), np.full(896, 1.0)])
        static = simulate_schedule(work, 8, policy="static", costs=NO_CAP)
        dynamic = simulate_schedule(work, 8, policy="dynamic", chunk=16,
                                    costs=NO_CAP)
        assert dynamic.makespan < static.makespan

    def test_load_imbalance_metric(self):
        work = np.concatenate([np.full(10, 100.0), np.full(70, 1.0)])
        static = simulate_schedule(work, 8, policy="static", costs=NO_CAP)
        assert static.load_imbalance > 1.5

    def test_invalid_threads(self):
        with pytest.raises(ModelError):
            simulate_schedule(np.ones(4), 0)

    def test_invalid_policy(self):
        with pytest.raises(ModelError):
            simulate_schedule(np.ones(4), 2, policy="magic")

    def test_makespan_never_below_critical_path(self):
        work = np.array([1000.0] + [1.0] * 99)
        result = simulate_schedule(work, 64, policy="dynamic", chunk=1,
                                   costs=NO_CAP)
        assert result.makespan >= 1000.0

    def test_bandwidth_cap_floors_makespan(self):
        work = np.ones(10000)
        capped = simulate_schedule(
            work, 256,
            costs=SchedulerCosts(bandwidth_speedup_cap=16.0,
                                 per_thread_startup=0.0,
                                 per_chunk_dispatch=0.0, per_steal=0.0),
        )
        assert capped.speedup <= 16.0 + 1e-6


class TestScalingCurve:
    def test_monotone_then_flat(self, email_walk_stats):
        work = email_walk_stats.work_per_start_node + 1.0
        curve = scaling_curve(work, [1, 2, 4, 8, 16, 64, 256])
        assert curve[1] == pytest.approx(1.0, rel=0.05)
        assert curve[2] > 1.5
        assert curve[8] > curve[2]
        # Fig. 10: no improvement past the saturation knee.
        assert curve[256] <= curve[64] * 1.1

    def test_startup_cost_penalizes_many_threads(self):
        work = np.ones(100)
        costs = SchedulerCosts(per_thread_startup=50.0,
                               bandwidth_speedup_cap=None)
        curve = scaling_curve(work, [1, 64], costs=costs)
        assert curve[64] < 2.0  # startup swamps the tiny workload


class TestMeasuredCurveValidation:
    def _write(self, tmp_path, record):
        import json

        path = tmp_path / "parallel_scaling.json"
        path.write_text(json.dumps(record))
        return path

    def test_load_measured_curve_round_trip(self, tmp_path):
        from repro.hwmodel import load_measured_curve

        path = self._write(tmp_path, {
            "walk_speedup": {"1": 1.0, "2": 1.7, "4": 2.9},
            "w2v_speedup": {"1": 1.0, "2": 1.5},
        })
        curve = load_measured_curve(path)
        assert curve == {1: 1.0, 2: 1.7, 4: 2.9}
        w2v = load_measured_curve(path, key="w2v_speedup")
        assert w2v == {1: 1.0, 2: 1.5}

    def test_load_measured_curve_missing_key(self, tmp_path):
        from repro.hwmodel import load_measured_curve

        path = self._write(tmp_path, {"other": {}})
        with pytest.raises(ModelError):
            load_measured_curve(path)

    def test_compare_to_measured_rows(self):
        from repro.hwmodel import compare_to_measured

        work = np.ones(4096) * 10.0
        measured = {1: 1.0, 2: 1.8, 4: 3.1}
        rows = compare_to_measured(measured, work, costs=NO_CAP)
        assert [r["workers"] for r in rows] == [1, 2, 4]
        for row in rows:
            assert row["measured"] == measured[row["workers"]]
            assert row["modeled"] > 0
            assert row["ratio"] == pytest.approx(
                row["modeled"] / row["measured"]
            )

    def test_compare_to_measured_rejects_empty(self):
        from repro.hwmodel import compare_to_measured

        with pytest.raises(ModelError):
            compare_to_measured({}, np.ones(10))

    def test_model_measured_gap(self):
        from repro.hwmodel import model_measured_gap

        rows = [
            {"workers": 1, "measured": 1.0, "modeled": 1.0, "ratio": 1.0},
            {"workers": 2, "measured": 2.0, "modeled": 1.5, "ratio": 0.75},
        ]
        assert model_measured_gap(rows) == pytest.approx(0.125)
        with pytest.raises(ModelError):
            model_measured_gap([])

    def test_perfect_agreement_gap_is_zero(self):
        from repro.hwmodel import (
            compare_to_measured,
            model_measured_gap,
            scaling_curve,
        )

        work = np.ones(512)
        modeled = scaling_curve(work, [1, 2, 4], costs=NO_CAP)
        rows = compare_to_measured(modeled, work, costs=NO_CAP)
        assert model_measured_gap(rows) == pytest.approx(0.0, abs=1e-9)
