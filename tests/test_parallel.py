"""Tests for the multiprocess parallel execution layer (repro.parallel)."""

import collections

import numpy as np
import pytest

from repro.embedding import SgnsConfig, train_embeddings
from repro.embedding.batched import BatchedSgnsTrainer
from repro.embedding.trainer import SequentialSgnsTrainer
from repro.errors import EmbeddingError, PipelineError, WalkError
from repro.parallel import (
    ParallelSgnsTrainer,
    SharedCsrGraph,
    merge_walk_stats,
    run_parallel_walks,
    shard_indices,
)
from repro.tasks.pipeline import Pipeline, PipelineConfig
from repro.walk import TemporalWalkEngine, WalkConfig
from repro.walk.engine import WalkStats


class TestShardIndices:
    def test_partition_is_exhaustive_and_disjoint(self):
        shards = shard_indices(10, 3)
        merged = np.concatenate(shards)
        assert np.array_equal(np.sort(merged), np.arange(10))

    def test_near_equal_sizes(self):
        sizes = [len(s) for s in shard_indices(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_items_drops_empty_shards(self):
        shards = shard_indices(2, 8)
        assert all(len(s) > 0 for s in shards)
        assert sum(len(s) for s in shards) == 2

    def test_invalid_workers(self):
        with pytest.raises(WalkError):
            shard_indices(10, 0)


class TestSharedCsrGraph:
    def test_round_trip_preserves_arrays(self, email_graph):
        with SharedCsrGraph.create(email_graph) as shared:
            view = shared.graph()
            assert np.array_equal(view.indptr, email_graph.indptr)
            assert np.array_equal(view.dst, email_graph.dst)
            assert np.array_equal(view.ts, email_graph.ts)
            del view

    def test_attach_sees_parent_data(self, tiny_graph):
        with SharedCsrGraph.create(tiny_graph) as shared:
            attached = SharedCsrGraph.attach(shared.spec)
            view = attached.graph()
            assert np.array_equal(view.dst, tiny_graph.dst)
            del view
            attached.close()


class TestMergeWalkStats:
    def test_counters_sum_and_work_adds_elementwise(self):
        a = WalkStats(num_walks=3, total_steps=5, candidates_scanned=7,
                      search_iterations=2, terminated_early=1,
                      work_per_start_node=np.array([1, 0, 2], dtype=np.int64))
        b = WalkStats(num_walks=4, total_steps=1, candidates_scanned=3,
                      search_iterations=9, terminated_early=0,
                      work_per_start_node=np.array([0, 5, 1], dtype=np.int64))
        merged = merge_walk_stats([a, b])
        assert merged.num_walks == 7
        assert merged.total_steps == 6
        assert merged.candidates_scanned == 10
        assert merged.search_iterations == 11
        assert merged.terminated_early == 1
        assert np.array_equal(merged.work_per_start_node, [1, 5, 3])

    def test_empty_merge(self):
        assert merge_walk_stats([]).num_walks == 0

    def test_mismatched_shapes_rejected(self):
        a = WalkStats(work_per_start_node=np.zeros(2, dtype=np.int64))
        b = WalkStats(work_per_start_node=np.zeros(3, dtype=np.int64))
        with pytest.raises(WalkError):
            merge_walk_stats([a, b])


class TestParallelWalks:
    def test_workers_one_bit_identical_to_serial(self, email_graph):
        config = WalkConfig(num_walks_per_node=3, max_walk_length=5)
        engine = TemporalWalkEngine(email_graph)
        serial = engine.run(config, seed=7)
        corpus, stats = run_parallel_walks(email_graph, config, workers=1,
                                           seed=7)
        assert np.array_equal(serial.matrix, corpus.matrix)
        assert np.array_equal(serial.lengths, corpus.lengths)
        assert stats.candidates_scanned == engine.last_stats.candidates_scanned
        assert np.array_equal(stats.work_per_start_node,
                              engine.last_stats.work_per_start_node)

    def test_sharded_corpus_has_identical_per_node_walk_counts(
        self, email_graph
    ):
        config = WalkConfig(num_walks_per_node=4, max_walk_length=5)
        engine = TemporalWalkEngine(email_graph)
        serial = engine.run(config, seed=7)
        corpus, _ = run_parallel_walks(email_graph, config, workers=3, seed=7)
        assert corpus.num_walks == serial.num_walks
        serial_counts = collections.Counter(serial.start_nodes.tolist())
        parallel_counts = collections.Counter(corpus.start_nodes.tolist())
        assert serial_counts == parallel_counts

    def test_merged_stats_equal_sum_of_shard_stats(self, email_graph):
        config = WalkConfig(num_walks_per_node=2, max_walk_length=4)
        corpus, merged = run_parallel_walks(email_graph, config, workers=2,
                                            seed=9)
        assert merged.num_walks == corpus.num_walks
        # Every recorded step corresponds to one non-pad entry beyond
        # the start node, so the counters and corpus must agree.
        assert merged.total_steps == int((corpus.lengths - 1).sum())
        assert merged.work_per_start_node.sum() >= merged.candidates_scanned

    def test_walks_are_temporally_valid(self, tiny_graph):
        config = WalkConfig(num_walks_per_node=5, max_walk_length=4)
        corpus, _ = run_parallel_walks(tiny_graph, config, workers=2, seed=1)
        assert corpus.validate_temporal_order(tiny_graph)

    def test_fixed_seed_determinism_two_workers(self, email_graph):
        config = WalkConfig(num_walks_per_node=3, max_walk_length=5)
        a, stats_a = run_parallel_walks(email_graph, config, workers=2, seed=13)
        b, stats_b = run_parallel_walks(email_graph, config, workers=2, seed=13)
        assert np.array_equal(a.matrix, b.matrix)
        assert np.array_equal(a.lengths, b.lengths)
        assert stats_a.candidates_scanned == stats_b.candidates_scanned
        assert np.array_equal(stats_a.work_per_start_node,
                              stats_b.work_per_start_node)

    def test_explicit_start_nodes_and_invalid_workers(self, email_graph):
        config = WalkConfig(num_walks_per_node=2, max_walk_length=3)
        starts = np.arange(min(10, email_graph.num_nodes), dtype=np.int64)
        corpus, _ = run_parallel_walks(email_graph, config, workers=2,
                                       seed=3, start_nodes=starts)
        assert corpus.num_walks == 2 * len(starts)
        with pytest.raises(WalkError):
            run_parallel_walks(email_graph, config, workers=0, seed=3)


class TestParallelSgns:
    def test_workers_one_matches_batched_trainer_exactly(
        self, email_corpus, email_graph
    ):
        cfg = SgnsConfig(dim=4, epochs=1)
        parallel = ParallelSgnsTrainer(cfg, workers=1, batch_sentences=128)
        a = parallel.train(email_corpus, email_graph.num_nodes, seed=5)
        serial = BatchedSgnsTrainer(cfg, batch_sentences=128)
        b = serial.train(email_corpus, email_graph.num_nodes, seed=5)
        assert np.array_equal(a.w_in, b.w_in)
        assert np.array_equal(a.w_out, b.w_out)
        assert parallel.last_stats.mean_loss == serial.last_stats.mean_loss

    def test_workers_one_sequential_path(self, email_corpus, email_graph):
        cfg = SgnsConfig(dim=4, epochs=1)
        parallel = ParallelSgnsTrainer(cfg, workers=1, batch_sentences=None)
        a = parallel.train(email_corpus, email_graph.num_nodes, seed=5)
        serial = SequentialSgnsTrainer(cfg)
        b = serial.train(email_corpus, email_graph.num_nodes, seed=5)
        assert np.array_equal(a.w_in, b.w_in)

    def test_two_workers_deterministic_and_finite(
        self, email_corpus, email_graph
    ):
        cfg = SgnsConfig(dim=4, epochs=2)
        t1 = ParallelSgnsTrainer(cfg, workers=2, batch_sentences=64)
        m1 = t1.train(email_corpus, email_graph.num_nodes, seed=6)
        t2 = ParallelSgnsTrainer(cfg, workers=2, batch_sentences=64)
        m2 = t2.train(email_corpus, email_graph.num_nodes, seed=6)
        assert np.array_equal(m1.w_in, m2.w_in)
        assert np.isfinite(m1.w_in).all()
        stats = t1.last_stats
        assert stats.pairs_trained > 0
        assert stats.mean_loss > 0
        # Every sentence is visited once per epoch across all shards.
        sentences = sum(1 for _ in email_corpus.sentences(min_length=2))
        assert stats.sentences == cfg.epochs * sentences

    def test_invalid_workers(self):
        with pytest.raises(EmbeddingError):
            ParallelSgnsTrainer(SgnsConfig(), workers=0)

    def test_train_embeddings_workers_route(self, email_corpus, email_graph):
        emb, stats = train_embeddings(
            email_corpus, email_graph.num_nodes, SgnsConfig(dim=4, epochs=1),
            batch_sentences=64, seed=2, workers=2,
        )
        assert emb.matrix.shape == (email_graph.num_nodes, 4)
        assert stats.updates > 0
        with pytest.raises(EmbeddingError):
            train_embeddings(
                email_corpus, email_graph.num_nodes, workers=2,
                objective="hierarchical-softmax",
            )
        with pytest.raises(EmbeddingError):
            train_embeddings(email_corpus, email_graph.num_nodes, workers=0)


class TestParallelPipeline:
    def test_workers_one_bit_identical_pipeline(self, email_edges):
        serial = Pipeline(PipelineConfig(treat_undirected=True)
                          ).run_link_prediction(email_edges, seed=0)
        parallel = Pipeline(PipelineConfig(treat_undirected=True, workers=1)
                            ).run_link_prediction(email_edges, seed=0)
        assert np.array_equal(serial.embeddings.matrix,
                              parallel.embeddings.matrix)
        assert serial.accuracy == parallel.accuracy

    def test_workers_four_end_to_end(self, email_edges):
        result = Pipeline(
            PipelineConfig(treat_undirected=True, workers=4)
        ).run_link_prediction(email_edges, seed=0)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.walk_stats.num_walks == result.corpus_num_walks
        assert np.isfinite(result.embeddings.matrix).all()

    def test_invalid_workers_config(self):
        with pytest.raises(PipelineError):
            PipelineConfig(workers=0)
