"""Unit tests for graph file I/O (.wel format and labeled bundles)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.io import LabeledTemporalDataset, read_wel, write_wel
from repro.graph.edges import TemporalEdgeList


class TestWel:
    def test_round_trip(self, tiny_edges, tmp_path):
        path = tmp_path / "graph.wel"
        write_wel(tiny_edges, path)
        back = read_wel(path, normalize=False)
        assert np.array_equal(back.src, tiny_edges.src)
        assert np.array_equal(back.dst, tiny_edges.dst)
        assert np.allclose(back.timestamps, tiny_edges.timestamps)

    def test_read_normalizes_by_default(self, tmp_path):
        path = tmp_path / "g.wel"
        path.write_text("0 1 100\n1 2 300\n")
        edges = read_wel(path)
        assert edges.timestamps.tolist() == [0.0, 1.0]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.wel"
        path.write_text("# header\n\n% other comment\n0 1 0.5\n")
        assert len(read_wel(path)) == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "g.wel"
        path.write_text("0 1 0.5\n0 1\n")
        with pytest.raises(GraphFormatError, match=":2:"):
            read_wel(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "g.wel"
        path.write_text("a b c\n")
        with pytest.raises(GraphFormatError):
            read_wel(path)


class TestLabeledBundle:
    def test_round_trip(self, tmp_path, sbm_dataset):
        path = tmp_path / "ds.npz"
        sbm_dataset.save(path)
        back = LabeledTemporalDataset.load(path)
        assert back.name == sbm_dataset.name
        assert np.array_equal(back.labels, sbm_dataset.labels)
        assert np.array_equal(back.edges.src, sbm_dataset.edges.src)
        assert back.edges.num_nodes == sbm_dataset.edges.num_nodes

    def test_label_count_mismatch_rejected(self):
        edges = TemporalEdgeList([0, 1], [1, 0], [0.1, 0.2])
        with pytest.raises(GraphFormatError, match="labels"):
            LabeledTemporalDataset(name="x", edges=edges, labels=np.array([0]))

    def test_num_classes(self, sbm_dataset):
        assert sbm_dataset.num_classes == 3

    def test_load_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, src=np.array([0]))
        with pytest.raises(GraphFormatError, match="missing arrays"):
            LabeledTemporalDataset.load(path)
