"""Checkpoint store: atomic persistence, integrity, and resume identity.

Satellite coverage for the fault-tolerance issue: every phase artifact
round-trips bit-identically through :mod:`repro.checkpoint`, tampered
artifacts are rejected, and a pipeline resumed after any phase produces
the same embeddings and final metrics as an uninterrupted run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointStore,
    config_fingerprint,
    dataset_fingerprint,
    rng_restore,
    rng_snapshot,
    run_key,
)
from repro.embedding.trainer import SgnsConfig
from repro.errors import CheckpointError, PipelineError
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Sequential
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.pipeline import Pipeline, PipelineConfig
from repro.tasks.splits import stratified_node_split, temporal_edge_split
from repro.tasks.training import TrainSettings
from repro.walk.config import WalkConfig

pytestmark = pytest.mark.faults


def small_pipeline_config(**overrides) -> PipelineConfig:
    """A pipeline config small enough for per-test end-to-end runs."""
    settings = dict(
        walk=WalkConfig(num_walks_per_node=2, max_walk_length=4),
        sgns=SgnsConfig(dim=4, epochs=1),
        link_prediction=LinkPredictionConfig(
            training=TrainSettings(epochs=3)
        ),
    )
    settings.update(overrides)
    return PipelineConfig(**settings)


# ---------------------------------------------------------------------------
# RNG snapshots
# ---------------------------------------------------------------------------


def test_rng_snapshot_restores_future_draws():
    rng = np.random.default_rng(123)
    rng.random(10)
    snap = rng_snapshot(rng)
    expected = rng.random(100)
    restored = rng_restore(snap)
    np.testing.assert_array_equal(restored.random(100), expected)


def test_rng_snapshot_restores_future_spawns():
    rng = np.random.default_rng(99)
    bg = rng.bit_generator
    bg.seed_seq.spawn(3)  # consume some children before the snapshot
    snap = rng_snapshot(rng)
    expected = [ss.generate_state(4) for ss in bg.seed_seq.spawn(2)]
    restored = rng_restore(snap)
    got = [ss.generate_state(4)
           for ss in restored.bit_generator.seed_seq.spawn(2)]
    for a, b in zip(expected, got):
        np.testing.assert_array_equal(a, b)


def test_rng_snapshot_is_json_serializable():
    import json

    snap = rng_snapshot(np.random.default_rng(5))
    rebuilt = json.loads(json.dumps(snap))
    np.testing.assert_array_equal(
        rng_restore(rebuilt).random(8), rng_restore(snap).random(8)
    )


@pytest.mark.parametrize("bit_generator", ["MT19937", "Philox", "SFC64"])
def test_rng_snapshot_json_roundtrip_non_default_bit_generators(
    bit_generator,
):
    """MT19937/Philox states hold ndarrays/uint64s; snapshots must still
    be JSON-clean and restore to an identical stream."""
    import json

    cls = getattr(np.random, bit_generator)
    rng = np.random.Generator(cls(np.random.SeedSequence(7)))
    rng.random(11)  # advance so the state is nontrivial
    snap = rng_snapshot(rng)
    rebuilt = json.loads(json.dumps(snap))  # must not raise TypeError
    expected = rng.random(64)
    np.testing.assert_array_equal(rng_restore(rebuilt).random(64), expected)


# ---------------------------------------------------------------------------
# Fingerprints and run keys
# ---------------------------------------------------------------------------


def test_fingerprint_ignores_non_semantic_fields(tmp_path):
    from repro.parallel import SupervisorConfig

    base = small_pipeline_config()
    decorated = small_pipeline_config(
        checkpoint_dir=str(tmp_path),
        supervisor=SupervisorConfig(shard_timeout=1.0, max_retries=5),
    )
    assert config_fingerprint(base) == config_fingerprint(decorated)


def test_fingerprint_tracks_semantic_fields():
    a = small_pipeline_config()
    b = small_pipeline_config(
        walk=WalkConfig(num_walks_per_node=3, max_walk_length=4)
    )
    assert config_fingerprint(a) != config_fingerprint(b)


def test_run_key_depends_on_seed():
    cfg = small_pipeline_config()
    key5 = run_key(cfg, np.random.default_rng(5))
    key6 = run_key(cfg, np.random.default_rng(6))
    assert key5 != key6
    assert key5 == run_key(cfg, np.random.default_rng(5))


def test_dataset_fingerprint_tracks_graph_contents(email_edges):
    from repro.graph.edges import TemporalEdgeList

    fp = dataset_fingerprint(email_edges)
    assert fp == dataset_fingerprint(email_edges)  # deterministic
    perturbed = TemporalEdgeList(
        email_edges.src, email_edges.dst, email_edges.timestamps + 1.0,
        num_nodes=email_edges.num_nodes,
    )
    assert fp != dataset_fingerprint(perturbed)
    widened = TemporalEdgeList(
        email_edges.src, email_edges.dst, email_edges.timestamps,
        num_nodes=email_edges.num_nodes + 1,
    )
    assert fp != dataset_fingerprint(widened)


def test_run_key_depends_on_dataset(email_edges):
    from repro.graph.edges import TemporalEdgeList

    cfg = small_pipeline_config()
    with_data = run_key(cfg, np.random.default_rng(5), dataset=email_edges)
    other = TemporalEdgeList(
        email_edges.src, email_edges.dst, email_edges.timestamps + 1.0,
        num_nodes=email_edges.num_nodes,
    )
    assert with_data != run_key(cfg, np.random.default_rng(5), dataset=other)
    assert with_data == run_key(
        cfg, np.random.default_rng(5), dataset=email_edges
    )


# ---------------------------------------------------------------------------
# Artifact roundtrips
# ---------------------------------------------------------------------------


def test_walks_roundtrip_bit_identical(tmp_path, email_corpus,
                                       email_walk_stats):
    store = CheckpointStore(tmp_path, "run")
    store.save_walks(email_corpus, email_walk_stats)
    corpus, stats = store.load_walks()
    np.testing.assert_array_equal(corpus.matrix, email_corpus.matrix)
    np.testing.assert_array_equal(corpus.lengths, email_corpus.lengths)
    np.testing.assert_array_equal(corpus.start_nodes,
                                  email_corpus.start_nodes)
    assert stats.num_walks == email_walk_stats.num_walks
    assert stats.total_steps == email_walk_stats.total_steps
    assert stats.candidates_scanned == email_walk_stats.candidates_scanned
    np.testing.assert_array_equal(stats.work_per_start_node,
                                  email_walk_stats.work_per_start_node)


def test_embeddings_roundtrip_bit_identical(tmp_path, email_corpus,
                                            email_graph):
    from repro.embedding import train_embeddings

    embeddings, stats = train_embeddings(
        email_corpus, email_graph.num_nodes,
        config=SgnsConfig(dim=4, epochs=2), seed=3,
    )
    store = CheckpointStore(tmp_path, "run")
    store.save_embeddings(embeddings, stats)
    loaded, loaded_stats = store.load_embeddings()
    np.testing.assert_array_equal(loaded.matrix, embeddings.matrix)
    assert loaded_stats.pairs_trained == stats.pairs_trained
    assert loaded_stats.mean_loss == stats.mean_loss
    assert loaded_stats.losses == stats.losses


def test_edge_splits_roundtrip(tmp_path, email_edges):
    splits = temporal_edge_split(email_edges, seed=4)
    store = CheckpointStore(tmp_path, "run")
    store.save_splits(splits)
    loaded = store.load_splits()
    for part in ("train", "valid", "test"):
        orig = getattr(splits, part)
        got = getattr(loaded, part)
        np.testing.assert_array_equal(got.src, orig.src)
        np.testing.assert_array_equal(got.dst, orig.dst)
        np.testing.assert_array_equal(got.timestamps, orig.timestamps)


def test_node_splits_roundtrip(tmp_path, sbm_dataset):
    splits = stratified_node_split(sbm_dataset.labels, seed=8)
    store = CheckpointStore(tmp_path, "run")
    store.save_splits(splits)
    loaded = store.load_splits()
    for part in ("train", "valid", "test"):
        np.testing.assert_array_equal(getattr(loaded, part),
                                      getattr(splits, part))


def test_classifier_roundtrip_restores_parameters(tmp_path):
    def build():
        return Sequential(
            Linear(6, 4, seed=17), ReLU(), Linear(4, 2, seed=18)
        )

    model = build()
    reference = [p.data.copy() for p in model.parameters()]
    store = CheckpointStore(tmp_path, "run")
    store.save_classifier(model)

    other = build()
    for p in other.parameters():  # perturb so restoration is observable
        p.data += 1.0
    store.load_classifier_into(other)
    for param, expected in zip(other.parameters(), reference):
        np.testing.assert_array_equal(param.data, expected)


def test_classifier_shape_mismatch_raises(tmp_path):
    store = CheckpointStore(tmp_path, "run")
    store.save_classifier(Sequential(Linear(6, 4, seed=1)))
    with pytest.raises(CheckpointError, match="shape mismatch"):
        store.load_classifier_into(Sequential(Linear(5, 4, seed=1)))


# ---------------------------------------------------------------------------
# Integrity and manifest mechanics
# ---------------------------------------------------------------------------


def test_tampered_artifact_fails_integrity_check(tmp_path, email_corpus,
                                                 email_walk_stats):
    store = CheckpointStore(tmp_path, "run")
    store.save_walks(email_corpus, email_walk_stats)
    artifact = store.run_dir / "walks.npz"
    artifact.write_bytes(b"garbage" + artifact.read_bytes()[7:])
    with pytest.raises(CheckpointError, match="integrity"):
        store.load_walks()


def test_has_and_invalidate(tmp_path, email_corpus, email_walk_stats):
    store = CheckpointStore(tmp_path, "run")
    assert not store.has("walks")
    store.save_walks(email_corpus, email_walk_stats)
    assert store.has("walks")
    assert store.phases() == {"walks": "complete"}
    store.invalidate("walks")
    assert not store.has("walks")
    assert not (store.run_dir / "walks.npz").exists()


def test_missing_phase_raises(tmp_path):
    store = CheckpointStore(tmp_path, "run")
    with pytest.raises(CheckpointError, match="not checkpointed"):
        store.load_arrays("embeddings")
    with pytest.raises(CheckpointError, match="no rng snapshot"):
        store.load_rng("walks")


def test_save_splits_rejects_unknown_type(tmp_path):
    store = CheckpointStore(tmp_path, "run")
    with pytest.raises(CheckpointError, match="cannot checkpoint splits"):
        store.save_splits(object())


def test_rng_restore_rejects_bad_snapshot():
    from repro.checkpoint import rng_restore as restore

    with pytest.raises(CheckpointError, match="invalid rng snapshot"):
        restore({"bit_generator": "PCG64"})


def test_resume_requires_checkpoint_dir():
    with pytest.raises(PipelineError, match="requires checkpoint_dir"):
        small_pipeline_config(resume=True)


# ---------------------------------------------------------------------------
# Pipeline resume: bit-identical at every boundary
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def reference_run(email_edges):
    """One uninterrupted small run; the gold standard for resume tests."""
    return Pipeline(small_pipeline_config()).run_link_prediction(
        email_edges, seed=5
    )


def test_fresh_checkpointed_run_matches_plain_run(tmp_path, email_edges,
                                                  reference_run):
    result = Pipeline(
        small_pipeline_config(checkpoint_dir=str(tmp_path))
    ).run_link_prediction(email_edges, seed=5)
    assert result.cached_phases == ()
    assert result.accuracy == reference_run.accuracy
    np.testing.assert_array_equal(result.embeddings.matrix,
                                  reference_run.embeddings.matrix)


@pytest.mark.parametrize("kept_phases,expected_cached", [
    (("walks",), ("walks",)),
    (("walks", "embeddings"), ("walks", "embeddings")),
    (("walks", "embeddings", "task-link-prediction"),
     ("walks", "embeddings", "task-link-prediction")),
])
def test_resume_after_each_phase_is_bit_identical(
    tmp_path, email_edges, reference_run, kept_phases, expected_cached
):
    """Resume from any phase boundary == the uninterrupted run."""
    ck = str(tmp_path)
    Pipeline(
        small_pipeline_config(checkpoint_dir=ck)
    ).run_link_prediction(email_edges, seed=5)

    # Simulate a run that died after the last kept phase by dropping the
    # later artifacts; resume must recompute exactly those.
    rng = np.random.default_rng(5)
    store = CheckpointStore.open(ck, small_pipeline_config(), rng,
                                 dataset=email_edges)
    for phase in ("walks", "embeddings", "task-link-prediction"):
        if phase not in kept_phases:
            store.invalidate(phase)

    resumed = Pipeline(
        small_pipeline_config(checkpoint_dir=ck, resume=True)
    ).run_link_prediction(email_edges, seed=5)
    assert resumed.cached_phases == expected_cached
    assert resumed.accuracy == reference_run.accuracy
    assert resumed.task_result.auc == reference_run.task_result.auc
    np.testing.assert_array_equal(resumed.embeddings.matrix,
                                  reference_run.embeddings.matrix)


def test_resume_with_different_seed_recomputes(tmp_path, email_edges):
    ck = str(tmp_path)
    Pipeline(
        small_pipeline_config(checkpoint_dir=ck)
    ).run_link_prediction(email_edges, seed=5)
    other = Pipeline(
        small_pipeline_config(checkpoint_dir=ck, resume=True)
    ).run_link_prediction(email_edges, seed=6)
    assert other.cached_phases == ()


def test_resume_with_different_dataset_recomputes(tmp_path, email_edges):
    """Same config+seed on a different edge list must not reuse artifacts."""
    from repro.graph.edges import TemporalEdgeList

    ck = str(tmp_path)
    Pipeline(
        small_pipeline_config(checkpoint_dir=ck)
    ).run_link_prediction(email_edges, seed=5)
    shuffled = TemporalEdgeList(
        email_edges.src[::-1].copy(), email_edges.dst[::-1].copy(),
        email_edges.timestamps[::-1].copy(),
        num_nodes=email_edges.num_nodes,
    )
    other = Pipeline(
        small_pipeline_config(checkpoint_dir=ck, resume=True)
    ).run_link_prediction(shuffled, seed=5)
    assert other.cached_phases == ()


def test_open_rejects_identity_mismatch(tmp_path, email_edges):
    """A run dir whose stored fingerprints disagree with the caller's
    raises instead of serving another experiment's artifacts."""
    cfg = small_pipeline_config()
    rng_state = np.random.default_rng(5)
    store = CheckpointStore.open(tmp_path, cfg, rng_state,
                                 dataset=email_edges)
    with pytest.raises(CheckpointError, match="different run"):
        CheckpointStore(
            tmp_path, store.key,
            meta={"dataset_fingerprint": "0" * 64},
        )
    with pytest.raises(CheckpointError, match="different run"):
        CheckpointStore(
            tmp_path, store.key,
            meta={"config_fingerprint": "f" * 64},
        )
    # Reopening with the true identity still works.
    CheckpointStore.open(tmp_path, cfg, np.random.default_rng(5),
                         dataset=email_edges)


def test_resume_with_different_config_recomputes(tmp_path, email_edges):
    ck = str(tmp_path)
    Pipeline(
        small_pipeline_config(checkpoint_dir=ck)
    ).run_link_prediction(email_edges, seed=5)
    other = Pipeline(
        small_pipeline_config(
            checkpoint_dir=ck, resume=True,
            walk=WalkConfig(num_walks_per_node=3, max_walk_length=4),
        )
    ).run_link_prediction(email_edges, seed=5)
    assert other.cached_phases == ()


def test_task_phase_checkpoints_splits_and_classifier(tmp_path, email_edges):
    ck = str(tmp_path)
    result = Pipeline(
        small_pipeline_config(checkpoint_dir=ck)
    ).run_link_prediction(email_edges, seed=5)
    store = CheckpointStore.open(ck, small_pipeline_config(),
                                 np.random.default_rng(5),
                                 dataset=email_edges)
    # Auxiliary artifacts are namespaced per task so a second task type
    # against the same store cannot clobber them.
    assert store.has("splits-link-prediction")
    assert store.has("classifier-link-prediction")
    loaded = store.load_splits(phase="splits-link-prediction")
    np.testing.assert_array_equal(loaded.train.src,
                                  result.task_result.splits.train.src)
    restored = store.load_classifier_into(
        result.task_result.model, phase="classifier-link-prediction"
    )
    for param, expected in zip(restored.parameters(),
                               result.task_result.model.parameters()):
        np.testing.assert_array_equal(param.data, expected.data)


def test_parallel_run_resume_bit_identical(tmp_path, email_edges):
    """workers=2 checkpoints and resumes exactly like the serial path."""
    cfg = small_pipeline_config(workers=2, checkpoint_dir=str(tmp_path))
    first = Pipeline(cfg).run_link_prediction(email_edges, seed=5)
    resumed = Pipeline(
        small_pipeline_config(workers=2, checkpoint_dir=str(tmp_path),
                              resume=True)
    ).run_link_prediction(email_edges, seed=5)
    assert resumed.cached_phases == (
        "walks", "embeddings", "task-link-prediction"
    )
    assert resumed.accuracy == first.accuracy
    np.testing.assert_array_equal(resumed.embeddings.matrix,
                                  first.embeddings.matrix)
