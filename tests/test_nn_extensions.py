"""Unit tests for nn extensions: Adam, Dropout, shared negatives."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Adam, Dropout, Linear, ReLU, Sequential
from repro.nn.module import Parameter


def make_param(value=0.0, grad=0.0):
    p = Parameter(np.array([float(value)]))
    p.grad[:] = grad
    return p


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.05)
        for _ in range(500):
            p.grad[:] = 2 * (p.data - 3.0)
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step is ~lr regardless of
        # gradient scale.
        for grad in (0.001, 1000.0):
            p = make_param(grad=grad)
            Adam([p], lr=0.01).step()
            assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_weight_decay(self):
        p = make_param(value=10.0, grad=0.0)
        opt = Adam([p], lr=0.1, weight_decay=0.1)
        opt.step()
        assert p.data[0] < 10.0

    def test_invalid_params(self):
        with pytest.raises(TrainingError):
            Adam([], lr=0.1)
        with pytest.raises(TrainingError):
            Adam([make_param()], lr=0.0)
        with pytest.raises(TrainingError):
            Adam([make_param()], betas=(1.0, 0.999))

    def test_trains_faster_than_untuned_sgd_on_ill_scaled_problem(self):
        # f(x, y) = x^2 + 100 y^2: Adam's per-coordinate scaling copes.
        from repro.nn import SGD

        def run(optimizer_cls, **kwargs):
            p = Parameter(np.array([1.0, 1.0]))
            opt = optimizer_cls([p], **kwargs)
            for _ in range(200):
                p.grad[:] = np.array([2 * p.data[0], 200 * p.data[1]])
                opt.step()
            return float(np.abs(p.data).sum())

        adam_error = run(Adam, lr=0.05)
        sgd_error = run(SGD, lr=0.001)
        assert adam_error < sgd_error


class TestDropout:
    def test_invalid_rate(self):
        with pytest.raises(TrainingError):
            Dropout(rate=1.0)

    def test_eval_is_identity(self):
        layer = Dropout(rate=0.5, seed=1)
        layer.eval()
        x = np.ones((4, 4))
        assert np.array_equal(layer.forward(x), x)
        assert np.array_equal(layer.backward(x), x)

    def test_train_zeroes_and_scales(self):
        layer = Dropout(rate=0.5, seed=2)
        x = np.ones((1000, 1))
        out = layer.forward(x)
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling 1/keep
        assert 0.35 < np.mean(out != 0) < 0.65

    def test_expected_value_preserved(self):
        layer = Dropout(rate=0.3, seed=3)
        x = np.ones((20000, 1))
        assert layer.forward(x).mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        layer = Dropout(rate=0.5, seed=4)
        x = np.ones((100, 1))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad != 0, out != 0)

    def test_zero_rate_is_identity(self):
        layer = Dropout(rate=0.0)
        x = np.random.default_rng(0).random((5, 5))
        assert np.array_equal(layer.forward(x), x)

    def test_composes_in_sequential(self):
        model = Sequential(Linear(4, 8, seed=1), ReLU(), Dropout(0.2, seed=2),
                           Linear(8, 1, seed=3))
        out = model.forward(np.ones((3, 4)))
        assert out.shape == (3, 1)
        model.backward(np.ones((3, 1)))  # must not raise


class TestSharedNegatives:
    def test_whole_batch_sharing_starves_contrast(self, email_corpus,
                                                  email_graph):
        # The documented caveat: sharing one negative set across a
        # multi-thousand-pair batch gives only K rows per batch any
        # negative gradient, so the objective loses contrast and the
        # per-pair sampler converges decisively better.
        from repro.embedding import BatchedSgnsTrainer, SgnsConfig

        results = {}
        for shared in (False, True):
            config = SgnsConfig(dim=8, epochs=3, shared_negatives=shared)
            trainer = BatchedSgnsTrainer(config, batch_sentences=256)
            model = trainer.train(email_corpus, email_graph.num_nodes,
                                  seed=1)
            results[shared] = trainer.last_stats
            assert np.isfinite(model.w_in).all()
        assert results[False].losses[-1] < results[False].losses[0] - 0.3
        assert results[False].losses[-1] < results[True].losses[-1] - 0.3
