"""Unit tests for TemporalEdgeList and TemporalEdge."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.edges import TemporalEdge, TemporalEdgeList


class TestTemporalEdge:
    def test_fields(self):
        e = TemporalEdge(1, 2, 0.5)
        assert (e.src, e.dst, e.timestamp) == (1, 2, 0.5)

    def test_reversed_swaps_endpoints_keeps_timestamp(self):
        e = TemporalEdge(1, 2, 0.5).reversed()
        assert (e.src, e.dst, e.timestamp) == (2, 1, 0.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TemporalEdge(1, 2, 0.5).src = 3


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphError, match="equal length"):
            TemporalEdgeList([0, 1], [1], [0.1, 0.2])

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphError, match="non-negative"):
            TemporalEdgeList([-1], [0], [0.1])

    def test_num_nodes_inferred_from_max_id(self):
        edges = TemporalEdgeList([0, 5], [3, 2], [0.1, 0.2])
        assert edges.num_nodes == 6

    def test_explicit_num_nodes_allows_isolated_tail(self):
        edges = TemporalEdgeList([0], [1], [0.1], num_nodes=10)
        assert edges.num_nodes == 10

    def test_num_nodes_smaller_than_ids_rejected(self):
        with pytest.raises(GraphError, match="smaller than max node id"):
            TemporalEdgeList([0, 5], [3, 2], [0.1, 0.2], num_nodes=3)

    def test_from_edges_accepts_tuples_and_objects(self):
        edges = TemporalEdgeList.from_edges(
            [(0, 1, 0.1), TemporalEdge(1, 2, 0.2)]
        )
        assert len(edges) == 2
        assert edges[1] == TemporalEdge(1, 2, 0.2)

    def test_from_edges_empty(self):
        edges = TemporalEdgeList.from_edges([])
        assert len(edges) == 0
        assert edges.num_nodes == 0

    def test_concatenate(self):
        a = TemporalEdgeList([0], [1], [0.1], num_nodes=5)
        b = TemporalEdgeList([2], [3], [0.2], num_nodes=7)
        merged = TemporalEdgeList.concatenate([a, b])
        assert len(merged) == 2
        assert merged.num_nodes == 7

    def test_concatenate_empty_list(self):
        assert len(TemporalEdgeList.concatenate([])) == 0


class TestProtocols:
    def test_iteration_yields_edges(self, tiny_edges):
        items = list(tiny_edges)
        assert len(items) == len(tiny_edges)
        assert all(isinstance(e, TemporalEdge) for e in items)

    def test_indexing(self, tiny_edges):
        assert tiny_edges[0] == TemporalEdge(0, 1, 0.1)

    def test_repr_contains_counts(self, tiny_edges):
        assert "num_edges=8" in repr(tiny_edges)


class TestTransformations:
    def test_sorted_by_time(self, tiny_edges):
        ordered = tiny_edges.sorted_by_time()
        assert ordered.is_time_sorted()
        assert len(ordered) == len(tiny_edges)

    def test_sort_is_stable_for_ties(self):
        edges = TemporalEdgeList([0, 1, 2], [1, 2, 0], [0.5, 0.5, 0.5])
        ordered = edges.sorted_by_time()
        assert ordered.src.tolist() == [0, 1, 2]

    def test_normalize_timestamps_to_unit_range(self):
        edges = TemporalEdgeList([0, 0, 0], [1, 1, 1], [100.0, 150.0, 200.0])
        norm = edges.with_normalized_timestamps()
        assert norm.timestamps.tolist() == [0.0, 0.5, 1.0]

    def test_normalize_constant_timestamps_gives_zeros(self):
        edges = TemporalEdgeList([0, 1], [1, 0], [7.0, 7.0])
        assert edges.with_normalized_timestamps().timestamps.tolist() == [0, 0]

    def test_reverse_edges_doubles_count(self, tiny_edges):
        doubled = tiny_edges.with_reverse_edges()
        assert len(doubled) == 2 * len(tiny_edges)
        keys = doubled.edge_key_set()
        assert (1, 0) in keys and (0, 1) in keys

    def test_filter_time_range(self, tiny_edges):
        kept = tiny_edges.filter_time_range(0.2, 0.5)
        assert np.all(kept.timestamps >= 0.2)
        assert np.all(kept.timestamps <= 0.5)

    def test_split_at_fraction_partitions_chronologically(self, tiny_edges):
        early, late = tiny_edges.split_at_fraction(0.75)
        assert len(early) + len(late) == len(tiny_edges)
        assert early.timestamps.max() <= late.timestamps.min()

    def test_split_fraction_out_of_range_rejected(self, tiny_edges):
        with pytest.raises(GraphError):
            tiny_edges.split_at_fraction(1.5)

    def test_take_preserves_order(self, tiny_edges):
        sub = tiny_edges.take(np.array([3, 0]))
        assert sub[0] == tiny_edges[3]
        assert sub[1] == tiny_edges[0]


class TestQueries:
    def test_edge_key_set_collapses_multiedges(self, tiny_edges):
        keys = tiny_edges.edge_key_set()
        assert (0, 1) in keys
        # 8 edges but (0,1) appears twice.
        assert len(keys) == 7

    def test_time_span(self, tiny_edges):
        assert tiny_edges.time_span() == pytest.approx(0.9 - 0.05)

    def test_time_span_empty(self):
        assert TemporalEdgeList([], [], []).time_span() == 0.0

    def test_is_time_sorted(self, tiny_edges):
        assert not tiny_edges.is_time_sorted()
        assert tiny_edges.sorted_by_time().is_time_sorted()
