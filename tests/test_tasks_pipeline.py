"""Integration tests for the end-to-end pipeline (Fig. 1)."""

import numpy as np
import pytest

from repro.embedding import SgnsConfig
from repro.tasks import Pipeline, PipelineConfig
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.node_classification import NodeClassificationConfig
from repro.tasks.training import TrainSettings
from repro.walk import WalkConfig


FAST_TRAIN = TrainSettings(epochs=6, learning_rate=0.05)


@pytest.fixture(scope="module")
def fast_config():
    return PipelineConfig(
        walk=WalkConfig(num_walks_per_node=4, max_walk_length=6),
        sgns=SgnsConfig(dim=8, epochs=2),
        treat_undirected=True,
        link_prediction=LinkPredictionConfig(training=FAST_TRAIN),
        node_classification=NodeClassificationConfig(training=FAST_TRAIN),
    )


class TestLinkPredictionPipeline:
    @pytest.fixture(scope="class")
    def result(self, fast_config, email_edges):
        return Pipeline(fast_config).run_link_prediction(email_edges, seed=1)

    def test_accuracy_beats_chance(self, result):
        assert result.accuracy > 0.6

    def test_all_phases_timed(self, result):
        t = result.timings
        assert t.rwalk > 0
        assert t.word2vec > 0
        assert t.data_prep > 0
        assert t.train > 0
        assert t.total == pytest.approx(
            t.rwalk + t.word2vec + t.data_prep + t.train + t.test
        )

    def test_train_per_epoch(self, result):
        assert result.timings.train_epochs == 6
        assert result.timings.train_per_epoch == pytest.approx(
            result.timings.train / 6
        )

    def test_stats_attached(self, result):
        assert result.walk_stats.num_walks == result.corpus_num_walks
        assert result.trainer_stats.pairs_trained > 0
        assert result.embeddings.dim == 8

    def test_summary_mentions_phases(self, result):
        assert "rwalk" in result.summary()


class TestNodeClassificationPipeline:
    def test_runs_on_labeled_dataset(self, sbm_dataset):
        # The 150-node SBM needs more walk/SGNS/classifier budget than
        # the fast LP config to rise above chance.
        config = PipelineConfig(
            walk=WalkConfig(num_walks_per_node=8, max_walk_length=6),
            sgns=SgnsConfig(dim=8, epochs=5),
            treat_undirected=True,
            node_classification=NodeClassificationConfig(
                training=TrainSettings(epochs=25, learning_rate=0.05)
            ),
        )
        result = Pipeline(config).run_node_classification(sbm_dataset, seed=2)
        chance = (
            np.bincount(sbm_dataset.labels).max() / len(sbm_dataset.labels)
        )
        assert result.accuracy > chance

    def test_task_name(self, fast_config, sbm_dataset):
        result = Pipeline(fast_config).run_node_classification(
            sbm_dataset, seed=2
        )
        assert result.task_result.task == "node-classification"


class TestLinkPropertyPipeline:
    def test_runs(self, fast_config, email_edges):
        labels = (email_edges.src % 2 == email_edges.dst % 2).astype(np.int64)
        result = Pipeline(fast_config).run_link_property_prediction(
            email_edges, labels, seed=3
        )
        assert result.task_result.task == "link-property-prediction"
        assert result.timings.rwalk > 0


class TestPipelineConfigKnobs:
    def test_directed_by_default(self, email_edges):
        cfg = PipelineConfig(
            walk=WalkConfig(num_walks_per_node=2, max_walk_length=4),
            sgns=SgnsConfig(dim=4, epochs=1),
        )
        pipe = Pipeline(cfg)
        emb, timings, walk_stats, _, corpus = pipe.embed(email_edges, seed=4)
        # Directed walks on an interaction graph terminate early.
        assert corpus.lengths.mean() < 4.0

    def test_undirected_walks_live_longer(self, email_edges):
        base = dict(walk=WalkConfig(num_walks_per_node=2, max_walk_length=4),
                    sgns=SgnsConfig(dim=4, epochs=1))
        directed = Pipeline(PipelineConfig(**base)).embed(email_edges, seed=4)
        undirected = Pipeline(
            PipelineConfig(treat_undirected=True, **base)
        ).embed(email_edges, seed=4)
        assert undirected[4].lengths.mean() > directed[4].lengths.mean()

    def test_sequential_trainer_path(self, email_edges):
        cfg = PipelineConfig(
            walk=WalkConfig(num_walks_per_node=1, max_walk_length=4),
            sgns=SgnsConfig(dim=4, epochs=1),
            batch_sentences=None,
        )
        emb, _, _, stats, _ = Pipeline(cfg).embed(email_edges, seed=5)
        assert stats.updates == stats.sentences

    def test_gumbel_sampler_path(self, email_edges):
        cfg = PipelineConfig(
            walk=WalkConfig(num_walks_per_node=1, max_walk_length=4),
            sgns=SgnsConfig(dim=4, epochs=1),
            sampler="gumbel",
        )
        emb, _, walk_stats, _, _ = Pipeline(cfg).embed(email_edges, seed=6)
        assert walk_stats.total_steps > 0
