"""Unit tests for the NodeEmbeddings result object."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.embedding.embeddings import NodeEmbeddings


@pytest.fixture()
def embeddings() -> NodeEmbeddings:
    matrix = np.array([
        [1.0, 0.0],
        [0.9, 0.1],
        [0.0, 1.0],
        [0.0, 0.0],
    ])
    return NodeEmbeddings(matrix)


class TestBasics:
    def test_shape_properties(self, embeddings):
        assert embeddings.num_nodes == 4
        assert embeddings.dim == 2

    def test_rejects_1d(self):
        with pytest.raises(EmbeddingError):
            NodeEmbeddings(np.array([1.0, 2.0]))

    def test_vector_lookup(self, embeddings):
        assert embeddings.vector(2).tolist() == [0.0, 1.0]

    def test_vectors_batch(self, embeddings):
        out = embeddings.vectors(np.array([0, 2]))
        assert out.shape == (2, 2)

    def test_edge_features_concatenate(self, embeddings):
        feats = embeddings.edge_features(np.array([0]), np.array([2]))
        assert feats.tolist() == [[1.0, 0.0, 0.0, 1.0]]


class TestSimilarity:
    def test_cosine_parallel(self, embeddings):
        assert embeddings.cosine_similarity(0, 1) == pytest.approx(
            0.9 / np.sqrt(0.82), rel=1e-6
        )

    def test_cosine_orthogonal(self, embeddings):
        assert embeddings.cosine_similarity(0, 2) == 0.0

    def test_cosine_zero_vector_is_zero(self, embeddings):
        assert embeddings.cosine_similarity(0, 3) == 0.0

    def test_most_similar_order(self, embeddings):
        top = embeddings.most_similar(0, k=2)
        assert top[0][0] == 1  # nearly parallel neighbor first
        assert all(node != 0 for node, _ in top)

    def test_most_similar_k_bound(self, embeddings):
        assert len(embeddings.most_similar(0, k=10)) == 4


class TestPersistence:
    def test_save_load_round_trip(self, embeddings, tmp_path):
        path = tmp_path / "emb.npz"
        embeddings.save(path)
        back = NodeEmbeddings.load(path)
        assert np.allclose(back.matrix, embeddings.matrix)

    def test_load_missing_matrix_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(EmbeddingError):
            NodeEmbeddings.load(path)
