"""Tests for the sharded scatter/gather serving tier
(:mod:`repro.serving.sharding`).

The load-bearing contracts, each pinned here against the only ground
truth that matters — the single-process serving stack:

- **oracle bit-identicality**: ``ShardedFrontend.top_k`` returns the
  same ids, the same score *bits*, and the same lower-id tie-breaks as
  a :class:`~repro.serving.index.RecommendationIndex` over the
  unsharded matrix, for every plan strategy and shard count tested
  (including duplicate-row tie pileups and per-shard IVF at full
  probe);
- **version atomicity**: with publishes racing a reader, every gather
  matches exactly one published matrix's oracle — a response mixing two
  versions across shards is impossible by construction;
- **degraded reads**: killing a worker leaves the tier answering from
  the surviving shards (the oracle restricted to surviving rows), with
  ``serving.shard.degraded_queries`` counting every partial gather.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ServingError
from repro.observability import Recorder, use_recorder
from repro.serving import (
    EmbeddingStore,
    IvfConfig,
    RecommendationIndex,
    ShardPlan,
    ShardedFrontend,
    ShardedPublisher,
    ShardedServingConfig,
    run_load,
)

pytestmark = pytest.mark.shards


def make_store(matrix: np.ndarray, generation: int = 0) -> EmbeddingStore:
    store = EmbeddingStore()
    store.publish(matrix, generation=generation)
    return store


def oracle_for(matrix: np.ndarray, metric: str = "dot",
               generation: int = 0) -> RecommendationIndex:
    return RecommendationIndex(make_store(matrix, generation),
                               cache_size=0, metric=metric)


def sharded(plan: ShardPlan, store: EmbeddingStore,
            config: ShardedServingConfig | None = None) -> ShardedFrontend:
    frontend = ShardedFrontend(plan, config).start()
    ShardedPublisher(frontend).attach(store)
    return frontend


class TestShardPlan:
    def test_hash_and_range_partition_the_id_space(self):
        for strategy in ("hash", "range"):
            plan = ShardPlan(4, strategy)
            owned = [plan.owned_ids(s, 1000) for s in range(4)]
            joined = np.concatenate(owned)
            np.testing.assert_array_equal(np.sort(joined), np.arange(1000))
            for shard, ids in enumerate(owned):
                # owned_ids ascending is what makes local row order
                # equal global id order (the tie-break transport).
                assert np.all(np.diff(ids) > 0) or len(ids) < 2
                np.testing.assert_array_equal(
                    plan.shard_of_many(ids, 1000), shard)

    def test_range_plan_rebalances_with_node_growth(self):
        plan = ShardPlan(3, "range")
        small = [len(plan.owned_ids(s, 90)) for s in range(3)]
        grown = [len(plan.owned_ids(s, 900)) for s in range(3)]
        assert small == [30, 30, 30]
        assert grown == [300, 300, 300]

    def test_hash_assignment_is_stable_under_growth(self):
        plan = ShardPlan(4, "hash")
        before = plan.shard_of_many(np.arange(100), 100)
        after = plan.shard_of_many(np.arange(100), 10_000)
        np.testing.assert_array_equal(before, after)

    def test_rejects_bad_plans(self):
        with pytest.raises(ServingError):
            ShardPlan(0, "hash")
        with pytest.raises(ServingError):
            ShardPlan(2, "modulo")
        with pytest.raises(ServingError):
            ShardPlan(2, "hash").owned_ids(2, 10)


class TestOracleBitIdenticality:
    @pytest.mark.parametrize("strategy", ["hash", "range"])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_topk_matches_single_process_oracle(self, strategy, num_shards):
        rng = np.random.default_rng(11)
        matrix = rng.standard_normal((157, 12))
        oracle = oracle_for(matrix)
        plan = ShardPlan(num_shards, strategy)
        with sharded(plan, make_store(matrix)) as frontend:
            for node in (0, 1, 78, 155, 156):
                ids, scores = frontend.top_k(node, 13)
                expected_ids, expected_scores = oracle.top_k(node, 13)
                np.testing.assert_array_equal(ids, expected_ids)
                # Bitwise, not allclose: the shard slices must score
                # exactly like the full-matrix scan.
                np.testing.assert_array_equal(scores, expected_scores)

    @pytest.mark.parametrize("strategy", ["hash", "range"])
    def test_cosine_metric_matches_oracle(self, strategy):
        rng = np.random.default_rng(5)
        matrix = rng.standard_normal((90, 6))
        matrix[17] = 0.0  # zero row: the norm-guard path
        oracle = oracle_for(matrix, metric="cosine")
        plan = ShardPlan(3, strategy)
        config = ShardedServingConfig(metric="cosine")
        with sharded(plan, make_store(matrix), config) as frontend:
            for node in (0, 17, 89):
                ids, scores = frontend.top_k(node, 7)
                expected_ids, expected_scores = oracle.top_k(node, 7)
                np.testing.assert_array_equal(ids, expected_ids)
                np.testing.assert_array_equal(scores, expected_scores)

    @pytest.mark.parametrize("strategy", ["hash", "range"])
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_duplicate_row_ties_break_by_global_id(self, strategy,
                                                   num_shards):
        """Duplicate rows land on *different* shards; the merge must
        still admit exactly the lowest-global-id ties the oracle does.
        """
        rng = np.random.default_rng(7)
        prototypes = rng.standard_normal((4, 5))
        matrix = prototypes[rng.integers(0, 4, size=120)]
        oracle = oracle_for(matrix)
        plan = ShardPlan(num_shards, strategy)
        with sharded(plan, make_store(matrix)) as frontend:
            for node in (0, 11, 64, 119):
                ids, scores = frontend.top_k(node, 30)
                expected_ids, expected_scores = oracle.top_k(node, 30)
                np.testing.assert_array_equal(ids, expected_ids)
                np.testing.assert_array_equal(scores, expected_scores)

    def test_k_larger_than_store_clamps_like_oracle(self):
        rng = np.random.default_rng(3)
        matrix = rng.standard_normal((9, 4))
        oracle = oracle_for(matrix)
        with sharded(ShardPlan(4, "hash"), make_store(matrix)) as frontend:
            ids, scores = frontend.top_k(2, 50)
            expected_ids, expected_scores = oracle.top_k(2, 50)
            assert len(ids) == 8  # n - 1: self excluded
            np.testing.assert_array_equal(ids, expected_ids)
            np.testing.assert_array_equal(scores, expected_scores)

    def test_empty_shards_are_harmless(self):
        # 3 nodes over 5 shards: at least two range shards own nothing.
        rng = np.random.default_rng(4)
        matrix = rng.standard_normal((3, 4))
        oracle = oracle_for(matrix)
        with sharded(ShardPlan(5, "range"), make_store(matrix)) as frontend:
            for node in range(3):
                ids, scores = frontend.top_k(node, 2)
                expected_ids, expected_scores = oracle.top_k(node, 2)
                np.testing.assert_array_equal(ids, expected_ids)
                np.testing.assert_array_equal(scores, expected_scores)

    def test_per_shard_ivf_full_probe_matches_oracle(self):
        rng = np.random.default_rng(9)
        matrix = rng.standard_normal((600, 8))
        oracle = oracle_for(matrix)
        config = ShardedServingConfig(
            index="ivf",
            ann=IvfConfig(nlist=6, nprobe=6, min_index_nodes=32),
        )
        with sharded(ShardPlan(3, "range"), make_store(matrix),
                     config) as frontend:
            for node in (0, 299, 599):
                ids, scores = frontend.top_k(node, 10)
                expected_ids, expected_scores = oracle.top_k(node, 10)
                np.testing.assert_array_equal(ids, expected_ids)
                np.testing.assert_array_equal(scores, expected_scores)

    def test_per_shard_ivf_small_probe_is_well_formed(self):
        rng = np.random.default_rng(10)
        matrix = rng.standard_normal((800, 8))
        config = ShardedServingConfig(
            index="ivf",
            ann=IvfConfig(nlist=16, nprobe=3, min_index_nodes=32),
        )
        with sharded(ShardPlan(4, "hash"), make_store(matrix),
                     config) as frontend:
            ids, scores = frontend.top_k(42, 10)
            assert len(ids) == 10
            assert len(np.unique(ids)) == 10
            assert 42 not in ids
            assert np.all(np.diff(scores) <= 0)

    def test_score_link_matches_oracle_same_and_cross_shard(self):
        rng = np.random.default_rng(12)
        matrix = rng.standard_normal((64, 8))
        plan = ShardPlan(4, "range")
        with sharded(plan, make_store(matrix)) as frontend:
            pairs = [(0, 1),      # co-located on shard 0
                     (0, 63),     # cross-shard
                     (40, 40)]    # self-pair
            for src, dst in pairs:
                expected = float(np.einsum(
                    "bd,bd->b", matrix[src][None, :],
                    matrix[dst][None, :])[0])
                assert frontend.score_link(src, dst) == expected

    def test_worker_lru_serves_identical_repeats(self):
        rng = np.random.default_rng(13)
        matrix = rng.standard_normal((100, 8))
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"), make_store(matrix),
                         ShardedServingConfig(cache_size=16)) as frontend:
                first = frontend.top_k(7, 5)
                second = frontend.top_k(7, 5)
                np.testing.assert_array_equal(first[0], second[0])
                np.testing.assert_array_equal(first[1], second[1])
        assert recorder.counters.get("serving.shard.cache_hits", 0) >= 1


class TestVersionAtomicity:
    def test_publish_bumps_version_and_serves_new_matrix(self):
        rng = np.random.default_rng(20)
        first = rng.standard_normal((50, 6))
        second = rng.standard_normal((80, 6))
        frontend = ShardedFrontend(ShardPlan(3, "hash")).start()
        with frontend:
            publisher = ShardedPublisher(frontend)
            assert frontend.version == 0
            with pytest.raises(ServingError):
                frontend.top_k(0, 3)  # nothing published yet
            assert publisher.publish(first, generation=1) == 1
            assert frontend.num_nodes == 50
            assert publisher.publish(second, generation=2) == 2
            assert (frontend.version, frontend.generation) == (2, 2)
            oracle = oracle_for(second)
            ids, scores = frontend.top_k(79, 5)
            expected_ids, expected_scores = oracle.top_k(79, 5)
            np.testing.assert_array_equal(ids, expected_ids)
            np.testing.assert_array_equal(scores, expected_scores)

    def test_stale_generation_publish_is_rejected(self):
        rng = np.random.default_rng(21)
        with ShardedFrontend(ShardPlan(2, "hash")).start() as frontend:
            publisher = ShardedPublisher(frontend)
            publisher.publish(rng.standard_normal((10, 4)), generation=5)
            with pytest.raises(ServingError):
                publisher.publish(rng.standard_normal((10, 4)),
                                  generation=4)

    def test_no_query_observes_mixed_versions(self):
        """Racing publisher: every gather equals exactly one version's
        oracle.  Version-v matrices are constant rank vectors, so any
        cross-version mix would surface as a score set drawn from two
        different constants."""
        num_nodes, dim, k = 60, 4, 8
        matrices = []
        for v in range(1, 7):
            matrix = np.full((num_nodes, dim), float(v))
            # Distinct per-row magnitudes keep the per-version oracle
            # ordering interesting while scores stay version-tagged.
            matrix *= (1.0 + np.arange(num_nodes) / num_nodes)[:, None]
            matrices.append(matrix)
        oracles = [oracle_for(matrix) for matrix in matrices]
        expected = {}
        for version, oracle in enumerate(oracles, start=1):
            for node in range(num_nodes):
                ids, scores = oracle.top_k(node, k)
                expected[(version, node)] = (ids, scores)

        frontend = ShardedFrontend(
            ShardPlan(3, "hash"),
            ShardedServingConfig(cache_size=0, vector_cache_size=0),
        ).start()
        with frontend:
            publisher = ShardedPublisher(frontend)
            publisher.publish(matrices[0], generation=0)
            mismatches: list[tuple] = []
            stop = threading.Event()

            def reader() -> None:
                rng = np.random.default_rng(99)
                while not stop.is_set():
                    node = int(rng.integers(0, num_nodes))
                    try:
                        ids, scores = frontend.top_k(node, k)
                    except ServingError:
                        # Versions churned past the one stale retry —
                        # an availability miss, never a mixed read.
                        continue
                    for version in range(1, len(matrices) + 1):
                        exp_ids, exp_scores = expected[(version, node)]
                        if (np.array_equal(ids, exp_ids)
                                and np.array_equal(scores, exp_scores)):
                            break
                    else:
                        mismatches.append((node, ids, scores))

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            for version in range(2, len(matrices) + 1):
                publisher.publish(matrices[version - 1], generation=0)
            stop.set()
            for thread in threads:
                thread.join()
            assert not mismatches, mismatches[:3]

    def test_publisher_attach_and_detach(self):
        rng = np.random.default_rng(22)
        store = make_store(rng.standard_normal((30, 4)), generation=1)
        with ShardedFrontend(ShardPlan(2, "range")).start() as frontend:
            publisher = ShardedPublisher(frontend)
            publisher.attach(store)  # warm store: published immediately
            assert frontend.num_nodes == 30
            store.publish(rng.standard_normal((40, 4)), generation=2)
            assert frontend.num_nodes == 40  # fan-out through subscribe
            publisher.detach()
            store.publish(rng.standard_normal((50, 4)), generation=3)
            assert frontend.num_nodes == 40  # detached: no fan-out


class TestDegradedMode:
    def test_killed_shard_serves_surviving_slices(self):
        rng = np.random.default_rng(30)
        matrix = rng.standard_normal((120, 8))
        plan = ShardPlan(3, "range")
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(plan, make_store(matrix)) as frontend:
                frontend.kill_shard(1)
                assert frontend.alive_shards == 2
                surviving = np.concatenate([
                    plan.owned_ids(0, 120), plan.owned_ids(2, 120),
                ])
                # The oracle restricted to surviving rows: reindex the
                # surviving slice, then translate back to global ids.
                oracle = oracle_for(matrix[surviving])
                query = 0  # owned by live shard 0
                local_query = int(np.searchsorted(surviving, query))
                ids, scores = frontend.top_k(query, 10)
                exp_local, exp_scores = oracle.top_k(local_query, 10)
                np.testing.assert_array_equal(ids, surviving[exp_local])
                np.testing.assert_array_equal(scores, exp_scores)
        assert recorder.counters.get(
            "serving.shard.degraded_queries", 0) >= 1

    def test_query_owned_by_dead_shard_raises(self):
        rng = np.random.default_rng(31)
        matrix = rng.standard_normal((60, 4))
        plan = ShardPlan(3, "range")
        config = ShardedServingConfig(vector_cache_size=0)
        with sharded(plan, make_store(matrix), config) as frontend:
            frontend.kill_shard(1)
            dead_node = int(plan.owned_ids(1, 60)[0])
            with pytest.raises(ServingError):
                frontend.top_k(dead_node, 5)

    def test_score_link_falls_back_to_peer_shard(self):
        rng = np.random.default_rng(32)
        matrix = rng.standard_normal((60, 4))
        plan = ShardPlan(3, "range")
        with sharded(plan, make_store(matrix)) as frontend:
            frontend.kill_shard(0)
            src = int(plan.owned_ids(0, 60)[0])   # dead shard's node
            dst = int(plan.owned_ids(2, 60)[0])   # live shard's node
            # src's vector is unfetchable, but dst's shard can score
            # the symmetric pair (dst, src)... which still needs src's
            # vector.  Both directions dead-end -> ServingError.
            with pytest.raises(ServingError):
                frontend.score_link(src, dst)
            # A pair with both rows on live shards still works.
            live_src = int(plan.owned_ids(1, 60)[0])
            expected = float(matrix[live_src] @ matrix[dst])
            assert frontend.score_link(live_src, dst) == expected

    def test_publish_with_dead_shard_keeps_tier_live(self):
        rng = np.random.default_rng(33)
        plan = ShardPlan(3, "range")
        with ShardedFrontend(plan).start() as frontend:
            publisher = ShardedPublisher(frontend)
            publisher.publish(rng.standard_normal((30, 4)), generation=1)
            frontend.kill_shard(2)
            publisher.publish(rng.standard_normal((45, 4)), generation=2)
            assert frontend.num_nodes == 45
            live_node = int(plan.owned_ids(0, 45)[0])
            ids, _scores = frontend.top_k(live_node, 5)
            assert len(ids) == 5


class TestLoadAndMetrics:
    def test_run_load_over_sharded_frontend(self):
        rng = np.random.default_rng(40)
        matrix = rng.standard_normal((200, 8))
        recorder = Recorder()
        with use_recorder(recorder):
            with sharded(ShardPlan(2, "hash"),
                         make_store(matrix)) as frontend:
                report = run_load(frontend, num_requests=60, clients=4,
                                  topk_fraction=0.5, k=5, seed=1)
        assert report.requests == 60
        assert report.errors == 0
        counters = recorder.counters
        assert counters.get("serving.shard.requests.topk", 0) > 0
        assert counters.get("serving.shard.requests.score", 0) > 0
        assert counters.get("serving.shard.0.requests", 0) > 0
        assert counters.get("serving.shard.1.requests", 0) > 0
        assert counters.get("serving.shard.degraded_queries", 0) == 0
        fanin = recorder.histograms["serving.shard.gather_fanin"]
        assert fanin.count > 0 and fanin.mean == 2.0
        assert "serving.shard.router_overhead_s" in recorder.histograms
        assert counters.get("serving.shard.publishes", 0) == 1

    def test_config_validation(self):
        with pytest.raises(ServingError):
            ShardedServingConfig(default_k=0)
        with pytest.raises(ServingError):
            ShardedServingConfig(metric="euclid")
        with pytest.raises(ServingError):
            ShardedServingConfig(index="lsh")
        with pytest.raises(ServingError):
            ShardedServingConfig(keep_versions=0)
        with pytest.raises(ServingError):
            ShardedServingConfig(request_timeout=0.0)

    def test_publish_requires_started_frontend(self):
        frontend = ShardedFrontend(ShardPlan(2, "hash"))
        publisher = ShardedPublisher(frontend)
        with pytest.raises(ServingError):
            publisher.publish(np.ones((4, 2)))
