"""Unit tests for the bounded ingest queue and token-bucket limiter."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph.edges import TemporalEdgeList
from repro.stream import IngestQueue, TokenBucket

pytestmark = pytest.mark.stream


def make_batch(n, start=0):
    ids = np.arange(start, start + n)
    return TemporalEdgeList(ids, ids + 1, np.linspace(0, 1, n))


class TestBasics:
    def test_fifo_order(self):
        queue = IngestQueue(max_edges=100)
        a, b = make_batch(3), make_batch(4, start=10)
        assert queue.put(a) and queue.put(b)
        assert queue.depth_edges == 7
        assert queue.get() is a
        assert queue.get() is b
        assert queue.depth_edges == 0

    def test_get_timeout_returns_none(self):
        queue = IngestQueue(max_edges=10)
        assert queue.get(timeout=0.01) is None

    def test_empty_batch_accepted_as_noop(self):
        queue = IngestQueue(max_edges=10)
        assert queue.put(TemporalEdgeList([], [], []))
        assert queue.depth_batches == 0

    def test_closed_queue_rejects_put_but_drains(self):
        queue = IngestQueue(max_edges=10)
        queue.put(make_batch(2))
        queue.close()
        with pytest.raises(StreamError):
            queue.put(make_batch(1))
        assert queue.get() is not None   # queued data still drains
        assert queue.get() is None       # then closed-and-empty

    def test_bad_configuration_rejected(self):
        with pytest.raises(StreamError):
            IngestQueue(max_edges=0)
        with pytest.raises(StreamError):
            IngestQueue(policy="explode")


class TestBackpressurePolicies:
    def test_reject_refuses_overflow(self):
        queue = IngestQueue(max_edges=5, policy="reject")
        assert queue.put(make_batch(4))
        assert not queue.put(make_batch(3))
        assert queue.rejected_batches == 1
        assert queue.depth_edges == 4  # original batch untouched

    def test_drop_oldest_evicts_for_fresh_data(self):
        queue = IngestQueue(max_edges=6, policy="drop_oldest")
        old, mid, new = make_batch(3), make_batch(3, 10), make_batch(4, 20)
        queue.put(old)
        queue.put(mid)
        assert queue.put(new)  # always succeeds
        assert queue.dropped_batches == 2
        assert queue.dropped_edges == 6
        assert queue.get() is new

    def test_drop_oldest_admits_oversized_batch_alone(self):
        queue = IngestQueue(max_edges=5, policy="drop_oldest")
        queue.put(make_batch(4))
        big = make_batch(9)
        assert queue.put(big)
        assert queue.depth_edges == 9
        assert queue.get() is big

    def test_block_waits_for_consumer(self):
        queue = IngestQueue(max_edges=5, policy="block")
        queue.put(make_batch(4))
        done = threading.Event()

        def producer():
            queue.put(make_batch(3))  # must wait for room
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not done.wait(0.05)   # still blocked
        assert queue.get() is not None
        assert done.wait(1.0)        # unblocked by the consumer
        assert queue.depth_edges == 3

    def test_block_timeout_rejects(self):
        queue = IngestQueue(max_edges=5, policy="block")
        queue.put(make_batch(5))
        assert not queue.put(make_batch(2), timeout=0.01)
        assert queue.rejected_batches == 1

    def test_block_refuses_impossible_batch(self):
        queue = IngestQueue(max_edges=5, policy="block")
        # Larger than the whole bound: waiting could never succeed.
        assert not queue.put(make_batch(6), timeout=5.0)

    def test_oversized_rejection_counted_distinctly_without_blocked_metrics(
        self,
    ):
        """Bug: an oversized batch under ``block`` booked ``blocked_puts``
        and ``block_seconds`` although no wait ever happened (its early
        refusal looked like backpressure in dashboards).  Fix: refuse it
        before the wait loop and count it as ``oversized_rejected``."""
        from repro.observability import Recorder, use_recorder

        recorder = Recorder()
        queue = IngestQueue(max_edges=5, policy="block")
        with use_recorder(recorder):
            assert not queue.put(make_batch(6), timeout=5.0)
        assert queue.oversized_rejected == 1
        assert queue.rejected_batches == 1
        counters = recorder.counters
        assert counters["stream.queue.oversized_rejected"] == 1
        assert counters["stream.queue.rejected_batches"] == 1
        assert counters["stream.queue.rejected_edges"] == 6
        assert "stream.queue.blocked_puts" not in counters

    def test_block_timeout_books_blocked_metrics_once_waited(self):
        from repro.observability import Recorder, use_recorder

        recorder = Recorder()
        queue = IngestQueue(max_edges=5, policy="block")
        queue.put(make_batch(5))
        with use_recorder(recorder):
            # Fits the bound but not the current depth: a real wait.
            assert not queue.put(make_batch(2), timeout=0.01)
        assert recorder.counters["stream.queue.blocked_puts"] == 1
        assert queue.oversized_rejected == 0


class TestTokenBucket:
    def test_burst_passes_without_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100, burst=50, clock=clock,
                             sleep=clock.sleep)
        assert bucket.acquire(50) == 0.0

    def test_deficit_waits_proportionally(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100, burst=10, clock=clock,
                             sleep=clock.sleep)
        bucket.acquire(10)                    # drain the burst
        waited = bucket.acquire(25)           # 25 tokens at 100/s
        assert waited == pytest.approx(0.25)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100, burst=10, clock=clock,
                             sleep=clock.sleep)
        bucket.acquire(10)
        clock.advance(100.0)                  # long idle: refill caps at 10
        assert bucket.acquire(10) == 0.0
        assert bucket.acquire(1) > 0.0

    def test_bad_configuration_rejected(self):
        with pytest.raises(StreamError):
            TokenBucket(rate=0)
        with pytest.raises(StreamError):
            TokenBucket(rate=10, burst=0)

    def test_queue_rate_limit_throttles_producer(self):
        clock = FakeClock()
        queue = IngestQueue(max_edges=1000, rate_limit=100, burst=10,
                            clock=clock)
        limiter = queue._limiter
        limiter._sleep = clock.sleep  # deterministic waiting
        queue.put(make_batch(10))     # burst
        before = clock.now
        queue.put(make_batch(10))     # must pay 10 tokens at 100/s
        assert clock.now - before == pytest.approx(0.1)


class FakeClock:
    """Deterministic monotonic clock whose sleep() advances it."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)
