"""Unit tests for the §VIII-B link-property-prediction extension."""

import numpy as np
import pytest

from repro.errors import DataPreparationError
from repro.tasks.link_property import (
    LinkPropertyConfig,
    LinkPropertyPredictionTask,
)
from repro.tasks.training import TrainSettings


def community_edge_labels(edges, num_nodes):
    """Label each edge by whether both endpoints share a parity class —
    a signal endpoint embeddings cannot fully solve but beats chance."""
    return ((edges.src % 2) == (edges.dst % 2)).astype(np.int64)


class TestLinkPropertyTask:
    def test_runs_and_reports(self, email_embeddings, email_edges):
        labels = community_edge_labels(email_edges, email_edges.num_nodes)
        config = LinkPropertyConfig(
            training=TrainSettings(epochs=8, learning_rate=0.05)
        )
        result = LinkPropertyPredictionTask(config).run(
            email_embeddings, email_edges, labels, seed=1
        )
        assert result.task == "link-property-prediction"
        assert 0.0 <= result.accuracy <= 1.0
        assert result.num_train > result.num_test

    def test_chronological_split(self, email_embeddings, email_edges):
        # The test partition must come from the latest timestamps: check
        # indirectly by giving time-dependent labels and confirming the
        # classifier trained on early labels generalizes above chance.
        median = np.median(email_edges.timestamps)
        labels = (email_edges.timestamps > median).astype(np.int64)
        config = LinkPropertyConfig(
            training=TrainSettings(epochs=5, learning_rate=0.05)
        )
        result = LinkPropertyPredictionTask(config).run(
            email_embeddings, email_edges, labels, seed=2
        )
        # All test edges are late => label 1 everywhere in test.
        assert result.num_test < len(email_edges)

    def test_label_count_mismatch_rejected(self, email_embeddings, email_edges):
        with pytest.raises(DataPreparationError):
            LinkPropertyPredictionTask().run(
                email_embeddings, email_edges, np.zeros(3, dtype=int), seed=1
            )

    def test_single_class_rejected(self, email_embeddings, email_edges):
        labels = np.zeros(len(email_edges), dtype=int)
        with pytest.raises(DataPreparationError):
            LinkPropertyPredictionTask().run(
                email_embeddings, email_edges, labels, seed=1
            )
