"""Unit tests for the vectorized temporal walk engine (Algorithm 1)."""

import numpy as np
import pytest

from repro.errors import WalkError
from repro.graph import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.walk import TemporalWalkEngine, WalkConfig
from repro.walk.corpus import PAD


class TestRunContract:
    def test_walk_count_and_shape(self, tiny_graph):
        cfg = WalkConfig(num_walks_per_node=3, max_walk_length=4)
        corpus = TemporalWalkEngine(tiny_graph).run(cfg, seed=1)
        assert corpus.num_walks == 3 * tiny_graph.num_nodes
        assert corpus.max_walk_length == 4

    def test_rows_are_walk_major(self, tiny_graph):
        # Row w*|V| + v starts at node v (Algorithm 1's loop order).
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=3)
        corpus = TemporalWalkEngine(tiny_graph).run(cfg, seed=1)
        n = tiny_graph.num_nodes
        for w in range(2):
            for v in range(n):
                assert corpus.matrix[w * n + v, 0] == v

    def test_custom_start_nodes(self, tiny_graph):
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=3)
        corpus = TemporalWalkEngine(tiny_graph).run(
            cfg, seed=1, start_nodes=np.array([1, 3])
        )
        assert corpus.num_walks == 4
        assert set(corpus.matrix[:, 0].tolist()) == {1, 3}

    def test_out_of_range_start_rejected(self, tiny_graph):
        with pytest.raises(WalkError):
            TemporalWalkEngine(tiny_graph).run(
                WalkConfig(), seed=1, start_nodes=np.array([99])
            )

    def test_invalid_sampler_rejected(self, tiny_graph):
        with pytest.raises(WalkError):
            TemporalWalkEngine(tiny_graph, sampler="magic")

    def test_deterministic_by_seed(self, tiny_graph):
        cfg = WalkConfig(num_walks_per_node=2, max_walk_length=5)
        a = TemporalWalkEngine(tiny_graph).run(cfg, seed=5)
        b = TemporalWalkEngine(tiny_graph).run(cfg, seed=5)
        assert np.array_equal(a.matrix, b.matrix)

    def test_seeds_differ(self, email_graph):
        cfg = WalkConfig(num_walks_per_node=1, max_walk_length=5)
        a = TemporalWalkEngine(email_graph).run(cfg, seed=5)
        b = TemporalWalkEngine(email_graph).run(cfg, seed=6)
        assert not np.array_equal(a.matrix, b.matrix)


class TestTemporalValidity:
    @pytest.mark.parametrize("sampler", ["cdf", "gumbel"])
    @pytest.mark.parametrize(
        "bias", ["uniform", "softmax-late", "softmax-recency", "linear"]
    )
    def test_walks_are_temporally_valid(self, tiny_graph, sampler, bias):
        cfg = WalkConfig(num_walks_per_node=5, max_walk_length=5, bias=bias)
        corpus = TemporalWalkEngine(tiny_graph, sampler=sampler).run(cfg, seed=2)
        assert corpus.validate_temporal_order(tiny_graph)

    def test_strictly_increasing_excludes_equal_timestamps(self):
        # 0->1 at t=0.5; 1->2 also at t=0.5: strict rule forbids the hop.
        edges = TemporalEdgeList([0, 1], [1, 2], [0.5, 0.5])
        g = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(num_walks_per_node=20, max_walk_length=3)
        corpus = TemporalWalkEngine(g).run(cfg, seed=3, start_nodes=np.array([0]))
        assert corpus.lengths.max() == 2  # never reaches node 2

    def test_allow_equal_permits_equal_timestamps(self):
        edges = TemporalEdgeList([0, 1], [1, 2], [0.5, 0.5])
        g = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(
            num_walks_per_node=20, max_walk_length=3, allow_equal=True
        )
        corpus = TemporalWalkEngine(g).run(cfg, seed=3, start_nodes=np.array([0]))
        assert corpus.lengths.max() == 3

    def test_sink_node_walks_have_length_one(self, tiny_graph):
        cfg = WalkConfig(num_walks_per_node=3, max_walk_length=5)
        corpus = TemporalWalkEngine(tiny_graph).run(
            cfg, seed=1, start_nodes=np.array([4])
        )
        assert np.all(corpus.lengths == 1)
        assert np.all(corpus.matrix[:, 1:] == PAD)

    def test_start_time_cuts_early_edges(self, tiny_graph):
        cfg = WalkConfig(num_walks_per_node=10, max_walk_length=2)
        corpus = TemporalWalkEngine(tiny_graph).run(
            cfg, seed=1, start_nodes=np.array([1]), start_time=0.2
        )
        # Node 1's edges: (1,2,0.3) valid, (1,4,0.05) not.
        second = corpus.matrix[corpus.lengths == 2, 1]
        assert set(second.tolist()) == {2}


class TestStats:
    def test_stats_populated(self, email_graph):
        engine = TemporalWalkEngine(email_graph)
        corpus = engine.run(
            WalkConfig(num_walks_per_node=2, max_walk_length=5), seed=4
        )
        stats = engine.last_stats
        assert stats.num_walks == corpus.num_walks
        assert stats.total_steps == int((corpus.lengths - 1).sum())
        assert stats.candidates_scanned > 0
        assert stats.search_iterations > 0
        assert len(stats.work_per_start_node) == email_graph.num_nodes

    def test_terminated_early_counts(self, tiny_graph):
        engine = TemporalWalkEngine(tiny_graph)
        corpus = engine.run(
            WalkConfig(num_walks_per_node=1, max_walk_length=6), seed=4
        )
        short = int(np.sum(corpus.lengths < 6))
        assert engine.last_stats.terminated_early == short

    def test_work_concentrated_on_hubs(self, email_graph):
        engine = TemporalWalkEngine(email_graph)
        engine.run(WalkConfig(num_walks_per_node=2, max_walk_length=5), seed=4)
        work = engine.last_stats.work_per_start_node
        degrees = email_graph.out_degrees()
        top = np.argsort(degrees)[-10:]
        bottom = np.argsort(degrees)[:10]
        assert work[top].mean() > work[bottom].mean()


class TestSamplerEquivalence:
    @pytest.mark.parametrize(
        "bias", ["uniform", "softmax-late", "softmax-recency", "linear"]
    )
    def test_cdf_and_gumbel_first_step_distributions_match(self, bias):
        ts = np.array([0.05, 0.15, 0.4, 0.7, 0.95])
        edges = TemporalEdgeList([0] * 5, [1, 2, 3, 4, 5], ts)
        g = TemporalGraph.from_edge_list(edges)
        cfg = WalkConfig(num_walks_per_node=8000, max_walk_length=2, bias=bias)
        counts = {}
        for sampler in ("cdf", "gumbel"):
            corpus = TemporalWalkEngine(g, sampler=sampler).run(
                cfg, seed=9, start_nodes=np.array([0])
            )
            counts[sampler] = np.bincount(corpus.matrix[:, 1], minlength=6)[1:]
        freq_cdf = counts["cdf"] / counts["cdf"].sum()
        freq_gum = counts["gumbel"] / counts["gumbel"].sum()
        assert np.allclose(freq_cdf, freq_gum, atol=0.03)

    def test_cdf_matches_eq1_exactly(self):
        # Empirical first-step frequencies against the analytic Eq. 1.
        ts = np.array([0.1, 0.5, 0.9])
        edges = TemporalEdgeList([0, 0, 0], [1, 2, 3], ts)
        g = TemporalGraph.from_edge_list(edges)
        r = g.time_span()
        expected = np.exp(ts / r) / np.exp(ts / r).sum()
        cfg = WalkConfig(
            num_walks_per_node=20000, max_walk_length=2, bias="softmax-late"
        )
        corpus = TemporalWalkEngine(g).run(cfg, seed=10, start_nodes=np.array([0]))
        freq = np.bincount(corpus.matrix[:, 1], minlength=4)[1:] / 20000
        assert np.allclose(freq, expected, atol=0.02)


class TestWideSpanNumericalStability:
    """Regression: CDF sampling on graphs with wide timestamp spans.

    The CDF sampler used to exponentiate globally referenced scores —
    ``exp((ts - ts_min) / T)`` — so a graph whose timestamps span ~1e6
    with ``temperature=1`` overflowed every softmax-late weight to inf
    (and underflowed every softmax-recency weight to zero), corrupting
    the per-source CDF.  The fix shifts scores by each source slice's
    maximum before exponentiating, which leaves the softmax unchanged.
    """

    def _wide_graph(self):
        # Node 0's out-edges sit ~1e6 above the graph's earliest edge,
        # so global referencing makes the exponent argument huge while
        # per-slice referencing keeps it within [-3, 0].
        ts = 1e6 + np.array([0.0, 1.0, 2.0, 3.0])
        edges = TemporalEdgeList(
            [0, 0, 0, 0, 5], [1, 2, 3, 4, 6],
            np.concatenate([ts, [0.0]]),
        )
        return TemporalGraph.from_edge_list(edges), ts

    @pytest.mark.parametrize("bias", ["softmax-late", "softmax-recency"])
    def test_cdf_matches_analytic_and_gumbel(self, bias):
        g, ts = self._wide_graph()
        cfg = WalkConfig(num_walks_per_node=8000, max_walk_length=2,
                         bias=bias, temperature=1.0)
        freq = {}
        for sampler in ("cdf", "gumbel"):
            with np.errstate(over="raise"):
                corpus = TemporalWalkEngine(g, sampler=sampler).run(
                    cfg, seed=11, start_nodes=np.array([0])
                )
            counts = np.bincount(corpus.matrix[:, 1], minlength=5)[1:5]
            freq[sampler] = counts / counts.sum()
        score = ts if bias == "softmax-late" else -ts
        expected = np.exp(score - score.max())
        expected /= expected.sum()
        assert np.allclose(freq["cdf"], expected, atol=0.03)
        assert np.allclose(freq["cdf"], freq["gumbel"], atol=0.03)
