"""Additional GPU/CPU model edge-case tests."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.hwmodel.gpu import (
    CpuConfig,
    GpuConfig,
    GpuKernelModel,
    Word2vecGpuModel,
    cpu_time_seconds,
)


class TestWord2vecGpuModelEdgeCases:
    def test_batch_capped_at_corpus_size(self):
        model = Word2vecGpuModel(num_sentences=100, pairs_per_sentence=5)
        # Requesting a batch larger than the corpus must not be slower
        # than the exact-corpus batch (no phantom transfer).
        t_exact = model.batched_time(100)
        t_over = model.batched_time(100_000)
        assert t_over == pytest.approx(t_exact)

    def test_optimization_ladder_respects_small_corpus(self):
        model = Word2vecGpuModel(num_sentences=50, pairs_per_sentence=5)
        ladder = model.optimization_ladder(batch_sentences=16384)
        assert all(v >= 1.0 for v in ladder.values())

    def test_more_negatives_cost_more(self):
        cheap = Word2vecGpuModel(1000, 5, negatives=2).batched_time(256)
        costly = Word2vecGpuModel(1000, 5, negatives=20).batched_time(256)
        assert costly > cheap

    def test_pad_and_coalesce_levers(self):
        model = Word2vecGpuModel(10_000, 10)
        padded = model.batched_time(1024)  # default: padded, uncoalesced
        no_pad = model.batched_time(1024, line_utilization=1.0)
        coalesced = model.batched_time(1024, line_utilization=1.0,
                                       coalesced=True)
        assert no_pad < padded
        assert coalesced < no_pad


class TestGpuKernelEdgeCases:
    def test_zero_item_kernel(self):
        kernel = GpuKernelModel(name="empty", items=0, fp_per_item=0,
                                loads_per_item=0, bytes_per_item=0)
        report = kernel.report()
        assert report.time_seconds >= 0
        assert report.sm_utilization == 0.0

    def test_transfer_dominates_tiny_kernels(self):
        kernel = GpuKernelModel(
            name="tiny", items=10, fp_per_item=1.0, loads_per_item=1.0,
            bytes_per_item=8.0, transfer_bytes=1e9,
        )
        report = kernel.report()
        assert report.transfer_seconds > 0.9 * report.time_seconds

    def test_custom_config_changes_time(self):
        kernel = GpuKernelModel(
            name="k", items=1e7, fp_per_item=100.0, loads_per_item=10.0,
            bytes_per_item=80.0,
        )
        fast = kernel.report(GpuConfig())
        slow = kernel.report(GpuConfig(fp_tflops=1.0, dram_bw_gbs=100.0))
        assert slow.time_seconds > fast.time_seconds


class TestCpuModelEdgeCases:
    def test_threads_clamped_to_cores(self):
        config = CpuConfig(cores=8)
        t8 = cpu_time_seconds(1e12, 1.0, threads=8, config=config)
        t800 = cpu_time_seconds(1e12, 1.0, threads=800, config=config)
        assert t800 == pytest.approx(t8)

    def test_single_thread_no_efficiency_penalty(self):
        config = CpuConfig(cores=8, parallel_efficiency=0.5)
        t1 = cpu_time_seconds(1e10, 1.0, threads=1, config=config)
        expected = 1e10 / (config.ipc * config.clock_ghz * 1e9)
        assert t1 == pytest.approx(expected)
