"""Experiment recording and parameter sweeps.

Benchmarks persist their regenerated tables/series as JSON under
``bench_results/`` so EXPERIMENTS.md's paper-vs-measured entries can be
re-derived from artifacts rather than terminal scrollback.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "bench_results"


class ExperimentRecorder:
    """Writes one experiment's data to ``bench_results/<name>.json``."""

    def __init__(self, name: str, results_dir: str | os.PathLike | None = None
                 ) -> None:
        self.name = name
        self.results_dir = Path(results_dir) if results_dir else DEFAULT_RESULTS_DIR
        self.data: dict[str, Any] = {"experiment": name, "recorded_at": time.time()}

    def add(self, key: str, value: Any) -> None:
        """Record ``value`` under ``key`` (coerced to JSON-safe types)."""
        self.data[key] = _jsonable(value)

    def save(self) -> Path:
        """Write the record to ``bench_results/<name>.json``; returns the path."""
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.results_dir / f"{self.name}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.data, handle, indent=2, sort_keys=True)
        return path


def _jsonable(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays into JSON-safe values."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def sweep(
    values: Iterable[Any], fn: Callable[[Any], dict[str, Any]]
) -> list[dict[str, Any]]:
    """Run ``fn`` for each parameter value; rows get the value attached."""
    rows = []
    for value in values:
        row = {"param": value}
        row.update(fn(value))
        rows.append(row)
    return rows
