"""Terminal figure rendering: ASCII bar charts for benchmark series.

The paper's artifact reports everything through terminal logs; a bar
rendering of a figure's series makes the regenerated shapes (saturation
knees, power-law decay, speedup ladders) visible at a glance without a
plotting stack.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.bench.tables import format_value

BAR_CHARACTER = "#"


def render_bars(
    series: Mapping[Any, float],
    title: str | None = None,
    width: int = 40,
    log_scale: bool = False,
) -> str:
    """Render an x -> value mapping as a horizontal ASCII bar chart.

    Bars are scaled to ``width`` characters against the series maximum;
    ``log_scale`` renders log10 magnitudes (for speedup ladders and
    power-law decays that span decades).  Non-positive values render as
    empty bars with their value still printed.
    """
    import math

    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    items = list(series.items())
    if not items:
        return f"{title}\n(no data)" if title else "(no data)"

    def magnitude(value: float) -> float:
        if value <= 0:
            return 0.0
        return math.log10(1.0 + value) if log_scale else value

    magnitudes = [magnitude(v) for _, v in items]
    top = max(magnitudes) or 1.0
    label_width = max(len(str(k)) for k, _ in items)
    value_strings = [format_value(v) for _, v in items]
    value_width = max(len(s) for s in value_strings)

    lines = [title] if title else []
    for (key, _value), mag, value_str in zip(items, magnitudes,
                                             value_strings):
        bar = BAR_CHARACTER * max(0, round(width * mag / top))
        lines.append(
            f"{str(key).rjust(label_width)}  {value_str.rjust(value_width)}"
            f"  |{bar}"
        )
    return "\n".join(lines)


def render_grouped_bars(
    groups: Mapping[str, Mapping[Any, float]],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render several named series one block after another, shared scale."""
    all_values = [v for series in groups.values() for v in series.values()]
    top = max((v for v in all_values if v > 0), default=1.0)
    blocks = [title] if title else []
    for name, series in groups.items():
        scaled = {k: v for k, v in series.items()}
        block_lines = [f"-- {name}"]
        label_width = max((len(str(k)) for k in series), default=1)
        for key, value in scaled.items():
            bar = BAR_CHARACTER * max(0, round(width * max(value, 0) / top))
            block_lines.append(
                f"{str(key).rjust(label_width)}  "
                f"{format_value(value).rjust(8)}  |{bar}"
            )
        blocks.append("\n".join(block_lines))
    return "\n".join(blocks)
