"""Plain-text table and series rendering for benchmark output.

Every benchmark regenerates its paper table/figure as an aligned text
table printed to the terminal (the paper's artifact does the same via
terminal logs), so results are diffable and greppable.
"""

from __future__ import annotations

from typing import Any, Iterable


def format_value(value: Any) -> str:
    """Compact human formatting: floats to 4 significant digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    rows: Iterable[dict[str, Any]],
    headers: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned text table.

    ``headers`` fixes column order (defaults to first row's key order);
    missing cells render empty.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if headers is None:
        headers = list(rows[0].keys())
    cells = [[format_value(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, series: dict[Any, Any], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an x->y mapping (one figure line/series) as a table."""
    rows = [{x_label: k, y_label: v} for k, v in series.items()]
    return render_table(rows, headers=[x_label, y_label], title=name)
