"""Experiment harness utilities used by the benchmark suite."""

from repro.bench.tables import format_value, render_series, render_table
from repro.bench.figures import render_bars, render_grouped_bars
from repro.bench.runner import ExperimentRecorder, sweep

__all__ = [
    "render_table",
    "render_series",
    "render_bars",
    "render_grouped_bars",
    "format_value",
    "ExperimentRecorder",
    "sweep",
]
