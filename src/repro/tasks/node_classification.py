"""Multi-class node classification (§IV-B).

A 3-layer FNN maps a node's embedding to ``|C|`` class logits; training
minimizes negative log likelihood over a stratified random node split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedding.embeddings import NodeEmbeddings
from repro.errors import DataPreparationError
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import accuracy
from repro.nn.module import Module, Sequential
from repro.observability import get_recorder
from repro.rng import SeedLike, make_rng
from repro.tasks.features import Standardizer, build_node_classification_features
from repro.tasks.link_prediction import TaskResult
from repro.tasks.splits import stratified_node_split
from repro.tasks.training import TrainSettings, train_classifier


@dataclass(frozen=True)
class NodeClassificationConfig:
    """Architecture and training knobs for the node-classification FNN."""

    hidden_dims: tuple[int, int] = (64, 32)
    train_fraction: float = 0.6
    valid_fraction: float = 0.2
    training: TrainSettings = field(default_factory=TrainSettings)


def build_node_classification_model(
    feature_dim: int,
    hidden_dims: tuple[int, int],
    num_classes: int,
    seed: SeedLike = None,
) -> Module:
    """The paper's 3-layer FNN: d -> h1 -> h2 -> |C| logits."""
    rng = make_rng(seed)
    h1, h2 = hidden_dims
    return Sequential(
        Linear(feature_dim, h1, seed=rng),
        ReLU(),
        Linear(h1, h2, seed=rng),
        ReLU(),
        Linear(h2, num_classes, seed=rng),
    )


class NodeClassificationTask:
    """Prepare data, train, and evaluate node classification end to end."""

    def __init__(self, config: NodeClassificationConfig | None = None) -> None:
        self.config = config or NodeClassificationConfig()

    def run(
        self,
        embeddings: NodeEmbeddings,
        labels: np.ndarray,
        seed: SeedLike = None,
    ) -> TaskResult:
        """Split labeled nodes, train the FNN, report test accuracy."""
        cfg = self.config
        rng = make_rng(seed)
        labels = np.asarray(labels, dtype=np.int64)
        if len(labels) != embeddings.num_nodes:
            raise DataPreparationError(
                f"{len(labels)} labels for {embeddings.num_nodes} embeddings"
            )
        num_classes = int(labels.max()) + 1 if len(labels) else 0
        if num_classes < 2:
            raise DataPreparationError("need at least 2 classes")

        rec = get_recorder()
        with rec.span("data_prep", task="node-classification") as prep_span:
            splits = stratified_node_split(
                labels,
                train_fraction=cfg.train_fraction,
                valid_fraction=cfg.valid_fraction,
                seed=rng,
            )
            train_xy = build_node_classification_features(
                embeddings, splits.train, labels
            )
            valid_xy = build_node_classification_features(
                embeddings, splits.valid, labels
            )
            test_xy = build_node_classification_features(
                embeddings, splits.test, labels
            )
            scaler = Standardizer().fit(train_xy[0])
            train_xy = (scaler.transform(train_xy[0]), train_xy[1])
            valid_xy = (scaler.transform(valid_xy[0]), valid_xy[1])
            test_xy = (scaler.transform(test_xy[0]), test_xy[1])
        data_prep_seconds = prep_span.duration

        model = build_node_classification_model(
            embeddings.dim, cfg.hidden_dims, num_classes, seed=rng
        )
        loss = CrossEntropyLoss()

        def evaluate_accuracy(m: Module, x: np.ndarray, y: np.ndarray) -> float:
            return accuracy(np.argmax(m.forward(x), axis=1), y)

        with rec.span("train", task="node-classification"):
            history = train_classifier(
                model, loss, train_xy, valid_xy, cfg.training,
                evaluate_accuracy, seed=rng,
            )

        with rec.span("test", task="node-classification") as test_span:
            test_acc = evaluate_accuracy(model, test_xy[0], test_xy[1])
        test_seconds = test_span.duration

        return TaskResult(
            task="node-classification",
            accuracy=test_acc,
            auc=None,
            history=history,
            data_prep_seconds=data_prep_seconds,
            train_seconds=history.total_seconds,
            test_seconds=test_seconds,
            num_train=len(train_xy[1]),
            num_test=len(test_xy[1]),
            model=model,
            scaler=scaler,
            splits=splits,
        )
