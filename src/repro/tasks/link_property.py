"""Link property prediction — the §VIII-B extension task.

The paper's Fig. 12 sketches how a user adds a third task, predicting
*edge labels*, by reusing the walk and word2vec stages and writing a new
data-preparation step.  This module is that task: given a temporal edge
stream with an integer label per edge, split chronologically, featurize
edges by endpoint-embedding concatenation, and train a multi-class FNN.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.embedding.embeddings import NodeEmbeddings
from repro.errors import DataPreparationError
from repro.graph.edges import TemporalEdgeList
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import accuracy
from repro.nn.module import Module, Sequential
from repro.rng import SeedLike, make_rng
from repro.tasks.features import Standardizer
from repro.tasks.link_prediction import TaskResult
from repro.tasks.splits import NodeSplits
from repro.tasks.training import TrainSettings, train_classifier


@dataclass(frozen=True)
class LinkPropertyConfig:
    """Architecture and training knobs for the edge-label FNN."""

    hidden_dim: int = 32
    train_fraction: float = 0.6
    valid_fraction: float = 0.2
    training: TrainSettings = field(default_factory=TrainSettings)


class LinkPropertyPredictionTask:
    """Predict per-edge labels from endpoint embeddings."""

    def __init__(self, config: LinkPropertyConfig | None = None) -> None:
        self.config = config or LinkPropertyConfig()

    def run(
        self,
        embeddings: NodeEmbeddings,
        edges: TemporalEdgeList,
        edge_labels: np.ndarray,
        seed: SeedLike = None,
    ) -> TaskResult:
        """Chronological split, concat features, 2-layer multi-class FNN."""
        cfg = self.config
        rng = make_rng(seed)
        edge_labels = np.asarray(edge_labels, dtype=np.int64)
        if len(edge_labels) != len(edges):
            raise DataPreparationError(
                f"{len(edge_labels)} labels for {len(edges)} edges"
            )
        num_classes = int(edge_labels.max()) + 1 if len(edge_labels) else 0
        if num_classes < 2:
            raise DataPreparationError("need at least 2 edge-label classes")

        prep_start = time.perf_counter()
        order = np.argsort(edges.timestamps, kind="stable")
        n = len(order)
        n_train = int(round(cfg.train_fraction * n))
        n_valid = int(round(cfg.valid_fraction * n))
        idx_train = order[:n_train]
        idx_valid = order[n_train: n_train + n_valid]
        idx_test = order[n_train + n_valid:]
        if min(len(idx_train), len(idx_valid), len(idx_test)) == 0:
            raise DataPreparationError("a partition is empty; adjust fractions")

        def featurize(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            part = edges.take(idx)
            return (
                embeddings.edge_features(part.src, part.dst),
                edge_labels[idx],
            )

        train_xy = featurize(idx_train)
        valid_xy = featurize(idx_valid)
        test_xy = featurize(idx_test)
        scaler = Standardizer().fit(train_xy[0])
        train_xy = (scaler.transform(train_xy[0]), train_xy[1])
        valid_xy = (scaler.transform(valid_xy[0]), valid_xy[1])
        test_xy = (scaler.transform(test_xy[0]), test_xy[1])
        data_prep_seconds = time.perf_counter() - prep_start

        model: Module = Sequential(
            Linear(2 * embeddings.dim, cfg.hidden_dim, seed=rng),
            ReLU(),
            Linear(cfg.hidden_dim, num_classes, seed=rng),
        )
        loss = CrossEntropyLoss()

        def evaluate_accuracy(m: Module, x: np.ndarray, y: np.ndarray) -> float:
            return accuracy(np.argmax(m.forward(x), axis=1), y)

        history = train_classifier(
            model, loss, train_xy, valid_xy, cfg.training,
            evaluate_accuracy, seed=rng,
        )

        test_start = time.perf_counter()
        test_acc = evaluate_accuracy(model, test_xy[0], test_xy[1])
        test_seconds = time.perf_counter() - test_start

        return TaskResult(
            task="link-property-prediction",
            accuracy=test_acc,
            auc=None,
            history=history,
            data_prep_seconds=data_prep_seconds,
            train_seconds=history.total_seconds,
            test_seconds=test_seconds,
            num_train=len(train_xy[1]),
            num_test=len(test_xy[1]),
            model=model,
            scaler=scaler,
            splits=NodeSplits(train=idx_train, valid=idx_valid,
                              test=idx_test),
        )
