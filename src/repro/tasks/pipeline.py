"""End-to-end pipeline (Fig. 1): walks -> word2vec -> data prep -> FNN.

:class:`Pipeline` is the front door of the library.  It wires the four
phases together, times each one (the structure of Table III: rwalk,
word2vec, training/epoch, testing), and returns everything the
experiments need: task metrics, phase timings, and the work statistics
the hardware models consume.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.checkpoint import CheckpointStore
from repro.embedding.embeddings import NodeEmbeddings, train_embeddings
from repro.errors import PipelineError
from repro.embedding.trainer import SgnsConfig, TrainerStats
from repro.faults import FaultPlan
from repro.graph.csr import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.graph.io import LabeledTemporalDataset
from repro.observability import Recorder, get_recorder, use_recorder
from repro.parallel.supervisor import SupervisorConfig
from repro.rng import SeedLike, make_rng
from repro.tasks.link_prediction import (
    LinkPredictionConfig,
    LinkPredictionTask,
    TaskResult,
)
from repro.tasks.link_property import LinkPropertyConfig, LinkPropertyPredictionTask
from repro.tasks.node_classification import (
    NodeClassificationConfig,
    NodeClassificationTask,
)
from repro.walk.config import WalkConfig
from repro.walk.corpus import WalkCorpus
from repro.walk.batched import KERNEL_CHOICES, make_walk_engine
from repro.walk.engine import WalkStats


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of all four pipeline phases.

    Defaults are the paper's recommended operating point: ``K=10``,
    ``L=6``, ``d=8`` with softmax temporal bias (§VII-A).
    ``treat_undirected`` mirrors each interaction edge so walks can
    traverse both directions (useful on interaction networks whose
    directed out-degree is heavily skewed); the raw directed stream is
    what the paper's CSR stores, so the default is False.

    ``workers`` executes phases 1-2 across that many worker processes
    (:mod:`repro.parallel`): walk-phase start nodes are sharded over a
    shared-memory CSR graph and word2vec trains data-parallel with
    per-epoch parameter averaging.  ``workers=1`` (default) is the
    serial path, bit-identical to previous behavior; ``workers=N`` is
    deterministic for fixed ``N`` (seeds derive from the root seed via
    ``SeedSequence.spawn``).

    ``supervisor`` sets the worker timeout/retry/degradation policy
    (:class:`~repro.parallel.supervisor.SupervisorConfig`); every
    recovery path yields output bit-identical to an undisturbed run, so
    supervision knobs never change results, only resilience.

    ``checkpoint_dir`` persists each phase's artifact atomically as it
    completes (:mod:`repro.checkpoint`), keyed by the semantic config
    fingerprint and the seed; with ``resume=True`` completed phases are
    loaded instead of recomputed and the driving RNG is restored to its
    post-phase state, so a resumed run is bit-identical to an
    uninterrupted one.  ``faults`` injects deterministic failures for
    testing (defaults to the ambient ``REPRO_FAULTS`` plan).
    """

    walk: WalkConfig = field(default_factory=WalkConfig)
    sgns: SgnsConfig = field(default_factory=SgnsConfig)
    batch_sentences: int | None = 1024
    sampler: str = "cdf"
    treat_undirected: bool = False
    workers: int = 1
    link_prediction: LinkPredictionConfig = field(
        default_factory=LinkPredictionConfig
    )
    node_classification: NodeClassificationConfig = field(
        default_factory=NodeClassificationConfig
    )
    link_property: LinkPropertyConfig = field(default_factory=LinkPropertyConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    checkpoint_dir: str | None = None
    resume: bool = False
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise PipelineError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.sampler not in KERNEL_CHOICES:
            raise PipelineError(
                f"unknown sampler {self.sampler!r}; "
                f"options: {sorted(KERNEL_CHOICES)}"
            )
        if self.resume and not self.checkpoint_dir:
            raise PipelineError("resume=True requires checkpoint_dir")


@dataclass
class PhaseTimings:
    """Wall seconds per pipeline phase (Table III's columns).

    Since the observability layer landed, these values are *views over
    the span trace*: each field equals the duration of the span of the
    same name (``train`` sums the per-epoch ``train_epoch`` spans, which
    is what Table III's training/epoch column reports).
    """

    rwalk: float = 0.0
    word2vec: float = 0.0
    data_prep: float = 0.0
    train: float = 0.0
    test: float = 0.0
    train_epochs: int = 0

    @classmethod
    def from_recorder(cls, recorder: Recorder) -> "PhaseTimings":
        """Rebuild phase timings from a recorder's span trace."""
        return cls(
            rwalk=recorder.span_seconds("rwalk"),
            word2vec=recorder.span_seconds("word2vec"),
            data_prep=recorder.span_seconds("data_prep"),
            train=recorder.span_seconds("train_epoch"),
            test=recorder.span_seconds("test"),
            train_epochs=sum(1 for _ in recorder.spans("train_epoch")),
        )

    @property
    def train_per_epoch(self) -> float:
        """Mean training seconds per epoch."""
        if self.train_epochs == 0:
            return 0.0
        return self.train / self.train_epochs

    @property
    def total(self) -> float:
        """Sum over all categories."""
        return self.rwalk + self.word2vec + self.data_prep + self.train + self.test

    def breakdown(self) -> dict[str, float]:
        """Phase -> seconds, for table rendering."""
        return {
            "rwalk": self.rwalk,
            "word2vec": self.word2vec,
            "data_prep": self.data_prep,
            "train": self.train,
            "test": self.test,
        }


@dataclass
class PipelineResult:
    """Everything one end-to-end run produces.

    ``cached_phases`` names the phases served from a checkpoint instead
    of recomputed (empty for a fresh or checkpoint-less run).
    """

    task_result: TaskResult
    timings: PhaseTimings
    embeddings: NodeEmbeddings
    walk_stats: WalkStats
    trainer_stats: TrainerStats
    corpus_num_walks: int
    corpus_mean_length: float
    cached_phases: tuple[str, ...] = ()

    @property
    def accuracy(self) -> float:
        """Test accuracy of the downstream task."""
        return self.task_result.accuracy

    def summary(self) -> str:
        """One-line human-readable result summary."""
        t = self.timings
        return (
            f"{self.task_result.summary()} | phases: rwalk {t.rwalk:.2f}s, "
            f"word2vec {t.word2vec:.2f}s, prep {t.data_prep:.2f}s, "
            f"train {t.train:.2f}s ({t.train_per_epoch:.3f}s/epoch), "
            f"test {t.test:.3f}s"
        )


class Pipeline:
    """Runs the Fig. 1 pipeline for any of the three downstream tasks.

    ``recorder`` installs a :class:`~repro.observability.Recorder` as
    the ambient recorder for the duration of each run, so every layer
    (walk engine, trainers, supervisor, checkpoints, tasks) reports into
    it; with ``None`` the pipeline observes whatever recorder is already
    ambient (the free :class:`~repro.observability.NullRecorder` by
    default).
    """

    def __init__(self, config: PipelineConfig | None = None,
                 recorder: Recorder | None = None) -> None:
        self.config = config or PipelineConfig()
        self.recorder = recorder

    # ------------------------------------------------------------------
    def _observe(self):
        """Context installing this pipeline's recorder (if any)."""
        if self.recorder is None:
            return nullcontext(get_recorder())
        return use_recorder(self.recorder)

    def _fault_plan(self) -> FaultPlan:
        """The active injection plan (explicit config or ambient env)."""
        if self.config.faults is not None:
            return self.config.faults
        return FaultPlan.from_env()

    def _open_store(self, rng: np.random.Generator,
                    edges: TemporalEdgeList) -> CheckpointStore | None:
        """Open the checkpoint store for this (config, dataset, seed) run.

        Must be called before ``rng`` is consumed: the run key includes
        the generator's *initial* state, so two runs with the same
        config, dataset, and seed share a store while a different seed
        or a different edge list never collides (a dataset sweep can
        share one checkpoint root safely).
        """
        if not self.config.checkpoint_dir:
            return None
        return CheckpointStore.open(
            self.config.checkpoint_dir, self.config, rng, dataset=edges
        )

    # ------------------------------------------------------------------
    def embed(
        self, edges: TemporalEdgeList, seed: SeedLike = None
    ) -> tuple[NodeEmbeddings, PhaseTimings, WalkStats, TrainerStats, WalkCorpus]:
        """Phases 1-2: walks and word2vec.

        Exposed separately so sweeps (Fig. 8) can reuse embeddings across
        classifier configurations.  With ``config.workers > 1`` both
        phases execute across worker processes (:mod:`repro.parallel`);
        ``workers=1`` keeps the serial code path bit-for-bit.  With
        ``config.checkpoint_dir`` set, phase artifacts are persisted as
        they complete (and loaded instead of recomputed under
        ``resume=True``).
        """
        with self._observe():
            rng = make_rng(seed)
            store = self._open_store(rng, edges)
            embeddings, timings, walk_stats, trainer_stats, corpus, _, _ = (
                self._embed(edges, rng, store)
            )
        return embeddings, timings, walk_stats, trainer_stats, corpus

    def _embed(
        self,
        edges: TemporalEdgeList,
        rng: np.random.Generator,
        store: CheckpointStore | None,
    ) -> tuple[NodeEmbeddings, PhaseTimings, WalkStats, TrainerStats,
               WalkCorpus, np.random.Generator, list[str]]:
        """Checkpoint-aware phases 1-2; returns the RNG to drive phase 3.

        When a phase loads from the store, the returned generator is the
        one snapshotted right after that phase originally ran — the
        resumed run continues on exactly the stream an uninterrupted run
        would have, which is what makes resume bit-identical end to end.
        """
        cfg = self.config
        plan = self._fault_plan()
        resume = store is not None and cfg.resume
        cached: list[str] = []
        walk_edges = edges.with_reverse_edges() if cfg.treat_undirected else edges
        graph = TemporalGraph.from_edge_list(walk_edges)
        rec = get_recorder()

        timings = PhaseTimings()
        with rec.span("rwalk", workers=cfg.workers) as span:
            if resume and store.has("walks"):
                corpus, walk_stats = store.load_walks()
                rng = store.load_rng("walks")
                cached.append("walks")
                span.annotate(cached=True)
            else:
                span.annotate(cached=False)
                if cfg.workers > 1:
                    from repro.parallel import run_parallel_walks

                    corpus, walk_stats = run_parallel_walks(
                        graph, cfg.walk, workers=cfg.workers, seed=rng,
                        sampler=cfg.sampler, supervisor=cfg.supervisor,
                        fault_plan=plan,
                    )
                else:
                    engine = make_walk_engine(graph, sampler=cfg.sampler)
                    corpus = engine.run(cfg.walk, seed=rng)
                    assert engine.last_stats is not None
                    walk_stats = engine.last_stats
                if store is not None:
                    store.save_walks(corpus, walk_stats, rng=rng)
                plan.fire("after-walks")
        timings.rwalk = span.duration

        with rec.span("word2vec", workers=cfg.workers) as span:
            if resume and store.has("embeddings"):
                embeddings, trainer_stats = store.load_embeddings()
                rng = store.load_rng("embeddings")
                cached.append("embeddings")
                span.annotate(cached=True)
            else:
                span.annotate(cached=False)
                embeddings, trainer_stats = train_embeddings(
                    corpus,
                    graph.num_nodes,
                    config=cfg.sgns,
                    batch_sentences=cfg.batch_sentences,
                    seed=rng,
                    workers=cfg.workers,
                    supervisor=cfg.supervisor,
                    fault_plan=plan,
                )
                if store is not None:
                    store.save_embeddings(embeddings, trainer_stats, rng=rng)
                plan.fire("after-word2vec")
        timings.word2vec = span.duration
        return (embeddings, timings, walk_stats, trainer_stats, corpus,
                rng, cached)

    # ------------------------------------------------------------------
    def _run_task(
        self,
        run_fn,
        task_name: str,
        edges: TemporalEdgeList,
        seed: SeedLike,
    ) -> PipelineResult:
        """Shared driver: phases 1-2, then the (checkpointed) task phase."""
        with self._observe():
            rng = make_rng(seed)
            store = self._open_store(rng, edges)
            (embeddings, timings, walk_stats, trainer_stats, corpus, rng,
             cached) = self._embed(edges, rng, store)
            phase = f"task-{task_name}"
            if store is not None and self.config.resume and store.has(phase):
                result, _ = store.load_pickle(phase)
                cached.append(phase)
            else:
                result = run_fn(embeddings, rng)
                if store is not None:
                    store.save_pickle(phase, result, rng=rng)
                    # Auxiliary artifacts are namespaced per task so
                    # running a second task type against the same store
                    # never overwrites the first task's
                    # splits/classifier.
                    if result.splits is not None:
                        store.save_splits(result.splits,
                                          phase=f"splits-{task_name}")
                    if result.model is not None:
                        store.save_classifier(result.model,
                                              phase=f"classifier-{task_name}")
                self._fault_plan().fire("after-task")
            return self._finish(
                result, timings, embeddings, walk_stats, trainer_stats,
                corpus, cached_phases=tuple(cached),
            )

    def run_link_prediction(
        self, edges: TemporalEdgeList, seed: SeedLike = None
    ) -> PipelineResult:
        """End-to-end link prediction on a temporal edge stream."""
        task = LinkPredictionTask(self.config.link_prediction)
        return self._run_task(
            lambda embeddings, rng: task.run(embeddings, edges, seed=rng),
            "link-prediction", edges, seed,
        )

    def run_node_classification(
        self, dataset: LabeledTemporalDataset, seed: SeedLike = None
    ) -> PipelineResult:
        """End-to-end node classification on a labeled temporal dataset."""
        task = NodeClassificationTask(self.config.node_classification)
        return self._run_task(
            lambda embeddings, rng: task.run(
                embeddings, dataset.labels, seed=rng
            ),
            "node-classification", dataset.edges, seed,
        )

    def run_link_property_prediction(
        self,
        edges: TemporalEdgeList,
        edge_labels: np.ndarray,
        seed: SeedLike = None,
    ) -> PipelineResult:
        """End-to-end §VIII-B extension: predict per-edge labels."""
        task = LinkPropertyPredictionTask(self.config.link_property)
        return self._run_task(
            lambda embeddings, rng: task.run(
                embeddings, edges, edge_labels, seed=rng
            ),
            "link-property-prediction", edges, seed,
        )

    # ------------------------------------------------------------------
    def _finish(
        self,
        result: TaskResult,
        timings: PhaseTimings,
        embeddings: NodeEmbeddings,
        walk_stats: WalkStats,
        trainer_stats: TrainerStats,
        corpus: WalkCorpus,
        cached_phases: tuple[str, ...] = (),
    ) -> PipelineResult:
        timings.data_prep = result.data_prep_seconds
        timings.train = result.train_seconds
        timings.test = result.test_seconds
        timings.train_epochs = result.history.epochs_run
        return PipelineResult(
            task_result=result,
            timings=timings,
            embeddings=embeddings,
            walk_stats=walk_stats,
            trainer_stats=trainer_stats,
            corpus_num_walks=corpus.num_walks,
            corpus_mean_length=float(corpus.lengths.mean()),
            cached_phases=cached_phases,
        )
