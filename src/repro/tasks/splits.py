"""Train/validation/test splitting (Fig. 7 steps 1-2).

Link prediction: sort edges by timestamp, hold out the last 20% for
testing ("train the classifier on the past edges and test it on the
future edges"), then randomly sample 60% and 20% of the *total* edges
from the remaining early portion for training and validation.

Node classification: the artifact ships random train/valid/test label
files; we reproduce that with a stratified random node split so every
class appears in every partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataPreparationError
from repro.graph.edges import TemporalEdgeList
from repro.rng import SeedLike, make_rng


@dataclass
class EdgeSplits:
    """Positive-edge partitions of a temporal graph."""

    train: TemporalEdgeList
    valid: TemporalEdgeList
    test: TemporalEdgeList

    @property
    def total(self) -> int:
        """Sum over all categories."""
        return len(self.train) + len(self.valid) + len(self.test)


def temporal_edge_split(
    edges: TemporalEdgeList,
    train_fraction: float = 0.6,
    valid_fraction: float = 0.2,
    test_fraction: float = 0.2,
    seed: SeedLike = None,
) -> EdgeSplits:
    """Fig. 7 split: chronological test tail, random train/valid on the rest.

    Fractions are of the *total* edge count and must sum to <= 1 (the
    default 60/20/20 uses everything).  The test partition is always the
    chronologically latest ``test_fraction`` of edges.
    """
    for name, frac in (
        ("train_fraction", train_fraction),
        ("valid_fraction", valid_fraction),
        ("test_fraction", test_fraction),
    ):
        if not 0.0 <= frac <= 1.0:
            raise DataPreparationError(f"{name} must be in [0, 1], got {frac}")
    if train_fraction + valid_fraction + test_fraction > 1.0 + 1e-9:
        raise DataPreparationError("split fractions must sum to <= 1")
    if len(edges) < 3:
        raise DataPreparationError(
            f"need at least 3 edges to split, got {len(edges)}"
        )

    rng = make_rng(seed)
    early, test = edges.split_at_fraction(1.0 - test_fraction)

    n_total = len(edges)
    n_train = int(round(train_fraction * n_total))
    n_valid = int(round(valid_fraction * n_total))
    if train_fraction + valid_fraction + test_fraction > 1.0 - 1e-9:
        # Fractions cover everything: absorb rounding so the partitions
        # are exact and exhaustive.
        n_train = min(n_train, len(early))
        n_valid = len(early) - n_train
    elif n_train + n_valid > len(early):
        raise DataPreparationError(
            f"cannot draw {n_train}+{n_valid} train/valid edges from "
            f"{len(early)} early edges"
        )
    order = rng.permutation(len(early))
    train = early.take(order[:n_train])
    valid = early.take(order[n_train: n_train + n_valid])
    return EdgeSplits(train=train, valid=valid, test=test)


@dataclass
class NodeSplits:
    """Node-index partitions for node classification."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray


def stratified_node_split(
    labels: np.ndarray,
    train_fraction: float = 0.6,
    valid_fraction: float = 0.2,
    seed: SeedLike = None,
) -> NodeSplits:
    """Random per-class split of labeled nodes into train/valid/test.

    Within every class, ``train_fraction`` of its nodes go to train,
    ``valid_fraction`` to valid, and the remainder to test, so class
    balance is preserved across partitions (what the artifact's
    ``process_dataset.py`` produces).

    Tiny classes fill partitions in priority order **train, test,
    valid** — a classifier can never be asked to predict a label it has
    not seen.  Precisely:

    - every class appears in **train** (including singletons);
    - every class with >= 2 members also appears in **test**;
    - every class with >= 3 members also appears in **valid** when
      ``valid_fraction > 0`` (with ``valid_fraction == 0`` valid is
      empty and the remainder goes to test).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if not 0 < train_fraction < 1 or not 0 <= valid_fraction < 1:
        raise DataPreparationError("fractions must be in (0, 1)")
    if train_fraction + valid_fraction >= 1.0:
        raise DataPreparationError("train + valid fractions must leave a test share")
    rng = make_rng(seed)
    train_parts: list[np.ndarray] = []
    valid_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        n = len(members)
        # Train first: at least one member always (the old clamp
        # ``min(..., n - 1)`` sent singleton classes entirely to test),
        # leaving one member for test when n >= 2 and one more for
        # valid when n >= 3 and a valid share was requested.
        reserve = 0 if n == 1 else (1 if n == 2 or valid_fraction == 0 else 2)
        n_train = min(max(1, int(round(train_fraction * n))), n - reserve)
        rest = n - n_train
        # Valid never starves test: test keeps >= 1 whenever rest >= 1.
        n_valid = min(int(round(valid_fraction * n)), max(0, rest - 1))
        if valid_fraction > 0 and rest >= 2 and n_valid == 0:
            n_valid = 1
        train_parts.append(members[:n_train])
        valid_parts.append(members[n_train: n_train + n_valid])
        test_parts.append(members[n_train + n_valid:])
    return NodeSplits(
        train=np.concatenate(train_parts),
        valid=np.concatenate(valid_parts),
        test=np.concatenate(test_parts),
    )
