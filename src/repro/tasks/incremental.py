"""Incremental embedding maintenance for evolving graphs.

§VII-B's deployment story: the graph keeps growing, and naively the
entire pipeline re-runs per update.  :class:`IncrementalEmbedder`
implements the cheaper alternative the paper's time-breakdown analysis
motivates — after each edge batch, re-walk only the nodes whose temporal
neighborhoods changed and fine-tune the *existing* skip-gram model on
the fresh walks, instead of rebuilding embeddings from scratch.

The trade-off (measured by ``bench_incremental_updates``): incremental
updates are much cheaper per batch, at a small accuracy cost relative to
a full rebuild because walks through unaffected prefixes stay stale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.embedding.batched import BatchedSgnsTrainer
from repro.embedding.embeddings import NodeEmbeddings
from repro.embedding.skipgram import SkipGramModel
from repro.embedding.trainer import SgnsConfig
from repro.errors import EmbeddingError
from repro.graph.csr import TemporalGraph
from repro.graph.dynamic import DynamicTemporalGraph
from repro.rng import SeedLike, make_rng
from repro.walk.batched import make_walk_engine
from repro.walk.config import WalkConfig
from repro.walk.engine import TemporalWalkEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.store import EmbeddingStore


@dataclass
class UpdateReport:
    """What one incremental update did."""

    generation: int
    affected_nodes: int
    walks_generated: int
    seconds: float
    full_rebuild: bool


class IncrementalEmbedder:
    """Maintains node embeddings over a growing temporal graph."""

    def __init__(
        self,
        dynamic: DynamicTemporalGraph,
        walk_config: WalkConfig | None = None,
        sgns_config: SgnsConfig | None = None,
        batch_sentences: int = 1024,
        seed: SeedLike = None,
        store: "EmbeddingStore | None" = None,
        sampler: str = "cdf",
    ) -> None:
        self.dynamic = dynamic
        self.walk_config = walk_config or WalkConfig()
        self.sgns_config = sgns_config or SgnsConfig()
        self.batch_sentences = batch_sentences
        self.store = store
        self.sampler = sampler
        self._rng = make_rng(seed)
        self._model: SkipGramModel | None = None
        self._synced_generation: int | None = None
        self._engine: TemporalWalkEngine | None = None
        self._engine_generation: int | None = None
        self.reports: list[UpdateReport] = []

    # ------------------------------------------------------------------
    def _walk_engine(self, graph: TemporalGraph) -> TemporalWalkEngine:
        """Engine cached per graph generation.

        A fresh engine rebuilds the O(E) softmax step table (plus its
        ``exp`` work) on first use; constructing one per update made
        that the dominant avoidable cost of the serving ingest path.
        The engine — and with it every cached table — is reused until
        :class:`DynamicTemporalGraph` bumps its generation.  With
        ``sampler="batched"`` the cached tables also include the
        window/successor tables, and a finite ``walk_config.time_window``
        bounds each affected node's re-walk scan, so per-update refresh
        work stays bounded as the graph grows.
        """
        generation = self.dynamic.generation
        if (
            self._engine is None
            or self._engine_generation != generation
            or self._engine.graph is not graph
        ):
            self._engine = make_walk_engine(graph, sampler=self.sampler)
            self._engine_generation = generation
        return self._engine

    def _publish(self) -> None:
        """Push the current embeddings into the serving store, if any."""
        if self.store is not None and self._model is not None:
            self.store.publish(
                self._model.w_in, generation=self.dynamic.generation
            )

    def _sync_to(self, generation: int) -> None:
        """Advance the synced marker, releasing the consumed one.

        Without the release, a long-running ingest loop would pin one
        marker entry per update in the dynamic graph forever.
        """
        previous = self._synced_generation
        self._synced_generation = generation
        if previous is not None and previous != generation:
            self.dynamic.release_marker(previous)

    # ------------------------------------------------------------------
    @property
    def embeddings(self) -> NodeEmbeddings:
        """Current embeddings (requires a prior rebuild())."""
        if self._model is None:
            raise EmbeddingError("call rebuild() before reading embeddings")
        return NodeEmbeddings(self._model.w_in)

    # ------------------------------------------------------------------
    def rebuild(self) -> UpdateReport:
        """Full pipeline phases 1-2 from scratch (the baseline path)."""
        start = time.perf_counter()
        graph = self.dynamic.graph()
        engine = self._walk_engine(graph)
        corpus = engine.run(self.walk_config, seed=self._rng)
        trainer = BatchedSgnsTrainer(
            self.sgns_config, batch_sentences=self.batch_sentences
        )
        self._model = trainer.train(corpus, graph.num_nodes, seed=self._rng)
        self._sync_to(self.dynamic.generation)
        self._publish()
        report = UpdateReport(
            generation=self.dynamic.generation,
            affected_nodes=graph.num_nodes,
            walks_generated=corpus.num_walks,
            seconds=time.perf_counter() - start,
            full_rebuild=True,
        )
        self.reports.append(report)
        return report

    def update(self) -> UpdateReport:
        """Fine-tune on walks from nodes affected since the last sync.

        Grows the model for unseen nodes, regenerates ``K`` walks from
        each affected node over the *current* graph, and continues
        training the existing model on just those sentences.
        """
        if self._model is None or self._synced_generation is None:
            return self.rebuild()
        start = time.perf_counter()
        marker = self._synced_generation
        affected = self.dynamic.affected_nodes(marker)
        graph = self.dynamic.graph()
        self._model.grow(graph.num_nodes, seed=self._rng)

        if len(affected) == 0:
            self._sync_to(self.dynamic.generation)
            self._publish()
            report = UpdateReport(
                generation=self.dynamic.generation,
                affected_nodes=0, walks_generated=0,
                seconds=time.perf_counter() - start, full_rebuild=False,
            )
            self.reports.append(report)
            return report

        engine = self._walk_engine(graph)
        corpus = engine.run(
            self.walk_config, seed=self._rng, start_nodes=affected
        )
        trainer = BatchedSgnsTrainer(
            self.sgns_config, batch_sentences=self.batch_sentences
        )
        self._model = trainer.train(
            corpus, graph.num_nodes, seed=self._rng, model=self._model
        )
        self._sync_to(self.dynamic.generation)
        self._publish()
        report = UpdateReport(
            generation=self.dynamic.generation,
            affected_nodes=len(affected),
            walks_generated=corpus.num_walks,
            seconds=time.perf_counter() - start,
            full_rebuild=False,
        )
        self.reports.append(report)
        return report
