"""Ranking evaluation for link prediction: MRR and Hits@k.

The paper evaluates link prediction as balanced binary classification
(accuracy over positives + sampled negatives).  The CTDNE/node2vec
literature also reports *ranking* metrics, which are what a deployed
recommender cares about: for each held-out future edge ``(u, v)``, rank
the true destination ``v`` against ``k`` sampled distractor
destinations by classifier score, and report the mean reciprocal rank
and Hits@k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.embeddings import NodeEmbeddings
from repro.errors import DataPreparationError
from repro.graph.edges import TemporalEdgeList
from repro.rng import SeedLike, make_rng
from repro.tasks.link_prediction import TaskResult


@dataclass(frozen=True)
class RankingMetrics:
    """Ranking evaluation summary."""

    mrr: float
    hits_at: dict[int, float]
    num_queries: int
    num_candidates: int

    def as_row(self) -> dict[str, float | int]:
        """Dict form for table rendering."""
        row: dict[str, float | int] = {
            "mrr": round(self.mrr, 4),
            "queries": self.num_queries,
        }
        for k, v in sorted(self.hits_at.items()):
            row[f"hits@{k}"] = round(v, 4)
        return row


def rank_link_predictions(
    result: TaskResult,
    embeddings: NodeEmbeddings,
    test_edges: TemporalEdgeList,
    num_negatives: int = 50,
    hits_ks: tuple[int, ...] = (1, 5, 10),
    forbidden: set[tuple[int, int]] | None = None,
    max_queries: int = 500,
    seed: SeedLike = None,
) -> RankingMetrics:
    """Rank each test edge's true destination among sampled distractors.

    ``result`` must be a link-prediction :class:`TaskResult` carrying its
    trained model and scaler (``result.score_link``).  Distractor
    destinations are uniform random nodes, rejected against
    ``forbidden`` (pass the input graph's edge-key set to exclude true
    edges) and the true destination.  Ties in score count pessimistically
    (true edge ranked after equal-scored distractors).
    """
    if result.model is None:
        raise DataPreparationError(
            "result does not carry a trained model; run LinkPredictionTask "
            "first"
        )
    if len(test_edges) == 0:
        raise DataPreparationError("no test edges to rank")
    if num_negatives < 1:
        raise DataPreparationError(
            f"num_negatives must be >= 1, got {num_negatives}"
        )
    rng = make_rng(seed)
    forbidden = forbidden or set()
    num_nodes = embeddings.num_nodes

    query_count = min(max_queries, len(test_edges))
    chosen = rng.choice(len(test_edges), size=query_count, replace=False)

    reciprocal_ranks = []
    hits = {k: 0 for k in hits_ks}
    for index in chosen:
        u = int(test_edges.src[index])
        v = int(test_edges.dst[index])
        distractors: list[int] = []
        attempts = 0
        while len(distractors) < num_negatives and attempts < 50 * num_negatives:
            attempts += 1
            candidate = int(rng.integers(0, num_nodes))
            if candidate == v or candidate == u:
                continue
            if (u, candidate) in forbidden:
                continue
            distractors.append(candidate)
        if len(distractors) < num_negatives:
            raise DataPreparationError(
                "could not sample enough distractors; graph too dense"
            )
        destinations = np.array([v] + distractors, dtype=np.int64)
        sources = np.full(len(destinations), u, dtype=np.int64)
        scores = result.score_link(embeddings, sources, destinations)
        # Pessimistic rank of the true edge (index 0).
        rank = 1 + int(np.sum(scores[1:] >= scores[0]))
        reciprocal_ranks.append(1.0 / rank)
        for k in hits_ks:
            if rank <= k:
                hits[k] += 1

    return RankingMetrics(
        mrr=float(np.mean(reciprocal_ranks)),
        hits_at={k: hits[k] / query_count for k in hits_ks},
        num_queries=query_count,
        num_candidates=num_negatives + 1,
    )
