"""Downstream tasks and the end-to-end pipeline.

Implements §IV-B / §V-C / §V-D: Fig. 7 data preparation (temporal split,
negative edge sampling, concatenated edge features), the 2-layer-FNN link
prediction task, the 3-layer-FNN node classification task, the §VIII-B
link-property-prediction extension, and the four-phase pipeline with
per-phase timing (Table III's row structure).
"""

from repro.tasks.splits import EdgeSplits, temporal_edge_split, stratified_node_split
from repro.tasks.negative_sampling import sample_negative_edges
from repro.tasks.features import (
    build_link_prediction_features,
    build_node_classification_features,
)
from repro.tasks.link_prediction import (
    LinkPredictionConfig,
    LinkPredictionTask,
    TaskResult,
)
from repro.tasks.node_classification import (
    NodeClassificationConfig,
    NodeClassificationTask,
)
from repro.tasks.link_property import (
    LinkPropertyConfig,
    LinkPropertyPredictionTask,
)
from repro.tasks.pipeline import (
    Pipeline,
    PipelineConfig,
    PipelineResult,
    PhaseTimings,
)
from repro.tasks.incremental import IncrementalEmbedder, UpdateReport
from repro.tasks.ranking import RankingMetrics, rank_link_predictions
from repro.tasks.sweeps import SweepResult, sweep_dataset, sweep_hyperparameter

__all__ = [
    "EdgeSplits",
    "temporal_edge_split",
    "stratified_node_split",
    "sample_negative_edges",
    "build_link_prediction_features",
    "build_node_classification_features",
    "LinkPredictionConfig",
    "LinkPredictionTask",
    "TaskResult",
    "NodeClassificationConfig",
    "NodeClassificationTask",
    "LinkPropertyConfig",
    "LinkPropertyPredictionTask",
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "PhaseTimings",
    "IncrementalEmbedder",
    "UpdateReport",
    "RankingMetrics",
    "rank_link_predictions",
    "SweepResult",
    "sweep_dataset",
    "sweep_hyperparameter",
]
