"""Link prediction (§IV-B, Fig. 7).

Casts future-edge prediction as binary classification: a 2-layer FNN on
concatenated endpoint embeddings distinguishes real temporal edges from
corrupted ones, trained with binary cross-entropy and tested on the
chronologically last 20% of edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedding.embeddings import NodeEmbeddings
from repro.graph.edges import TemporalEdgeList
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import BCEWithLogitsLoss
from repro.nn.metrics import binary_accuracy, roc_auc
from repro.nn.module import Module, Sequential
from repro.observability import get_recorder
from repro.rng import SeedLike, make_rng
from repro.tasks.features import Standardizer, build_link_prediction_features
from repro.tasks.negative_sampling import sample_negative_edges
from repro.tasks.splits import temporal_edge_split
from repro.tasks.training import TrainHistory, TrainSettings, train_classifier


@dataclass(frozen=True)
class LinkPredictionConfig:
    """Architecture and training knobs for the link-prediction FNN."""

    hidden_dim: int = 32
    train_fraction: float = 0.6
    valid_fraction: float = 0.2
    test_fraction: float = 0.2
    training: TrainSettings = field(default_factory=TrainSettings)


@dataclass
class TaskResult:
    """Outcome of one downstream-task run.

    ``model`` and ``scaler`` are the trained classifier and the feature
    standardizer fit on the training partition, kept so callers can score
    new inputs (e.g. ranking candidate recommendations) with exactly the
    artifacts evaluation used.  ``splits`` records the train/valid/test
    partition the run used (:class:`~repro.tasks.splits.EdgeSplits` or
    :class:`~repro.tasks.splits.NodeSplits`), so checkpointing can
    persist the exact split indices alongside the classifier weights.
    """

    task: str
    accuracy: float
    auc: float | None
    history: TrainHistory
    data_prep_seconds: float
    train_seconds: float
    test_seconds: float
    num_train: int
    num_test: int
    model: Module | None = None
    scaler: object | None = None
    splits: object | None = None

    def score_link(
        self, embeddings: NodeEmbeddings, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray:
        """Classifier probability that each (src, dst) edge exists.

        Only meaningful for link-prediction results (binary single-logit
        models trained on concatenated edge features).
        """
        if self.model is None or self.scaler is None:
            raise ValueError("this result does not carry a trained model")
        features = self.scaler.transform(
            embeddings.edge_features(np.asarray(src), np.asarray(dst))
        )
        return _sigmoid(self.model.forward(features).reshape(-1))

    def summary(self) -> str:
        """One-line human-readable result summary."""
        auc_part = f", auc={self.auc:.3f}" if self.auc is not None else ""
        return (
            f"{self.task}: accuracy={self.accuracy:.3f}{auc_part} "
            f"(train {self.train_seconds:.2f}s over "
            f"{self.history.epochs_run} epochs, test {self.test_seconds:.3f}s)"
        )


def build_link_prediction_model(
    feature_dim: int, hidden_dim: int, seed: SeedLike = None
) -> Module:
    """The paper's 2-layer FNN: 2d -> hidden -> 1 logit."""
    rng = make_rng(seed)
    return Sequential(
        Linear(feature_dim, hidden_dim, seed=rng),
        ReLU(),
        Linear(hidden_dim, 1, seed=rng),
    )


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class LinkPredictionTask:
    """Prepare data, train, and evaluate link prediction end to end."""

    def __init__(self, config: LinkPredictionConfig | None = None) -> None:
        self.config = config or LinkPredictionConfig()

    def run(
        self,
        embeddings: NodeEmbeddings,
        edges: TemporalEdgeList,
        seed: SeedLike = None,
    ) -> TaskResult:
        """Full Fig. 7 preparation plus classifier train/test.

        ``edges`` is the input temporal graph's edge stream; negatives in
        every partition are verified absent from the *whole* input graph
        and disjoint from each other.
        """
        cfg = self.config
        rng = make_rng(seed)
        rec = get_recorder()

        with rec.span("data_prep", task="link-prediction") as prep_span:
            splits = temporal_edge_split(
                edges,
                train_fraction=cfg.train_fraction,
                valid_fraction=cfg.valid_fraction,
                test_fraction=cfg.test_fraction,
                seed=rng,
            )
            forbidden = edges.edge_key_set()
            partitions = {}
            for name, positives in (
                ("train", splits.train), ("valid", splits.valid), ("test", splits.test)
            ):
                negatives = sample_negative_edges(
                    positives, forbidden, edges.num_nodes, seed=rng
                )
                # Keep later partitions from re-drawing these negatives.
                forbidden |= negatives.edge_key_set()
                partitions[name] = build_link_prediction_features(
                    embeddings, positives, negatives
                )
            scaler = Standardizer().fit(partitions["train"][0])
            partitions = {
                name: (scaler.transform(x), y) for name, (x, y) in partitions.items()
            }
        data_prep_seconds = prep_span.duration

        model = build_link_prediction_model(
            feature_dim=2 * embeddings.dim, hidden_dim=cfg.hidden_dim, seed=rng
        )
        loss = BCEWithLogitsLoss()

        def evaluate_accuracy(m: Module, x: np.ndarray, y: np.ndarray) -> float:
            probs = _sigmoid(m.forward(x).reshape(-1))
            return binary_accuracy(probs, y)

        with rec.span("train", task="link-prediction"):
            history = train_classifier(
                model, loss, partitions["train"], partitions["valid"],
                cfg.training, evaluate_accuracy, seed=rng,
            )

        with rec.span("test", task="link-prediction") as test_span:
            test_x, test_y = partitions["test"]
            probs = _sigmoid(model.forward(test_x).reshape(-1))
            accuracy = binary_accuracy(probs, test_y)
            auc = roc_auc(probs, test_y)
        test_seconds = test_span.duration

        return TaskResult(
            task="link-prediction",
            accuracy=accuracy,
            auc=auc,
            history=history,
            data_prep_seconds=data_prep_seconds,
            train_seconds=history.total_seconds,
            test_seconds=test_seconds,
            num_train=len(partitions["train"][1]),
            num_test=len(test_y),
            model=model,
            scaler=scaler,
            splits=splits,
        )
