"""Library-level hyperparameter sweeps (the Fig. 8 methodology).

Turns the accuracy-vs-complexity study into a reusable API: sweep one of
the three hyperparameters (walks/node ``K``, walk length ``L``,
embedding dimension ``d``) over a dataset, averaging over seeds, and
optionally detect the saturation point — the value past which further
increases buy less than a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.embedding.embeddings import train_embeddings
from repro.embedding.trainer import SgnsConfig
from repro.errors import ReproError
from repro.graph.csr import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.graph.io import LabeledTemporalDataset
from repro.tasks.link_prediction import LinkPredictionConfig, LinkPredictionTask
from repro.tasks.node_classification import (
    NodeClassificationConfig,
    NodeClassificationTask,
)
from repro.walk.config import WalkConfig
from repro.walk.engine import TemporalWalkEngine

PARAMETERS = ("num_walks", "walk_length", "dimension")


@dataclass
class SweepResult:
    """Accuracy series over one hyperparameter."""

    parameter: str
    values: list[int]
    accuracies: dict[int, float] = field(default_factory=dict)

    def saturation_point(self, tolerance: float = 0.01) -> int:
        """Smallest value within ``tolerance`` of the best accuracy.

        This is how the paper reads Fig. 8: the knee where extra
        complexity stops buying accuracy.
        """
        best = max(self.accuracies.values())
        for value in sorted(self.accuracies):
            if self.accuracies[value] >= best - tolerance:
                return value
        return max(self.accuracies)

    def rows(self) -> list[dict[str, float | int]]:
        """Dict rows for table rendering."""
        return [
            {self.parameter: v, "accuracy": self.accuracies[v]}
            for v in sorted(self.accuracies)
        ]


def sweep_hyperparameter(
    parameter: str,
    values: Sequence[int],
    edges: TemporalEdgeList,
    labels: np.ndarray | None = None,
    seeds: Sequence[int] = (11, 31, 51),
    base_walk: WalkConfig | None = None,
    base_sgns: SgnsConfig | None = None,
    lp_config: LinkPredictionConfig | None = None,
    nc_config: NodeClassificationConfig | None = None,
    treat_undirected: bool = True,
) -> SweepResult:
    """Sweep ``parameter`` and return the mean-accuracy series.

    With ``labels`` the task is node classification, otherwise link
    prediction.  The other two hyperparameters stay at their ``base_*``
    values (paper defaults K=10, L=6, d=8).
    """
    if parameter not in PARAMETERS:
        raise ReproError(
            f"unknown parameter {parameter!r}; options: {PARAMETERS}"
        )
    base_walk = base_walk or WalkConfig()
    base_sgns = base_sgns or SgnsConfig()
    walk_edges = edges.with_reverse_edges() if treat_undirected else edges
    graph = TemporalGraph.from_edge_list(walk_edges)

    def accuracy_for(value: int, seed: int) -> float:
        walk = WalkConfig(
            num_walks_per_node=(value if parameter == "num_walks"
                                else base_walk.num_walks_per_node),
            max_walk_length=(value if parameter == "walk_length"
                             else base_walk.max_walk_length),
            bias=base_walk.bias,
        )
        sgns = SgnsConfig(
            dim=value if parameter == "dimension" else base_sgns.dim,
            epochs=base_sgns.epochs,
            learning_rate=base_sgns.learning_rate,
        )
        corpus = TemporalWalkEngine(graph).run(walk, seed=seed)
        embeddings, _ = train_embeddings(corpus, graph.num_nodes, sgns,
                                         seed=seed + 1)
        if labels is None:
            task = LinkPredictionTask(lp_config or LinkPredictionConfig())
            return task.run(embeddings, edges, seed=seed + 2).accuracy
        task_nc = NodeClassificationTask(
            nc_config or NodeClassificationConfig()
        )
        return task_nc.run(embeddings, labels, seed=seed + 2).accuracy

    result = SweepResult(parameter=parameter, values=list(values))
    for value in values:
        result.accuracies[value] = float(
            np.mean([accuracy_for(value, s) for s in seeds])
        )
    return result


def sweep_dataset(
    dataset: LabeledTemporalDataset | TemporalEdgeList,
    parameter: str,
    values: Sequence[int],
    **kwargs,
) -> SweepResult:
    """Convenience wrapper dispatching on the dataset type."""
    if isinstance(dataset, LabeledTemporalDataset):
        return sweep_hyperparameter(
            parameter, values, dataset.edges, labels=dataset.labels, **kwargs
        )
    return sweep_hyperparameter(parameter, values, dataset, **kwargs)
