"""Feature construction (Fig. 7 step 4).

Link prediction: an edge's feature is the concatenation of its endpoint
embeddings ``[f(u), f(v)]``; positives get label 1, negatives label 0.
Node classification: a node's feature is its embedding; the label comes
from the dataset.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.embeddings import NodeEmbeddings
from repro.errors import DataPreparationError
from repro.graph.edges import TemporalEdgeList


class Standardizer:
    """Per-feature standardization fit on the training partition.

    Embedding scales vary with corpus size and training length; without
    normalization the small FNN classifiers are prone to collapsing onto
    the majority class.  Constant features standardize to zero.
    """

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "Standardizer":
        """Fit statistics on the training features; returns self."""
        self.mean = features.mean(axis=0)
        std = features.std(axis=0)
        self.std = np.where(std > 0, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the fitted standardization."""
        if self.mean is None or self.std is None:
            raise DataPreparationError("Standardizer used before fit")
        return (features - self.mean) / self.std

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` and return them standardized."""
        return self.fit(features).transform(features)


def build_link_prediction_features(
    embeddings: NodeEmbeddings,
    positives: TemporalEdgeList,
    negatives: TemporalEdgeList,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(features, labels)`` for one link-prediction partition.

    Features have shape ``(n_pos + n_neg, 2 * dim)``; labels are float
    0/1 (binary cross-entropy targets).
    """
    pos_x = embeddings.edge_features(positives.src, positives.dst)
    neg_x = embeddings.edge_features(negatives.src, negatives.dst)
    features = np.concatenate([pos_x, neg_x], axis=0)
    labels = np.concatenate(
        [np.ones(len(positives)), np.zeros(len(negatives))]
    )
    return features, labels


def build_node_classification_features(
    embeddings: NodeEmbeddings,
    nodes: np.ndarray,
    labels: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(features, labels)`` for one node-classification partition."""
    nodes = np.asarray(nodes, dtype=np.int64)
    return embeddings.vectors(nodes), np.asarray(labels, dtype=np.int64)[nodes]
