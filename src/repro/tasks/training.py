"""Shared classifier training loop (pipeline phase RW-P3).

Both downstream tasks train small FNNs with SGD over shuffled
mini-batches, validate each epoch, and support early stopping at a target
validation accuracy (the artifact exposes ``target accuracy`` as a
tunable).  The loop records per-epoch wall time because per-epoch
training time is the unit Table III reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.nn.data import DataLoader
from repro.nn.module import Module
from repro.nn.optim import SGD, StepDecay
from repro.observability import get_recorder
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class TrainSettings:
    """Hyperparameters of the FNN classifier stage."""

    epochs: int = 30
    batch_size: int = 128
    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 0.0
    lr_step: int = 10
    lr_gamma: float = 0.5
    target_accuracy: float | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise TrainingError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {self.batch_size}")


@dataclass
class EpochRecord:
    """One epoch's training trace."""

    epoch: int
    train_loss: float
    valid_accuracy: float
    seconds: float


@dataclass
class TrainHistory:
    """Full training trace plus aggregate timings."""

    records: list[EpochRecord] = field(default_factory=list)
    total_seconds: float = 0.0
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """Number of completed epochs."""
        return len(self.records)

    @property
    def seconds_per_epoch(self) -> float:
        """Mean wall seconds per epoch."""
        if not self.records:
            return 0.0
        return self.total_seconds / len(self.records)

    @property
    def final_train_loss(self) -> float:
        """Last epoch's mean training loss (NaN if none)."""
        return self.records[-1].train_loss if self.records else float("nan")


def train_classifier(
    model: Module,
    loss,
    train_xy: tuple[np.ndarray, np.ndarray],
    valid_xy: tuple[np.ndarray, np.ndarray],
    settings: TrainSettings,
    evaluate_accuracy,
    seed: SeedLike = None,
) -> TrainHistory:
    """SGD-train ``model`` and return the per-epoch history.

    ``evaluate_accuracy(model, features, targets) -> float`` abstracts the
    task-specific accuracy (thresholded sigmoid vs argmax softmax).
    """
    rng = make_rng(seed)
    loader = DataLoader(
        train_xy[0], train_xy[1], batch_size=settings.batch_size,
        shuffle=True, seed=rng,
    )
    optimizer = SGD(
        model.parameters(),
        lr=settings.learning_rate,
        momentum=settings.momentum,
        weight_decay=settings.weight_decay,
    )
    schedule = StepDecay(optimizer, settings.lr_step, settings.lr_gamma)
    history = TrainHistory()
    rec = get_recorder()

    for epoch in range(settings.epochs):
        with rec.span("train_epoch", epoch=epoch) as span:
            # Sample-weighted loss: the final batch is usually smaller
            # than batch_size, so an unweighted mean of batch losses
            # would skew train_loss and make it depend on batch_size.
            loss_sum = 0.0
            samples = 0
            for features, targets in loader:
                optimizer.zero_grad()
                logits = model.forward(features)
                loss_sum += float(loss.forward(logits, targets)) * len(targets)
                samples += len(targets)
                model.backward(loss.backward())
                optimizer.step()
            schedule.step()
            valid_acc = evaluate_accuracy(model, valid_xy[0], valid_xy[1])
        seconds = span.duration
        history.records.append(
            EpochRecord(
                epoch=epoch,
                train_loss=loss_sum / samples if samples else 0.0,
                valid_accuracy=valid_acc,
                seconds=seconds,
            )
        )
        history.total_seconds += seconds
        if (
            settings.target_accuracy is not None
            and valid_acc >= settings.target_accuracy
        ):
            history.stopped_early = True
            break
    rec.counter("train.epochs", len(history.records))
    return history
