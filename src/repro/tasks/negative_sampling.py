"""Negative edge construction (Fig. 7 step 3).

The paper constructs label-0 edges "by altering one/both vertex IDs of
positive edges so that the resulting edge is absent in the input graph",
with as many negatives as positives in each partition.  We implement that
corruption sampler with rejection against the full graph's edge-key set
(absence must hold against the *input graph*, not just the partition).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataPreparationError
from repro.graph.edges import TemporalEdgeList
from repro.rng import SeedLike, make_rng

_MAX_ROUNDS = 200


def sample_negative_edges(
    positives: TemporalEdgeList,
    forbidden: set[tuple[int, int]],
    num_nodes: int,
    count: int | None = None,
    corrupt_both_probability: float = 0.5,
    seed: SeedLike = None,
) -> TemporalEdgeList:
    """Sample ``count`` corrupted edges absent from ``forbidden``.

    Each negative starts from a (cyclically reused) positive edge and
    replaces the destination — or, with ``corrupt_both_probability``,
    both endpoints — with uniform random nodes.  Timestamps are inherited
    from the source positive (negatives need a timestamp slot but it is
    unused by the classifier).  Sampling rejects self-loops, edges present
    in ``forbidden``, and duplicates among the negatives themselves.
    """
    if count is None:
        count = len(positives)
    if count == 0:
        return TemporalEdgeList([], [], [], num_nodes=num_nodes)
    if len(positives) == 0:
        raise DataPreparationError("cannot corrupt an empty positive set")
    if num_nodes < 2:
        raise DataPreparationError("need at least 2 nodes to sample negatives")
    density = len(forbidden) / (num_nodes * (num_nodes - 1))
    if density > 0.5:
        raise DataPreparationError(
            f"graph too dense for rejection sampling (density {density:.2f})"
        )

    rng = make_rng(seed)
    base_idx = np.arange(count) % len(positives)
    src = positives.src[base_idx].copy()
    ts = positives.timestamps[base_idx].copy()
    dst = np.empty(count, dtype=np.int64)

    chosen: set[tuple[int, int]] = set()
    pending = np.arange(count)
    for _round in range(_MAX_ROUNDS):
        if len(pending) == 0:
            break
        # Rejected candidates re-derive src from their base positive:
        # without the reset, a candidate whose previous round corrupted
        # both endpoints keeps its random src through every later round,
        # drifting the effective corrupt_both_probability toward 1 and
        # detaching dst-only negatives from their source edge.
        src[pending] = positives.src[base_idx[pending]]
        dst[pending] = rng.integers(0, num_nodes, size=len(pending))
        both = rng.random(len(pending)) < corrupt_both_probability
        src[pending[both]] = rng.integers(0, num_nodes, size=int(both.sum()))
        still: list[int] = []
        for i in pending:
            key = (int(src[i]), int(dst[i]))
            if key[0] == key[1] or key in forbidden or key in chosen:
                still.append(i)
            else:
                chosen.add(key)
        pending = np.asarray(still, dtype=np.int64)
    if len(pending):
        raise DataPreparationError(
            f"failed to sample {len(pending)} of {count} negative edges after "
            f"{_MAX_ROUNDS} rounds; the graph may be too dense or too small"
        )
    return TemporalEdgeList(src, dst, ts, num_nodes=num_nodes)
