"""Evaluation metrics.

The paper reports prediction accuracy for both tasks (Fig. 8); we add
ROC-AUC for link prediction because it is threshold-free and standard in
the CTDNE literature the paper follows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


def accuracy(predicted_classes: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of exact class matches."""
    p = np.asarray(predicted_classes).reshape(-1)
    t = np.asarray(targets).reshape(-1)
    if len(p) != len(t):
        raise TrainingError("prediction/target length mismatch")
    if len(p) == 0:
        return 0.0
    return float(np.mean(p == t))


def binary_accuracy(
    probabilities: np.ndarray, targets: np.ndarray, threshold: float = 0.5
) -> float:
    """Accuracy of thresholded binary probabilities."""
    probs = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    return accuracy((probs >= threshold).astype(np.int64), targets)


def roc_auc(scores: np.ndarray, targets: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Ties in scores receive average ranks, making the estimator exact for
    discrete scores too.  Returns 0.5 when either class is empty.
    """
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    y = np.asarray(targets).reshape(-1).astype(bool)
    if len(s) != len(y):
        raise TrainingError("scores/targets length mismatch")
    n_pos = int(y.sum())
    n_neg = len(y) - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(s, kind="stable")
    ranks = np.empty(len(s), dtype=np.float64)
    ranks[order] = np.arange(1, len(s) + 1)
    # Average ranks over tied score groups.
    sorted_scores = s[order]
    group_start = np.flatnonzero(
        np.concatenate(([True], sorted_scores[1:] != sorted_scores[:-1]))
    )
    group_end = np.concatenate((group_start[1:], [len(s)]))
    for a, b in zip(group_start, group_end):
        if b - a > 1:
            ranks[order[a:b]] = 0.5 * (a + 1 + b)
    rank_sum_pos = ranks[y].sum()
    return float((rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
