"""Extended classification metrics.

The paper reports plain accuracy; real deployments of the two tasks
(recommendation, role identification) care about per-class behaviour,
so the library also provides the standard multi-class diagnostics:
confusion matrices and per-class / macro precision, recall, F1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError


def confusion_matrix(
    predicted: np.ndarray, targets: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` matrix ``C[t, p]``.

    Rows are true classes, columns predictions.
    """
    p = np.asarray(predicted, dtype=np.int64).reshape(-1)
    t = np.asarray(targets, dtype=np.int64).reshape(-1)
    if len(p) != len(t):
        raise TrainingError("prediction/target length mismatch")
    if num_classes is None:
        num_classes = int(max(p.max(initial=0), t.max(initial=0))) + 1
    if len(p) and (p.min() < 0 or t.min() < 0):
        raise TrainingError("class ids must be non-negative")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (t, p), 1)
    return matrix


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class and macro-averaged precision / recall / F1."""

    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray
    support: np.ndarray

    @property
    def macro_precision(self) -> float:
        """Unweighted mean precision over classes."""
        return float(self.precision.mean()) if len(self.precision) else 0.0

    @property
    def macro_recall(self) -> float:
        """Unweighted mean recall over classes."""
        return float(self.recall.mean()) if len(self.recall) else 0.0

    @property
    def macro_f1(self) -> float:
        """Unweighted mean F1 over classes."""
        return float(self.f1.mean()) if len(self.f1) else 0.0

    def rows(self) -> list[dict[str, float | int]]:
        """Per-class dict rows for table rendering."""
        return [
            {
                "class": int(c),
                "precision": float(self.precision[c]),
                "recall": float(self.recall[c]),
                "f1": float(self.f1[c]),
                "support": int(self.support[c]),
            }
            for c in range(len(self.precision))
        ]


def classification_report(
    predicted: np.ndarray, targets: np.ndarray, num_classes: int | None = None
) -> ClassificationReport:
    """Compute per-class precision/recall/F1 from predictions."""
    matrix = confusion_matrix(predicted, targets, num_classes)
    true_positive = np.diag(matrix).astype(np.float64)
    predicted_count = matrix.sum(axis=0).astype(np.float64)
    actual_count = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted_count > 0,
                             true_positive / predicted_count, 0.0)
        recall = np.where(actual_count > 0,
                          true_positive / actual_count, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return ClassificationReport(
        precision=precision,
        recall=recall,
        f1=f1,
        support=matrix.sum(axis=1),
    )
