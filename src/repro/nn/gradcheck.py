"""Finite-difference gradient verification.

The explicit backward passes in :mod:`repro.nn` are hand-derived; this
utility numerically differentiates a model+loss composition and compares
against the analytic gradients, and the test suite runs it over every
layer and loss combination.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def gradient_check(
    model: Module,
    loss,
    x: np.ndarray,
    targets: np.ndarray,
    epsilon: float = 1e-6,
    max_entries: int = 64,
    seed: int = 0,
) -> float:
    """Return the max relative error between analytic and numeric grads.

    Samples up to ``max_entries`` parameter entries (for speed) plus the
    full input gradient.  A correct implementation stays below ~1e-5.
    """
    model.zero_grad()
    out = model.forward(x)
    loss.forward(out, targets)
    grad_in = model.backward(loss.backward())

    rng = np.random.default_rng(seed)
    worst = 0.0

    def relative_error(analytic: float, numeric: float) -> float:
        scale = max(1.0, abs(analytic), abs(numeric))
        return abs(analytic - numeric) / scale

    for param in model.parameters():
        flat = param.data.reshape(-1)
        flat_grad = param.grad.reshape(-1)
        count = min(max_entries, flat.size)
        for idx in rng.choice(flat.size, size=count, replace=False):
            original = flat[idx]
            flat[idx] = original + epsilon
            up = loss.forward(model.forward(x), targets)
            flat[idx] = original - epsilon
            down = loss.forward(model.forward(x), targets)
            flat[idx] = original
            numeric = (up - down) / (2.0 * epsilon)
            worst = max(worst, relative_error(float(flat_grad[idx]), numeric))

    flat_x = x.reshape(-1)
    flat_gx = grad_in.reshape(-1)
    count = min(max_entries, flat_x.size)
    for idx in rng.choice(flat_x.size, size=count, replace=False):
        original = flat_x[idx]
        flat_x[idx] = original + epsilon
        up = loss.forward(model.forward(x), targets)
        flat_x[idx] = original - epsilon
        down = loss.forward(model.forward(x), targets)
        flat_x[idx] = original
        numeric = (up - down) / (2.0 * epsilon)
        worst = max(worst, relative_error(float(flat_gx[idx]), numeric))
    return worst
