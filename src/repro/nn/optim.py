"""Optimizers and learning-rate schedules.

The paper trains both downstream tasks with stochastic gradient descent
(§IV-B); the artifact exposes learning rate and rate decay as tunables,
so we provide classical SGD with optional momentum/weight decay plus a
step-decay schedule.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if not parameters:
            raise TrainingError("optimizer needs at least one parameter")
        if lr <= 0:
            raise TrainingError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters = parameters
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        """Apply one update from accumulated gradients."""
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba) — an extension beyond the paper's SGD.

    Useful when sweeping classifier architectures (§VIII-A) where SGD's
    learning rate would need retuning per architecture.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if not parameters:
            raise TrainingError("optimizer needs at least one parameter")
        if lr <= 0:
            raise TrainingError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise TrainingError(f"betas must be in [0, 1), got {betas}")
        self.parameters = parameters
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one bias-corrected update from accumulated gradients."""
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters:
            p.zero_grad()


class StepDecay:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise TrainingError(f"step_size must be >= 1, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise TrainingError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch, decaying when the boundary is crossed."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
