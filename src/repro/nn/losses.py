"""Loss functions of §IV-B.

Link prediction trains with binary cross-entropy over a 1-logit output
(Eq. 4); node classification with negative log likelihood over ``|C|``
log-probabilities.  Both are implemented in their numerically stable
"with-logits" forms.  A loss exposes ``forward(logits, targets) ->
scalar`` and ``backward() -> grad_logits`` (mean reduction).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


class BCEWithLogitsLoss:
    """Binary cross-entropy on logits, mean-reduced.

    ``logits`` has shape ``(n,)`` or ``(n, 1)``; targets are 0/1 floats.
    Stable form: ``max(z, 0) - z*y + log(1 + exp(-|z|))``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._shape: tuple[int, ...] | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Forward pass; caches what backward needs."""
        z = np.asarray(logits, dtype=np.float64)
        self._shape = z.shape
        z = z.reshape(-1)
        y = np.asarray(targets, dtype=np.float64).reshape(-1)
        if len(z) != len(y):
            raise TrainingError(
                f"logits ({len(z)}) and targets ({len(y)}) length mismatch"
            )
        loss = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
        sig = np.empty_like(z)
        pos = z >= 0
        sig[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        sig[~pos] = ez / (1.0 + ez)
        self._probs = sig
        self._targets = y
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        if self._probs is None or self._targets is None or self._shape is None:
            raise TrainingError("backward called before forward")
        grad = (self._probs - self._targets) / len(self._probs)
        return grad.reshape(self._shape)

    def predictions(self) -> np.ndarray:
        """Probabilities from the last forward pass."""
        if self._probs is None:
            raise TrainingError("predictions requested before forward")
        return self._probs


class CrossEntropyLoss:
    """Log-softmax + NLL on logits, mean-reduced.

    ``logits`` has shape ``(n, num_classes)``; ``targets`` are integer
    class ids.  This is the paper's node-classification loss
    ``L = -log q_c`` with ``q`` the softmax output.
    """

    def __init__(self) -> None:
        self._softmax: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Forward pass; caches what backward needs."""
        z = np.asarray(logits, dtype=np.float64)
        if z.ndim != 2:
            raise TrainingError("CrossEntropyLoss expects (n, num_classes) logits")
        y = np.asarray(targets, dtype=np.int64).reshape(-1)
        if len(z) != len(y):
            raise TrainingError(
                f"logits ({len(z)}) and targets ({len(y)}) length mismatch"
            )
        if y.min(initial=0) < 0 or y.max(initial=0) >= z.shape[1]:
            raise TrainingError("target class out of range")
        shifted = z - z.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        softmax = exp / exp.sum(axis=1, keepdims=True)
        self._softmax = softmax
        self._targets = y
        log_probs = shifted - np.log(exp.sum(axis=1, keepdims=True))
        return float(-log_probs[np.arange(len(y)), y].mean())

    def backward(self) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        if self._softmax is None or self._targets is None:
            raise TrainingError("backward called before forward")
        grad = self._softmax.copy()
        grad[np.arange(len(self._targets)), self._targets] -= 1.0
        return grad / len(self._targets)

    def predictions(self) -> np.ndarray:
        """Class probabilities from the last forward pass."""
        if self._softmax is None:
            raise TrainingError("predictions requested before forward")
        return self._softmax
