"""Mini-batch iteration.

The PyTorch stand-in the classifier stage needs: shuffled fixed-size
batches over (features, targets) arrays.  The paper notes PyTorch's
multi-process data loaders hurt this workload's memory footprint
(§VIII-A); here batching is a zero-copy index view.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import TrainingError
from repro.rng import SeedLike, make_rng


class DataLoader:
    """Shuffled mini-batches over parallel arrays."""

    def __init__(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        batch_size: int = 128,
        shuffle: bool = True,
        seed: SeedLike = None,
        drop_last: bool = False,
    ) -> None:
        self.features = np.asarray(features)
        self.targets = np.asarray(targets)
        if len(self.features) != len(self.targets):
            raise TrainingError(
                f"features ({len(self.features)}) and targets "
                f"({len(self.targets)}) length mismatch"
            )
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = make_rng(seed)

    def __len__(self) -> int:
        n = len(self.features)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.features)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for base in range(0, end, self.batch_size):
            idx = order[base: base + self.batch_size]
            yield self.features[idx], self.targets[idx]
