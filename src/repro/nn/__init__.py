"""Minimal feed-forward neural-network substrate.

The paper's classifier stage is a small PyTorch FNN: 2 layers + binary
cross-entropy for link prediction, 3 layers + negative log likelihood for
node classification, trained with SGD (§IV-B).  PyTorch is not available
offline, so this package implements exactly the pieces those classifiers
need, with explicit forward/backward passes verified by finite-difference
gradient checks in the test suite:

- :class:`Linear`, :class:`ReLU`, :class:`Sigmoid`, :class:`Residual`,
  :class:`Sequential` — layers and composition;
- :class:`BCEWithLogitsLoss`, :class:`CrossEntropyLoss` — the two loss
  functions of §IV-B (cross-entropy = log-softmax + NLL);
- :class:`SGD` — with momentum, weight decay and step decay;
- :class:`DataLoader` — shuffled mini-batching;
- :mod:`repro.nn.metrics` — accuracy and ROC-AUC.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import Dropout, Linear, ReLU, Sigmoid, Tanh, Residual
from repro.nn.losses import BCEWithLogitsLoss, CrossEntropyLoss
from repro.nn.optim import SGD, Adam, StepDecay
from repro.nn.data import DataLoader
from repro.nn.metrics import accuracy, binary_accuracy, roc_auc
from repro.nn.evaluation import (
    ClassificationReport,
    classification_report,
    confusion_matrix,
)
from repro.nn.gradcheck import gradient_check

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Residual",
    "Dropout",
    "BCEWithLogitsLoss",
    "CrossEntropyLoss",
    "SGD",
    "Adam",
    "StepDecay",
    "DataLoader",
    "accuracy",
    "binary_accuracy",
    "roc_auc",
    "ClassificationReport",
    "classification_report",
    "confusion_matrix",
    "gradient_check",
]
