"""Layers: affine, activations, residual block.

:class:`Linear` also counts the GEMM work it performs (flops and operand
sizes) — that feed the Fig. 9 instruction mix and the §VII-B GEMM
size-gap analysis (small classifier matrices vs VGG-sized ones).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.module import Module, Parameter
from repro.rng import SeedLike, make_rng


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for an affine weight."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine layer ``y = x W + b`` with GEMM work accounting."""

    def __init__(
        self, in_features: int, out_features: int, seed: SeedLike = None
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise TrainingError(
                f"Linear dims must be >= 1, got ({in_features}, {out_features})"
            )
        rng = make_rng(seed)
        self.weight = Parameter(
            xavier_uniform(in_features, out_features, rng), name="weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="bias")
        self._input: np.ndarray | None = None
        # Cumulative GEMM statistics (forward + backward), consumed by the
        # hardware models.
        self.flops = 0
        self.gemm_calls = 0

    @property
    def in_features(self) -> int:
        """Input width of the affine map."""
        return self.weight.data.shape[0]

    @property
    def out_features(self) -> int:
        """Output width of the affine map."""
        return self.weight.data.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward needs."""
        self._input = x
        self.flops += 2 * x.shape[0] * self.in_features * self.out_features
        self.gemm_calls += 1
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        if self._input is None:
            raise TrainingError("backward called before forward")
        x = self._input
        self.weight.grad += x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        self.flops += 4 * x.shape[0] * self.in_features * self.out_features
        self.gemm_calls += 2
        return grad_out @ self.weight.data.T

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward needs."""
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        if self._mask is None:
            raise TrainingError("backward called before forward")
        return grad_out * self._mask


class Sigmoid(Module):
    """Logistic activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward needs."""
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        if self._out is None:
            raise TrainingError("backward called before forward")
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward needs."""
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        if self._out is None:
            raise TrainingError("backward called before forward")
        return grad_out * (1.0 - self._out ** 2)


class Dropout(Module):
    """Inverted dropout — an extension beyond the paper's plain FNNs.

    Active only between :meth:`train` and :meth:`eval` toggles; scaling
    at train time keeps eval a pure identity.
    """

    def __init__(self, rate: float = 0.5, seed: SeedLike = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise TrainingError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.training = True
        self._rng = make_rng(seed)
        self._mask: np.ndarray | None = None

    def train(self) -> None:
        """Train over the corpus; returns the fitted model."""
        self.training = True

    def eval(self) -> None:
        """Disable training-time behaviour (dropout off)."""
        self.training = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward needs."""
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Residual(Module):
    """Residual block ``y = x + inner(x)`` (same width in and out).

    §VIII-A notes that swapping the plain FNN for a ResNet-style
    classifier gains ~2% link-prediction accuracy; this block is the
    substrate for that ablation (`benchmarks/bench_ablation_classifier`).
    """

    def __init__(self, inner: Module) -> None:
        self.inner = inner

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward needs."""
        return x + self.inner.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        return grad_out + self.inner.backward(grad_out)
