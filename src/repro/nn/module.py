"""Module and parameter primitives.

A :class:`Module` owns parameters and implements ``forward`` (caching
whatever the backward pass needs) and ``backward`` (consuming the
upstream gradient, accumulating parameter gradients, and returning the
input gradient).  No autograd tape — the network shapes in this project
are small static stacks, and explicit backward passes are easy to verify
with finite differences.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import TrainingError


class Parameter:
    """A trainable array with its gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        self.grad.fill(0.0)

    @property
    def size(self) -> int:
        """Scalar element count."""
        return self.data.size

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for layers and models."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters (recursing into submodules)."""
        params: list[Parameter] = []
        for value in vars(self).values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Layer stack applying modules in order."""

    def __init__(self, *layers: Module) -> None:
        if not layers:
            raise TrainingError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward needs."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the input gradient."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __iter__(self) -> Iterable[Module]:
        return iter(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"Sequential({inner})"
