"""Command-line interface.

The paper's artifact drives everything through shell scripts
(``build_linkpred_run.sh`` etc.) plus two Python utilities
(``preprocess_dataset.py``, ``generate_synthetic.py``).  This module is
the equivalent front door:

- ``repro generate``    — synthetic graphs (Table II shapes or plain ER)
  written as ``.wel`` / labeled ``.npz`` bundles;
- ``repro preprocess``  — clean a raw edge list into normalized ``.wel``
  (strip comments, normalize timestamps), like the artifact's script;
- ``repro linkpred``    — end-to-end link prediction on a ``.wel`` file
  or a named dataset shape;
- ``repro nodeclass``   — end-to-end node classification on a labeled
  ``.npz`` bundle or a named dataset shape;
- ``repro characterize``— the hardware study (instruction mixes, GPU
  stalls, thread scaling) on a synthetic ER graph;
- ``repro serve-sim``   — the online serving simulation: build
  embeddings, stand up the in-process serving frontend
  (:mod:`repro.serving`), drive it with a closed-loop load generator,
  optionally appending edge batches + incremental updates mid-run;
- ``repro stream-sim``  — the durable streaming-ingest simulation: a
  generator thread feeds edge batches through a bounded ingest queue
  into the :class:`~repro.stream.controller.StreamController` (WAL
  append, then graph apply, then policy-driven embedding refresh)
  while the serving frontend takes query load; ``--replay-only``
  recovers and reports a previous run's WAL, which is how the CI
  stream-smoke job verifies crash recovery;
- ``repro pipeline-sim`` — the end-to-end stream→serve loop: ingest
  queue + optional WAL + policy-driven incremental refresh fanned out
  to the replicated sharded tier (:mod:`repro.serving.sharding`) under
  :class:`~repro.serving.controlplane.ControlPlane` supervision, all
  while a closed-loop load generator queries the tier; chaos kills are
  auto-respawned by the control plane.

Every command takes ``--seed`` and the pipeline hyperparameters the
artifact exposes (walks, walk length, dimension, epochs...).  Run
``python -m repro <command> --help`` for details.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.bench.tables import render_table
from repro.embedding.trainer import SgnsConfig
from repro.errors import ReproError
from repro.graph import TemporalGraph, compute_stats, generators
from repro.graph.io import LabeledTemporalDataset, read_wel, write_wel
from repro.observability import Recorder, get_recorder, use_recorder
from repro.parallel import SupervisorConfig
from repro.tasks.link_prediction import LinkPredictionConfig
from repro.tasks.node_classification import NodeClassificationConfig
from repro.tasks.pipeline import Pipeline, PipelineConfig
from repro.tasks.training import TrainSettings
from repro.walk.config import WalkConfig

LP_SHAPES = ("ia-email", "wiki-talk", "stackoverflow")
NC_SHAPES = ("dblp3", "dblp5", "brain")


def _add_pipeline_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "pipeline hyperparameters (paper defaults: K=10, L=6, d=8)"
    )
    group.add_argument("--walks", type=int, default=10,
                       help="random walks per node (K)")
    group.add_argument("--length", type=int, default=6,
                       help="maximum walk length in nodes (L)")
    group.add_argument("--bias", default="softmax-recency",
                       choices=["uniform", "softmax-late",
                                "softmax-recency", "linear"],
                       help="Eq. 1 transition bias")
    group.add_argument("--sampler", default="cdf",
                       choices=["cdf", "gumbel", "batched"],
                       help="walk step kernel: exact inverse-CDF (cdf), "
                            "paper-faithful scan (gumbel), or the "
                            "frontier-batched window-table kernel "
                            "(batched; see docs/walk_kernels.md)")
    group.add_argument("--walk-windows", type=int, default=64,
                       help="time windows per node for --sampler=batched "
                            "(table memory vs rejection acceptance)")
    group.add_argument("--dim", type=int, default=8,
                       help="embedding dimension (d)")
    group.add_argument("--w2v-epochs", type=int, default=5,
                       help="word2vec epochs")
    group.add_argument("--batch-sentences", type=int, default=1024,
                       help="word2vec batch size (0 = sequential trainer)")
    group.add_argument("--epochs", type=int, default=30,
                       help="classifier training epochs")
    group.add_argument("--lr", type=float, default=0.05,
                       help="classifier learning rate")
    group.add_argument("--target-accuracy", type=float, default=None,
                       help="stop training at this validation accuracy")
    group.add_argument("--directed", action="store_true",
                       help="walk the directed stream (default mirrors "
                            "each edge)")
    group.add_argument("--workers", type=int, default=1,
                       help="worker processes for the walk and word2vec "
                            "phases (1 = serial)")
    fault = parser.add_argument_group(
        "fault tolerance and resumability"
    )
    fault.add_argument("--checkpoint-dir", default=None,
                       help="persist each phase's artifact here (atomic, "
                            "keyed by config fingerprint + seed)")
    fault.add_argument("--resume", action="store_true",
                       help="load completed phases from --checkpoint-dir "
                            "instead of recomputing them")
    fault.add_argument("--shard-timeout", type=float, default=None,
                       help="wall-clock seconds per worker shard attempt "
                            "(default: no timeout)")
    fault.add_argument("--max-retries", type=int, default=2,
                       help="retries per failed worker shard before "
                            "degrading to in-process execution")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write run counters/gauges/histograms as JSON "
                          "(see docs/observability.md)")
    obs.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write the span trace as JSONL, one span per "
                          "line (see docs/observability.md)")
    parser.add_argument("--seed", type=int, default=0)


@contextmanager
def _observability(args: argparse.Namespace) -> Iterator[Recorder | None]:
    """Install an ambient recorder when --metrics-out/--trace-out ask
    for one, and flush the requested files on the way out (including on
    error, so a failed run still leaves a usable partial trace)."""
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    if not metrics_out and not trace_out:
        yield None
        return
    recorder = Recorder()
    try:
        with use_recorder(recorder):
            yield recorder
    finally:
        if metrics_out:
            recorder.write_metrics(metrics_out)
            print(f"wrote metrics: {metrics_out}")
        if trace_out:
            recorder.write_trace(trace_out)
            print(f"wrote trace: {trace_out}")


def _pipeline_from_args(args: argparse.Namespace) -> Pipeline:
    training = TrainSettings(
        epochs=args.epochs,
        learning_rate=args.lr,
        target_accuracy=args.target_accuracy,
    )
    config = PipelineConfig(
        walk=WalkConfig(
            num_walks_per_node=args.walks,
            max_walk_length=args.length,
            bias=args.bias,
            num_windows=args.walk_windows,
        ),
        sgns=SgnsConfig(dim=args.dim, epochs=args.w2v_epochs),
        batch_sentences=args.batch_sentences or None,
        sampler=args.sampler,
        treat_undirected=not args.directed,
        workers=args.workers,
        link_prediction=LinkPredictionConfig(training=training),
        node_classification=NodeClassificationConfig(training=training),
        supervisor=SupervisorConfig(
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
        ),
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    return Pipeline(config)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a synthetic dataset to disk."""
    if args.dataset:
        data = generators.dataset_by_name(
            args.dataset, scale=args.scale, seed=args.seed
        )
        if isinstance(data, LabeledTemporalDataset):
            if not args.output.endswith(".npz"):
                print("error: labeled datasets must be written to .npz",
                      file=sys.stderr)
                return 2
            data.save(args.output)
            print(f"wrote {args.output}: {data.edges.num_nodes} nodes, "
                  f"{len(data.edges)} edges, {data.num_classes} classes")
        else:
            write_wel(data.sorted_by_time(), args.output)
            print(f"wrote {args.output}: {data.num_nodes} nodes, "
                  f"{len(data)} edges")
    else:
        edges = generators.erdos_renyi_temporal(
            args.nodes, args.edges, seed=args.seed
        )
        write_wel(edges.sorted_by_time(), args.output)
        print(f"wrote {args.output}: {edges.num_nodes} nodes, "
              f"{len(edges)} edges (Erdos-Renyi)")
    return 0


def cmd_preprocess(args: argparse.Namespace) -> int:
    """``repro preprocess``: normalize a raw edge list into .wel."""
    edges = read_wel(args.input, normalize=True)
    write_wel(edges.sorted_by_time(), args.output)
    print(f"wrote {args.output}: {edges.num_nodes} nodes, {len(edges)} "
          "edges, timestamps normalized to [0, 1]")
    return 0


def cmd_linkpred(args: argparse.Namespace) -> int:
    """``repro linkpred``: end-to-end link prediction."""
    if args.input:
        edges = read_wel(args.input)
        source = args.input
    else:
        edges = generators.dataset_by_name(args.dataset, seed=args.seed)
        source = f"{args.dataset} (synthetic shape)"
    stats = compute_stats(TemporalGraph.from_edge_list(edges))
    print(f"input: {source} — {stats.num_nodes} nodes, "
          f"{stats.num_edges} temporal edges")
    with _observability(args):
        result = _pipeline_from_args(args).run_link_prediction(
            edges, seed=args.seed
        )
    if result.cached_phases:
        print("cached phases: " + ", ".join(result.cached_phases))
    print(result.summary())
    return 0


def cmd_nodeclass(args: argparse.Namespace) -> int:
    """``repro nodeclass``: end-to-end node classification."""
    if args.input:
        dataset = LabeledTemporalDataset.load(args.input)
        source = args.input
    else:
        dataset = generators.dataset_by_name(args.dataset, seed=args.seed)
        source = f"{args.dataset} (synthetic shape)"
    print(f"input: {source} — {dataset.edges.num_nodes} nodes, "
          f"{len(dataset.edges)} edges, {dataset.num_classes} classes")
    with _observability(args):
        result = _pipeline_from_args(args).run_node_classification(
            dataset, seed=args.seed
        )
    if result.cached_phases:
        print("cached phases: " + ", ".join(result.cached_phases))
    print(result.summary())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: Fig. 8-style hyperparameter sweep."""
    from repro.tasks.sweeps import sweep_dataset

    values = [int(v) for v in args.values.split(",")]
    if args.input:
        if args.input.endswith(".npz"):
            dataset = LabeledTemporalDataset.load(args.input)
        else:
            dataset = read_wel(args.input)
        source = args.input
    else:
        dataset = generators.dataset_by_name(args.dataset, seed=args.seed)
        source = f"{args.dataset} (synthetic shape)"
    print(f"sweeping {args.parameter} over {values} on {source} "
          f"({len(args.seeds.split(','))} seeds)")
    with _observability(args):
        result = sweep_dataset(
            dataset, args.parameter, values,
            seeds=tuple(int(s) for s in args.seeds.split(",")),
            base_walk=WalkConfig(num_walks_per_node=args.walks,
                                 max_walk_length=args.length, bias=args.bias),
            base_sgns=SgnsConfig(dim=args.dim, epochs=args.w2v_epochs),
        )
    print(render_table(result.rows(), title=f"accuracy vs {args.parameter}"))
    print(f"saturation point (1% tolerance): "
          f"{result.saturation_point(0.01)}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """``repro characterize``: the hardware study tables."""
    from repro.embedding.batched import BatchedSgnsTrainer
    from repro.hwmodel import (
        classifier_kernel,
        profile_classifier,
        profile_random_walk,
        profile_word2vec,
        scaling_curve,
        walk_kernel,
        word2vec_kernel,
    )
    from repro.walk.batched import make_walk_engine

    edges = generators.erdos_renyi_temporal(args.nodes, args.edges,
                                            seed=args.seed)
    graph = TemporalGraph.from_edge_list(edges)
    print(f"synthetic ER graph: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges")

    with _observability(args):
        engine = make_walk_engine(graph, sampler=args.sampler)
        with get_recorder().span("rwalk", workers=1):
            corpus = engine.run(
                WalkConfig(num_walks_per_node=args.walks,
                           max_walk_length=args.length, bias=args.bias,
                           num_windows=args.walk_windows),
                seed=args.seed,
            )
        walk_stats = engine.last_stats
        sgns = SgnsConfig(dim=args.dim, epochs=1)
        trainer = BatchedSgnsTrainer(sgns,
                                     batch_sentences=args.batch_sentences
                                     or 1024)
        with get_recorder().span("word2vec", workers=1):
            trainer.train(corpus, graph.num_nodes, seed=args.seed + 1)
        w2v_stats = trainer.last_stats
    dims = [(2 * args.dim, 32), (32, 1)]

    profiles = [
        profile_random_walk(walk_stats),
        profile_word2vec(w2v_stats, sgns),
        profile_classifier("train", dims, 10 * graph.num_edges, 128, True),
        profile_classifier("test", dims, graph.num_edges, 1024, False),
    ]
    print()
    print(render_table(
        [{"kernel": p.name, **{k: round(v, 3) for k, v in
                               p.fractions().items()}} for p in profiles],
        title="Dynamic instruction mix (Fig. 9 analogue)",
    ))

    kernels = [
        walk_kernel(walk_stats, graph),
        word2vec_kernel(w2v_stats, sgns, graph.num_nodes,
                        args.batch_sentences or 1024),
        classifier_kernel("train", dims, 128, 10 * graph.num_edges, True),
        classifier_kernel("test", dims, 1024, graph.num_edges, False),
    ]
    rows = []
    for kernel in kernels:
        report = kernel.report()
        rows.append({
            "kernel": report.name,
            "dominant stall": report.stalls.dominant(),
            "sm util": round(report.sm_utilization, 4),
            "time (s)": report.time_seconds,
        })
    print()
    print(render_table(rows, title="Modeled GPU kernels (Fig. 11 analogue)"))

    work = walk_stats.work_per_start_node + 1.0
    curve = scaling_curve(work, [1, 2, 4, 8, 16, 32, 64, 128])
    print()
    print(render_table(
        [{"threads": t, "speedup": round(s, 1)} for t, s in curve.items()],
        title="Walk-kernel thread scaling, work stealing (Fig. 10 analogue)",
    ))
    return 0


def cmd_serve_sim(args: argparse.Namespace) -> int:
    """``repro serve-sim``: closed-loop online serving simulation."""
    import itertools
    import threading
    import time as time_mod

    import numpy as np

    from repro.graph import DynamicTemporalGraph
    from repro.serving import (
        EmbeddingStore,
        ServingConfig,
        ServingFrontend,
        run_load,
    )
    from repro.tasks.incremental import IncrementalEmbedder

    if args.input:
        edges = read_wel(args.input)
        source = args.input
    else:
        edges = generators.erdos_renyi_temporal(args.nodes, args.edges,
                                                seed=args.seed)
        source = f"ER {args.nodes}x{args.edges} (synthetic)"
    ordered = edges.sorted_by_time()

    # Hold back a tail of the stream to replay as live appends.
    batches = []
    if args.update_batches > 0:
        cut = int(0.7 * len(ordered))
        step = max(1, (len(ordered) - cut) // args.update_batches)
        initial = ordered.take(np.arange(cut))
        for i in range(args.update_batches):
            stop = (cut + (i + 1) * step if i < args.update_batches - 1
                    else len(ordered))
            batches.append(np.arange(cut + i * step, stop))
        batches = [ordered.take(index) for index in batches]
    else:
        initial = ordered

    dynamic = DynamicTemporalGraph(initial)
    store = EmbeddingStore()
    embedder = IncrementalEmbedder(
        dynamic,
        walk_config=WalkConfig(num_walks_per_node=args.walks,
                               max_walk_length=args.length, bias=args.bias),
        sgns_config=SgnsConfig(dim=args.dim, epochs=args.w2v_epochs),
        seed=args.seed,
        store=store,
        sampler=args.sampler,
    )
    with _observability(args) as obs_recorder:
        recorder = obs_recorder if obs_recorder is not None else Recorder()
        with use_recorder(recorder):
            build_start = time_mod.perf_counter()
            embedder.rebuild()
            build_seconds = time_mod.perf_counter() - build_start
            print(f"input: {source} — {dynamic.num_nodes} nodes, "
                  f"{dynamic.num_edges} edges; initial embeddings in "
                  f"{build_seconds:.2f}s (generation {dynamic.generation})")

            writer_error: list[BaseException] = []

            def ingest() -> None:
                try:
                    for batch in batches:
                        time_mod.sleep(args.update_interval)
                        dynamic.append(batch)
                        report = embedder.update()
                        print(f"  ingest: generation {report.generation}, "
                              f"{report.affected_nodes} affected nodes, "
                              f"{report.seconds:.2f}s")
                except BaseException as exc:  # surfaced after the run
                    writer_error.append(exc)

            load_kwargs = dict(
                num_requests=args.requests,
                clients=args.clients,
                topk_fraction=args.topk_fraction,
                k=args.k,
                seed=args.seed,
            )
            if args.shards > 1:
                from repro.serving import (
                    ShardPlan,
                    ShardedFrontend,
                    ShardedPublisher,
                    ShardedServingConfig,
                )

                plan = ShardPlan(args.shards, args.shard_plan)
                shard_config = ShardedServingConfig(
                    default_k=args.k,
                    cache_size=args.cache_size,
                    index=args.index,
                    ann=_ann_config(args),
                    replication_factor=args.replicas,
                )
                with ShardedFrontend(plan, shard_config) as frontend:
                    publisher = ShardedPublisher(frontend)
                    # Installs the warm snapshot now and fans out every
                    # incremental publish the ingest thread triggers.
                    publisher.attach(store)
                    print(f"  shards: {plan.num_shards} x "
                          f"{args.replicas} workers ({plan.strategy} "
                          f"plan), serving version {frontend.version}")
                    controlplane = (_start_controlplane(args, frontend)
                                    if args.autoscale else None)
                    stop_chaos = threading.Event()
                    chaos = []
                    if args.kill_replica is not None:
                        shard_id, replica, delay = _parse_kill_replica(
                            args.kill_replica, args.shards, args.replicas)

                        def killer() -> None:
                            if not stop_chaos.wait(delay):
                                frontend.kill_replica(shard_id, replica)
                                print(f"  chaos: killed shard {shard_id} "
                                      f"replica {replica} after "
                                      f"{delay:.2f}s")

                        chaos.append(threading.Thread(
                            target=killer, daemon=True,
                            name="serve-sim-kill"))
                    if args.rebalance_every > 0:
                        other = ("range" if args.shard_plan == "hash"
                                 else "hash")

                        def rebalancer() -> None:
                            strategies = itertools.cycle(
                                [other, args.shard_plan])
                            while not stop_chaos.wait(
                                    args.rebalance_every):
                                strategy = next(strategies)
                                rebalanced = frontend.rebalance(
                                    ShardPlan(args.shards, strategy))
                                print(f"  rebalance: -> {strategy} plan "
                                      f"in {rebalanced.seconds:.3f}s "
                                      f"(drained={rebalanced.drained})")

                        chaos.append(threading.Thread(
                            target=rebalancer, daemon=True,
                            name="serve-sim-rebalance"))
                    for thread in chaos:
                        thread.start()
                    writer = threading.Thread(target=ingest, daemon=True,
                                              name="serve-sim-ingest")
                    writer.start()
                    report = run_load(frontend, **load_kwargs)
                    stop_chaos.set()
                    writer.join()
                    for thread in chaos:
                        thread.join()
                    if controlplane is not None:
                        _settle_controlplane(frontend, controlplane,
                                             args.shards * args.replicas)
                        controlplane.close()
                    # Pull worker-internal recorder state back to the
                    # router before the workers go away.
                    frontend.worker_metrics()
                    publisher.detach()
            else:
                config = ServingConfig(
                    max_batch_size=args.max_batch_size,
                    max_delay=args.max_delay_ms / 1e3,
                    default_k=args.k,
                    cache_size=args.cache_size,
                    index=args.index,
                    ann=_ann_config(args),
                )
                with ServingFrontend(store, config) as frontend:
                    if frontend.ann is not None:
                        # Serve the initial snapshot from the IVF index
                        # from the first request (later publishes rebuild
                        # async).
                        ready = frontend.ann.wait_ready(timeout=60.0)
                        index = frontend.ann.current
                        if ready and index is not None:
                            print(
                                f"  ann: IVF index v{index.version} — "
                                f"{index.nlist} cells, nprobe "
                                f"{index.nprobe}, "
                                f"{index.nbytes / 1e6:.2f} MB, built in "
                                f"{index.build_seconds:.3f}s")
                        else:
                            print("  ann: index not ready, serving exact "
                                  "fallback until the build lands")
                    writer = threading.Thread(target=ingest, daemon=True,
                                              name="serve-sim-ingest")
                    writer.start()
                    report = run_load(frontend, **load_kwargs)
                    writer.join()
            if writer_error:
                raise writer_error[0]

            counters = recorder.counters
            print()
            print(render_table([report.as_row()],
                               title="Closed-loop load (client side)"))
            if args.shards > 1:
                print()
                print(render_table([_shard_row(recorder)],
                                   title="Sharded tier (recorder)"))
                print()
                print(render_table(
                    _per_shard_rows(recorder, args.shards, report.seconds),
                    title="Per-shard breakdown (recorder)",
                ))
                print()
                print(render_table(
                    [_worker_row(recorder)],
                    title="Worker internals (aggregated over replicas)",
                ))
                if args.autoscale:
                    print()
                    print(render_table(
                        [_controlplane_row(recorder)],
                        title="Control plane (recorder)"))
            else:
                hits = counters.get("serving.index.cache_hits", 0)
                misses = counters.get("serving.index.cache_misses", 0)
                batch_hist = recorder.histograms.get("serving.batch.size")
                print()
                print(render_table(
                    [{
                        "publishes": int(
                            counters.get("serving.store.publishes", 0)),
                        "served generation": int(store.generation),
                        "cache hit rate": (
                            round(hits / (hits + misses), 3)
                            if hits + misses else 0.0
                        ),
                        "mean batch": (round(batch_hist.mean, 2)
                                       if batch_hist else 0.0),
                        "gemm rows": int(
                            counters.get("serving.index.gemm_rows", 0)),
                    }],
                    title="Serving internals (recorder)",
                ))
                if args.index == "ivf":
                    print()
                    print(render_table(
                        [_ann_row(recorder)],
                        title="ANN index internals (recorder)"))
    return 0


def _shard_row(recorder) -> dict:
    """One summary row of router-side ``serving.shard.*`` metrics.

    Covers publishes, fan-out, overhead, degradation, replica
    failovers, and rebalances; worker-internal metrics are pulled over
    separately by ``ShardedFrontend.worker_metrics`` and rendered by
    :func:`_worker_row`.
    """
    counters = recorder.counters
    fanin = recorder.histograms.get("serving.shard.gather_fanin")
    overhead = recorder.histograms.get("serving.shard.router_overhead_s")
    install = recorder.histograms.get("serving.shard.install_s")
    return {
        "publishes": int(counters.get("serving.shard.publishes", 0)),
        "version": int(recorder.gauges.get("serving.shard.version", 0)),
        "install s": round(install.total, 3) if install else 0.0,
        "topk": int(counters.get("serving.shard.requests.topk", 0)),
        "score": int(counters.get("serving.shard.requests.score", 0)),
        "mean fan-in": round(fanin.mean, 2) if fanin else 0.0,
        "router ms": (round(overhead.mean * 1e3, 3)
                      if overhead and overhead.count else 0.0),
        "degraded": int(
            counters.get("serving.shard.degraded_queries", 0)),
        "failovers": int(
            counters.get("serving.shard.replica.failovers", 0)),
        "rebalances": int(
            counters.get("serving.shard.rebalance.count", 0)),
        "stale retries": int(
            counters.get("serving.shard.stale_retries", 0)),
        "vector fetches": int(
            counters.get("serving.shard.vector_fetches", 0)),
        "cache hits": int(counters.get("serving.shard.cache_hits", 0)),
    }


def _per_shard_rows(recorder, num_shards: int, wall: float) -> list[dict]:
    """Per-shard QPS / worker latency rows from the router's counters."""
    rows = []
    for shard in range(num_shards):
        requests = int(
            recorder.counters.get(f"serving.shard.{shard}.requests", 0))
        seconds = recorder.histograms.get(f"serving.shard.{shard}.seconds")
        rows.append({
            "shard": shard,
            "requests": requests,
            "qps": round(requests / wall, 1) if wall > 0 else 0.0,
            "mean ms": (round(seconds.mean * 1e3, 3)
                        if seconds and seconds.count else 0.0),
        })
    return rows


def _worker_row(recorder) -> dict:
    """Aggregated worker-internal metrics (``serving.shard.workers.*``).

    These counters accumulate inside the shard worker processes and are
    merged back by ``ShardedFrontend.worker_metrics`` at the end of the
    run — per-shard index GEMM rows, slice installs, and ANN internals
    that previously died with the workers.
    """
    counters = recorder.counters
    prefix = "serving.shard.workers."
    hits = counters.get(prefix + "serving.index.cache_hits", 0)
    misses = counters.get(prefix + "serving.index.cache_misses", 0)
    return {
        "workers": int(recorder.gauges.get(prefix + "reporting", 0)),
        "slice installs": int(
            counters.get(prefix + "serving.store.publishes", 0)),
        "gemm rows": int(
            counters.get(prefix + "serving.index.gemm_rows", 0)),
        "index cache hits": int(hits),
        "index cache misses": int(misses),
        "ann builds": int(counters.get(prefix + "serving.ann.builds", 0)),
        "ann queries": int(
            counters.get(prefix + "serving.ann.queries", 0)),
    }


def _parse_kill_replica(spec: str, num_shards: int,
                        num_replicas: int) -> tuple[int, int, float]:
    """Parse ``--kill-replica SHARD[:REPLICA[:DELAY_S]]``."""
    parts = spec.split(":")
    if len(parts) > 3:
        raise SystemExit(
            f"--kill-replica expects SHARD[:REPLICA[:DELAY_S]], "
            f"got {spec!r}")
    try:
        shard = int(parts[0])
        replica = int(parts[1]) if len(parts) > 1 else 0
        delay = float(parts[2]) if len(parts) > 2 else 0.2
    except ValueError:
        raise SystemExit(
            f"--kill-replica expects SHARD[:REPLICA[:DELAY_S]], "
            f"got {spec!r}") from None
    if not 0 <= shard < num_shards:
        raise SystemExit(
            f"--kill-replica shard {shard} out of range "
            f"[0, {num_shards})")
    if not 0 <= replica < num_replicas:
        raise SystemExit(
            f"--kill-replica replica {replica} out of range "
            f"[0, {num_replicas})")
    if delay < 0:
        raise SystemExit(f"--kill-replica delay must be >= 0, got {delay}")
    return shard, replica, delay


def _start_controlplane(args: argparse.Namespace, frontend):
    """Build and start the control plane from the --autoscale knobs."""
    from repro.faults import FaultPlan
    from repro.serving import ControlPlane, ControlPlaneConfig

    config = ControlPlaneConfig(
        health_period=args.health_period,
        max_respawns=args.max_respawns,
        skew_threshold=args.skew_threshold,
        skew_observations=args.skew_observations,
        rebalance_cooldown=args.rebalance_cooldown,
    )
    plane = ControlPlane(frontend, config,
                         fault_plan=FaultPlan.from_env()).start()
    print(f"  control plane: sweeping every {config.health_period:.2f}s "
          f"(max {config.max_respawns} respawns/slot, skew >= "
          f"{config.skew_threshold:.1f}x over "
          f"{config.skew_observations} sweeps)")
    return plane


def _settle_controlplane(frontend, controlplane, want_workers: int,
                         timeout: float = 10.0) -> None:
    """Give the control plane time to finish in-flight recovery.

    A chaos kill landing near the end of the load run would otherwise
    race shutdown: the drill's whole point is to observe the respawn,
    so the clean path waits (bounded) until every slot is live again —
    or the circuit breaker gave up on one — before stopping the loop.
    """
    import time as time_mod

    recorder = get_recorder()
    deadline = time_mod.monotonic() + timeout
    while time_mod.monotonic() < deadline:
        gave_up = recorder.counters.get(
            "serving.controlplane.respawn_giveup", 0)
        if frontend.alive_workers >= want_workers or gave_up:
            return
        time_mod.sleep(controlplane.config.health_period)


def _controlplane_row(recorder) -> dict:
    """One summary row of the ``serving.controlplane.*`` metrics."""
    counters = recorder.counters
    prefix = "serving.controlplane."
    latency = recorder.histograms.get(prefix + "decision_latency_s")
    recovery = recorder.histograms.get(prefix + "recovery_seconds")
    return {
        "sweeps": int(counters.get(prefix + "sweeps", 0)),
        "respawns": int(counters.get(prefix + "respawns", 0)),
        "respawn failures": int(
            counters.get(prefix + "respawn_failures", 0)),
        "give-ups": int(counters.get(prefix + "respawn_giveup", 0)),
        "skew obs": int(counters.get(prefix + "skew_observations", 0)),
        "rebalances": int(
            counters.get(prefix + "rebalance_decisions", 0)),
        "dead workers": int(
            recorder.gauges.get(prefix + "dead_workers", 0)),
        "decision ms": (round(latency.mean * 1e3, 3)
                        if latency and latency.count else 0.0),
        "recovery s": (round(recovery.mean, 3)
                       if recovery and recovery.count else 0.0),
    }


def _add_controlplane_arguments(parser: argparse.ArgumentParser,
                                autoscale_flag: bool) -> None:
    """Control-plane policy knobs (shared by serve-sim and pipeline-sim).

    ``serve-sim`` gates the plane behind ``--autoscale``;
    ``pipeline-sim`` always runs it (it *is* the end-to-end loop).
    """
    group = parser.add_argument_group("control plane")
    if autoscale_flag:
        group.add_argument("--autoscale", action="store_true",
                           help="supervise the sharded tier: auto-respawn "
                                "dead replicas and rebalance on sustained "
                                "load skew (requires --shards > 1)")
    group.add_argument("--health-period", type=float, default=0.1,
                       help="seconds between control-plane health sweeps")
    group.add_argument("--max-respawns", type=int, default=5,
                       help="respawn attempts per replica slot before the "
                            "circuit breaker gives up (tier stays "
                            "degraded, never fork-loops)")
    group.add_argument("--skew-threshold", type=float, default=3.0,
                       help="max/mean per-shard request-rate ratio that "
                            "counts as skew")
    group.add_argument("--skew-observations", type=int, default=3,
                       help="consecutive skewed sweeps before a rebalance "
                            "is armed (hysteresis)")
    group.add_argument("--rebalance-cooldown", type=float, default=5.0,
                       help="minimum seconds between control-plane "
                            "rebalances (no flapping)")


def cmd_pipeline_sim(args: argparse.Namespace) -> int:
    """``repro pipeline-sim``: the end-to-end stream→serve loop.

    One process wires the whole deployment story together: a generator
    thread feeds edge batches through the bounded ingest queue into the
    :class:`~repro.stream.controller.StreamController` (WAL-first when
    ``--wal-dir`` is given, then graph apply, then policy-driven
    incremental refresh), every refreshed snapshot fans out through
    :meth:`~repro.serving.sharding.ShardedPublisher.attach` to the
    replicated sharded tier, the control plane supervises the workers,
    and a closed-loop load generator queries the tier the whole time.
    """
    import threading
    import time as time_mod

    import numpy as np

    from repro.faults import FaultPlan
    from repro.graph import DynamicTemporalGraph
    from repro.serving import (
        ControlPlane,
        ControlPlaneConfig,
        EmbeddingStore,
        ShardPlan,
        ShardedFrontend,
        ShardedPublisher,
        ShardedServingConfig,
        run_load,
    )
    from repro.stream import (
        EveryNEdges,
        IngestQueue,
        StreamController,
        WriteAheadLog,
    )
    from repro.tasks.incremental import IncrementalEmbedder

    if args.input:
        edges = read_wel(args.input)
        source = args.input
    else:
        edges = generators.erdos_renyi_temporal(args.nodes, args.edges,
                                                seed=args.seed)
        source = f"ER {args.nodes}x{args.edges} (synthetic)"
    ordered = edges.sorted_by_time()

    # 60% of the stream seeds the initial graph; the tail arrives live.
    cut = int(0.6 * len(ordered))
    initial = ordered.take(np.arange(cut))
    step = max(1, (len(ordered) - cut) // args.batches)
    batches = []
    for i in range(args.batches):
        stop = (cut + (i + 1) * step if i < args.batches - 1
                else len(ordered))
        if stop > cut + i * step:
            batches.append(ordered.take(np.arange(cut + i * step, stop)))

    fault_plan = FaultPlan.from_env()
    with _observability(args) as obs_recorder:
        recorder = obs_recorder if obs_recorder is not None else Recorder()
        with use_recorder(recorder):
            wal = None
            if args.wal_dir:
                wal = WriteAheadLog(args.wal_dir, fault_plan=fault_plan)
            dynamic = DynamicTemporalGraph()
            if len(initial):
                if wal is not None:
                    wal.append(initial)
                dynamic.append(initial)
            store = EmbeddingStore()
            embedder = IncrementalEmbedder(
                dynamic,
                walk_config=WalkConfig(num_walks_per_node=args.walks,
                                       max_walk_length=args.length,
                                       bias=args.bias),
                sgns_config=SgnsConfig(dim=args.dim,
                                       epochs=args.w2v_epochs),
                seed=args.seed,
                store=store,
                sampler=args.sampler,
            )
            build_start = time_mod.perf_counter()
            embedder.rebuild()
            print(f"input: {source} — {dynamic.num_nodes} nodes, "
                  f"{dynamic.num_edges} edges initial; embeddings in "
                  f"{time_mod.perf_counter() - build_start:.2f}s; "
                  f"{len(batches)} live batches to stream"
                  + (f"; WAL at {args.wal_dir}" if wal is not None
                     else ""))

            queue = IngestQueue(max_edges=args.queue_edges,
                                policy="block")
            controller = StreamController(
                dynamic, queue, wal=wal, embedder=embedder,
                policy=EveryNEdges(args.refresh_edges),
                fault_plan=fault_plan,
            )
            plan = ShardPlan(args.shards, args.shard_plan)
            shard_config = ShardedServingConfig(
                default_k=args.k,
                replication_factor=args.replicas,
            )
            cp_config = ControlPlaneConfig(
                health_period=args.health_period,
                max_respawns=args.max_respawns,
                skew_threshold=args.skew_threshold,
                skew_observations=args.skew_observations,
                rebalance_cooldown=args.rebalance_cooldown,
            )
            with ShardedFrontend(plan, shard_config) as frontend:
                publisher = ShardedPublisher(frontend)
                # Warm snapshot now; every refresh the controller
                # triggers fans out to the shards automatically.
                publisher.attach(store)
                print(f"  shards: {plan.num_shards} x {args.replicas} "
                      f"workers ({plan.strategy} plan), serving "
                      f"version {frontend.version}; control plane "
                      f"sweeping every {cp_config.health_period:.2f}s")
                controlplane = ControlPlane(frontend, cp_config,
                                            fault_plan=fault_plan)
                stop_chaos = threading.Event()
                chaos = None
                if args.kill_replica is not None:
                    shard_id, replica, delay = _parse_kill_replica(
                        args.kill_replica, args.shards, args.replicas)

                    def killer() -> None:
                        if not stop_chaos.wait(delay):
                            frontend.kill_replica(shard_id, replica)
                            print(f"  chaos: killed shard {shard_id} "
                                  f"replica {replica} after "
                                  f"{delay:.2f}s")

                    chaos = threading.Thread(target=killer, daemon=True,
                                             name="pipeline-sim-kill")

                def produce() -> None:
                    for edge_batch in batches:
                        if args.batch_interval > 0:
                            time_mod.sleep(args.batch_interval)
                        queue.put(edge_batch)

                with controller, controlplane:
                    producer = threading.Thread(
                        target=produce, daemon=True,
                        name="pipeline-sim-producer")
                    producer.start()
                    if chaos is not None:
                        chaos.start()
                    report = run_load(
                        frontend,
                        num_requests=args.requests,
                        clients=args.clients,
                        topk_fraction=args.topk_fraction,
                        k=args.k,
                        seed=args.seed,
                    )
                    stop_chaos.set()
                    producer.join()
                    if chaos is not None:
                        chaos.join()
                    _settle_controlplane(frontend, controlplane,
                                         args.shards * args.replicas)
                stats = controller.stats
                frontend.worker_metrics()
                publisher.detach()

            counters = recorder.counters
            print()
            print(render_table([report.as_row()],
                               title="Closed-loop load (client side)"))
            print()
            print(render_table(
                [{
                    "batches": stats.batches_applied,
                    "edges": stats.edges_applied,
                    "refreshes": stats.refreshes,
                    "refresh s": round(stats.refresh_seconds, 2),
                    "wal bytes": int(counters.get("stream.wal.bytes", 0)),
                    "generation": dynamic.generation,
                }],
                title="Streaming ingest (every-n refresh)",
            ))
            print()
            print(render_table([_shard_row(recorder)],
                               title="Sharded tier (recorder)"))
            print()
            print(render_table([_controlplane_row(recorder)],
                               title="Control plane (recorder)"))
    return 0


def _ann_config(args: argparse.Namespace):
    """Build the IvfConfig for ``--index ivf`` runs (None otherwise)."""
    if args.index != "ivf":
        return None
    from repro.serving import IvfConfig

    return IvfConfig(
        nlist=args.nlist,
        nprobe=args.nprobe,
        recall_sample_every=args.ann_recall_every,
    )


def _ann_row(recorder) -> dict:
    """One summary row of the ``serving.ann.*`` recorder metrics."""
    counters = recorder.counters
    recall_hist = recorder.histograms.get("serving.ann.recall_at_k")
    build_hist = recorder.histograms.get("serving.ann.build_seconds")
    return {
        "builds": int(counters.get("serving.ann.builds", 0)),
        "build s": round(build_hist.total, 3) if build_hist else 0.0,
        "bytes": int(recorder.gauges.get("serving.ann.bytes", 0)),
        "ann queries": int(counters.get("serving.ann.queries", 0)),
        "cells probed": int(counters.get("serving.ann.cells_probed", 0)),
        "candidates": int(
            counters.get("serving.ann.candidates_scored", 0)),
        "fallbacks": int(counters.get("serving.ann.fallbacks", 0)),
        "recall samples": int(counters.get("serving.ann.recall_samples", 0)),
        "sampled recall": (round(recall_hist.mean, 3)
                           if recall_hist and recall_hist.count else ""),
    }


def _add_ann_arguments(group) -> None:
    """``--index``/IVF knobs shared by serve-sim and stream-sim."""
    group.add_argument("--index", default="exact",
                       choices=["exact", "ivf"],
                       help="top-k index: exact blocked scan (oracle) or "
                            "approximate IVF probing")
    group.add_argument("--nlist", type=int, default=None,
                       help="IVF cell count (default: ~sqrt(nodes))")
    group.add_argument("--nprobe", type=int, default=8,
                       help="IVF cells probed per query (= nlist probes "
                            "everything: exact results)")
    group.add_argument("--ann-recall-every", type=int, default=100,
                       help="shadow-check every Nth ANN query against the "
                            "exact oracle and record its recall (0 = off)")


def cmd_stream_sim(args: argparse.Namespace) -> int:
    """``repro stream-sim``: durable streaming ingest under query load."""
    import threading
    import time as time_mod

    import numpy as np

    from repro.faults import FaultPlan
    from repro.graph import DynamicTemporalGraph
    from repro.serving import (
        EmbeddingStore,
        ServingConfig,
        ServingFrontend,
        run_load,
    )
    from repro.stream import (
        AffectedFraction,
        EveryNEdges,
        IngestQueue,
        MaxStaleness,
        StreamController,
        WriteAheadLog,
    )
    from repro.tasks.incremental import IncrementalEmbedder

    if args.replay_only:
        dynamic, result = StreamController.recover(args.wal_dir)
        print(render_table(
            [{
                "segments": result.segments,
                "batches": len(result.batches),
                "edges": result.total_edges,
                "nodes": dynamic.num_nodes,
                "generation": dynamic.generation,
                "truncated bytes": result.truncated_bytes,
                "replay s": round(result.seconds, 4),
            }],
            title=f"recovered from WAL {args.wal_dir}",
        ))
        return 0

    if args.input:
        edges = read_wel(args.input)
        source = args.input
    else:
        edges = generators.erdos_renyi_temporal(args.nodes, args.edges,
                                                seed=args.seed)
        source = f"ER {args.nodes}x{args.edges} (synthetic)"
    ordered = edges.sorted_by_time()

    # 60% of the stream seeds the initial graph; the tail arrives live.
    cut = int(0.6 * len(ordered))
    initial = ordered.take(np.arange(cut))
    step = max(1, (len(ordered) - cut) // args.batches)
    batches = []
    for i in range(args.batches):
        stop = (cut + (i + 1) * step if i < args.batches - 1
                else len(ordered))
        if stop > cut + i * step:
            batches.append(ordered.take(np.arange(cut + i * step, stop)))

    if args.refresh_policy == "every-n":
        policy = EveryNEdges(args.refresh_edges)
    elif args.refresh_policy == "staleness":
        policy = MaxStaleness(args.staleness_seconds)
    else:
        policy = AffectedFraction(args.affected_fraction)

    fault_plan = FaultPlan.from_env()
    with _observability(args) as obs_recorder:
        recorder = obs_recorder if obs_recorder is not None else Recorder()
        with use_recorder(recorder):
            # The initial graph is WAL-logged too (as the first batch),
            # so --replay-only reconstructs the *entire* graph and the
            # recovered generation sequence matches the live one.
            wal = WriteAheadLog(args.wal_dir,
                                segment_max_bytes=args.wal_segment_bytes,
                                sync=not args.no_wal_sync,
                                fault_plan=fault_plan)
            dynamic = DynamicTemporalGraph()
            if len(initial):
                wal.append(initial)
                dynamic.append(initial)
            store = EmbeddingStore()
            embedder = IncrementalEmbedder(
                dynamic,
                walk_config=WalkConfig(num_walks_per_node=args.walks,
                                       max_walk_length=args.length,
                                       bias=args.bias),
                sgns_config=SgnsConfig(dim=args.dim, epochs=args.w2v_epochs),
                seed=args.seed,
                store=store,
                sampler=args.sampler,
            )
            build_start = time_mod.perf_counter()
            embedder.rebuild()
            print(f"input: {source} — {dynamic.num_nodes} nodes, "
                  f"{dynamic.num_edges} edges initial; embeddings in "
                  f"{time_mod.perf_counter() - build_start:.2f}s; "
                  f"{len(batches)} live batches to stream")

            queue = IngestQueue(
                max_edges=args.queue_edges,
                policy=args.backpressure,
                rate_limit=args.rate_limit,
            )
            controller = StreamController(
                dynamic, queue, wal=wal, embedder=embedder, policy=policy,
                fault_plan=fault_plan,
            )

            def produce() -> None:
                for edge_batch in batches:
                    if args.batch_interval > 0:
                        time_mod.sleep(args.batch_interval)
                    queue.put(edge_batch)

            config = ServingConfig(
                max_batch_size=args.max_batch_size,
                max_delay=args.max_delay_ms / 1e3,
                default_k=args.k,
                cache_size=args.cache_size,
                index=args.index,
                ann=_ann_config(args),
            )
            with controller:
                with ServingFrontend(store, config) as frontend:
                    producer = threading.Thread(target=produce, daemon=True,
                                                name="stream-sim-producer")
                    producer.start()
                    report = run_load(
                        frontend,
                        num_requests=args.requests,
                        clients=args.clients,
                        topk_fraction=args.topk_fraction,
                        k=args.k,
                        seed=args.seed,
                    )
                    producer.join()
            stats = controller.stats

            counters = recorder.counters
            print()
            print(render_table([report.as_row()],
                               title="Closed-loop load (client side)"))
            print()
            print(render_table(
                [{
                    "batches": stats.batches_applied,
                    "edges": stats.edges_applied,
                    "refreshes": stats.refreshes,
                    "refresh s": round(stats.refresh_seconds, 2),
                    "dropped": queue.dropped_batches,
                    "rejected": queue.rejected_batches,
                    "wal bytes": int(counters.get("stream.wal.bytes", 0)),
                    "segments": wal.segment_count,
                    "generation": dynamic.generation,
                }],
                title=f"Streaming ingest ({args.backpressure} backpressure, "
                      f"{policy.name} refresh)",
            ))
            if args.index == "ivf":
                print()
                print(render_table([_ann_row(recorder)],
                                   title="ANN index internals (recorder)"))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Random walk-based temporal graph learning "
                    "(IISWC 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--dataset", choices=LP_SHAPES + NC_SHAPES,
                     help="Table II dataset shape (omit for plain ER)")
    gen.add_argument("--scale", type=float, default=None,
                     help="size scale for dataset shapes")
    gen.add_argument("--nodes", type=int, default=10_000,
                     help="ER node count")
    gen.add_argument("--edges", type=int, default=100_000,
                     help="ER edge count")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True,
                     help=".wel for edge lists, .npz for labeled datasets")
    gen.set_defaults(func=cmd_generate)

    pre = sub.add_parser("preprocess",
                         help="normalize a raw edge list into .wel")
    pre.add_argument("-i", "--input", required=True)
    pre.add_argument("-o", "--output", required=True)
    pre.set_defaults(func=cmd_preprocess)

    lp = sub.add_parser("linkpred", help="run end-to-end link prediction")
    src = lp.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help=".wel temporal graph")
    src.add_argument("--dataset", choices=LP_SHAPES,
                     help="synthetic Table II shape")
    _add_pipeline_arguments(lp)
    lp.set_defaults(func=cmd_linkpred)

    nc = sub.add_parser("nodeclass",
                        help="run end-to-end node classification")
    src = nc.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help=".npz labeled dataset bundle")
    src.add_argument("--dataset", choices=NC_SHAPES,
                     help="synthetic Table II shape")
    _add_pipeline_arguments(nc)
    nc.set_defaults(func=cmd_nodeclass)

    sweep = sub.add_parser("sweep",
                           help="Fig. 8-style hyperparameter sweep")
    src = sweep.add_mutually_exclusive_group(required=True)
    src.add_argument("--input",
                     help=".wel graph (LP) or .npz labeled bundle (NC)")
    src.add_argument("--dataset", choices=LP_SHAPES + NC_SHAPES,
                     help="synthetic Table II shape")
    sweep.add_argument("--parameter", required=True,
                       choices=["num_walks", "walk_length", "dimension"])
    sweep.add_argument("--values", required=True,
                       help="comma-separated values, e.g. 1,2,4,8")
    sweep.add_argument("--seeds", default="11,31",
                       help="comma-separated seeds to average over")
    _add_pipeline_arguments(sweep)
    sweep.set_defaults(func=cmd_sweep)

    hw = sub.add_parser("characterize",
                        help="hardware study on a synthetic ER graph")
    hw.add_argument("--nodes", type=int, default=20_000)
    hw.add_argument("--edges", type=int, default=400_000)
    _add_pipeline_arguments(hw)
    hw.set_defaults(func=cmd_characterize)

    serve = sub.add_parser(
        "serve-sim",
        help="online serving simulation (embedding store + micro-batched "
             "frontend under closed-loop load)",
    )
    serve.add_argument("--input", default=None,
                       help=".wel temporal graph (omit for synthetic ER)")
    serve.add_argument("--nodes", type=int, default=2_000,
                       help="ER nodes when --input is omitted")
    serve.add_argument("--edges", type=int, default=20_000,
                       help="ER edges when --input is omitted")
    emb = serve.add_argument_group("embedding hyperparameters")
    emb.add_argument("--sampler", default="cdf",
                     choices=["cdf", "gumbel", "batched"],
                     help="walk kernel for incremental refresh walks")
    emb.add_argument("--walks", type=int, default=5,
                     help="random walks per node (K)")
    emb.add_argument("--length", type=int, default=6,
                     help="maximum walk length in nodes (L)")
    emb.add_argument("--bias", default="softmax-recency",
                     choices=["uniform", "softmax-late",
                              "softmax-recency", "linear"],
                     help="Eq. 1 transition bias")
    emb.add_argument("--dim", type=int, default=8,
                     help="embedding dimension (d)")
    emb.add_argument("--w2v-epochs", type=int, default=2,
                     help="word2vec epochs")
    load = serve.add_argument_group("serving and load")
    load.add_argument("--clients", type=int, default=8,
                      help="closed-loop client threads")
    load.add_argument("--requests", type=int, default=5_000,
                      help="total requests across all clients")
    load.add_argument("--topk-fraction", type=float, default=0.5,
                      help="fraction of requests that are top-k (rest "
                           "are link scores)")
    load.add_argument("--k", type=int, default=10,
                      help="recommendations per top-k request")
    load.add_argument("--max-batch-size", type=int, default=64,
                      help="micro-batch size cap (1 = single-request "
                           "baseline)")
    load.add_argument("--max-delay-ms", type=float, default=2.0,
                      help="micro-batch max wait in milliseconds")
    load.add_argument("--cache-size", type=int, default=4096,
                      help="top-k LRU cache entries (0 disables)")
    load.add_argument("--shards", type=int, default=1,
                      help="shard worker processes (>1 serves through the "
                           "scatter/gather sharded tier)")
    load.add_argument("--shard-plan", default="hash",
                      choices=["hash", "range"],
                      help="node-id partitioner for --shards > 1")
    load.add_argument("--replicas", type=int, default=1,
                      help="worker replicas per shard slice (reads "
                           "fan out round-robin and fail over to a "
                           "live sibling)")
    load.add_argument("--rebalance-every", type=float, default=0.0,
                      metavar="SECONDS",
                      help="live-rebalance the sharded tier between "
                           "hash and range plans at this interval "
                           "during the load run (0 disables)")
    load.add_argument("--kill-replica", default=None,
                      metavar="SHARD[:REPLICA[:DELAY_S]]",
                      help="chaos drill: hard-kill one shard worker "
                           "DELAY_S seconds (default 0.2) into the "
                           "load run")
    _add_ann_arguments(load)
    _add_controlplane_arguments(serve, autoscale_flag=True)
    load.add_argument("--update-batches", type=int, default=0,
                      help="hold back 30%% of the stream and replay it "
                           "as this many live edge batches + incremental "
                           "updates during the load run")
    load.add_argument("--update-interval", type=float, default=0.05,
                      help="seconds between live edge batches")
    obs = serve.add_argument_group("observability")
    obs.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write run counters/gauges/histograms as JSON")
    obs.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write the span trace as JSONL")
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=cmd_serve_sim)

    stream = sub.add_parser(
        "stream-sim",
        help="durable streaming-ingest simulation (WAL + bounded queue + "
             "policy-driven refresh under closed-loop query load)",
    )
    stream.add_argument("--wal-dir", required=True,
                        help="write-ahead-log directory (created if missing; "
                             "an existing log is repaired and continued)")
    stream.add_argument("--replay-only", action="store_true",
                        help="recover and report the WAL contents, then exit "
                             "(crash-recovery verification; no load run)")
    stream.add_argument("--input", default=None,
                        help=".wel temporal graph (omit for synthetic ER)")
    stream.add_argument("--nodes", type=int, default=2_000,
                        help="ER nodes when --input is omitted")
    stream.add_argument("--edges", type=int, default=20_000,
                        help="ER edges when --input is omitted")
    emb = stream.add_argument_group("embedding hyperparameters")
    emb.add_argument("--sampler", default="cdf",
                     choices=["cdf", "gumbel", "batched"],
                     help="walk kernel for incremental refresh walks")
    emb.add_argument("--walks", type=int, default=5,
                     help="random walks per node (K)")
    emb.add_argument("--length", type=int, default=6,
                     help="maximum walk length in nodes (L)")
    emb.add_argument("--bias", default="softmax-recency",
                     choices=["uniform", "softmax-late",
                              "softmax-recency", "linear"],
                     help="Eq. 1 transition bias")
    emb.add_argument("--dim", type=int, default=8,
                     help="embedding dimension (d)")
    emb.add_argument("--w2v-epochs", type=int, default=2,
                     help="word2vec epochs")
    ingest = stream.add_argument_group("ingest: WAL, queue, refresh")
    ingest.add_argument("--wal-segment-bytes", type=int, default=256 * 1024,
                        help="WAL segment rotation threshold")
    ingest.add_argument("--no-wal-sync", action="store_true",
                        help="skip the per-batch fsync (faster, loses the "
                             "power-failure guarantee)")
    ingest.add_argument("--backpressure", default="block",
                        choices=["block", "drop_oldest", "reject"],
                        help="ingest-queue overflow policy")
    ingest.add_argument("--queue-edges", type=int, default=50_000,
                        help="ingest queue bound, in edges")
    ingest.add_argument("--rate-limit", type=float, default=None,
                        help="token-bucket producer limit in edges/second "
                             "(default: unlimited)")
    ingest.add_argument("--refresh-policy", default="every-n",
                        choices=["every-n", "staleness", "affected"],
                        help="when to refresh embeddings")
    ingest.add_argument("--refresh-edges", type=int, default=1000,
                        help="every-n: edges per refresh")
    ingest.add_argument("--staleness-seconds", type=float, default=0.5,
                        help="staleness: max wall-clock age of pending edges")
    ingest.add_argument("--affected-fraction", type=float, default=0.1,
                        help="affected: touched-node fraction per refresh")
    ingest.add_argument("--batches", type=int, default=8,
                        help="live batches the generator streams (40%% of "
                             "the input is held back for them)")
    ingest.add_argument("--batch-interval", type=float, default=0.02,
                        help="seconds between generated batches")
    load = stream.add_argument_group("serving and load")
    load.add_argument("--clients", type=int, default=4,
                      help="closed-loop client threads")
    load.add_argument("--requests", type=int, default=2_000,
                      help="total requests across all clients")
    load.add_argument("--topk-fraction", type=float, default=0.5,
                      help="fraction of requests that are top-k")
    load.add_argument("--k", type=int, default=10,
                      help="recommendations per top-k request")
    load.add_argument("--max-batch-size", type=int, default=64,
                      help="micro-batch size cap")
    load.add_argument("--max-delay-ms", type=float, default=2.0,
                      help="micro-batch max wait in milliseconds")
    load.add_argument("--cache-size", type=int, default=4096,
                      help="top-k LRU cache entries (0 disables)")
    _add_ann_arguments(load)
    obs = stream.add_argument_group("observability")
    obs.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write run counters/gauges/histograms as JSON")
    obs.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write the span trace as JSONL")
    stream.add_argument("--seed", type=int, default=0)
    stream.set_defaults(func=cmd_stream_sim)

    pipe = sub.add_parser(
        "pipeline-sim",
        help="end-to-end stream→serve pipeline: ingest queue + WAL + "
             "incremental refresh fanned out to the replicated sharded "
             "tier under control-plane supervision and query load",
    )
    pipe.add_argument("--input", default=None,
                      help=".wel temporal graph (omit for synthetic ER)")
    pipe.add_argument("--nodes", type=int, default=1_000,
                      help="ER nodes when --input is omitted")
    pipe.add_argument("--edges", type=int, default=10_000,
                      help="ER edges when --input is omitted")
    emb = pipe.add_argument_group("embedding hyperparameters")
    emb.add_argument("--sampler", default="cdf",
                     choices=["cdf", "gumbel", "batched"],
                     help="walk kernel for incremental refresh walks")
    emb.add_argument("--walks", type=int, default=2,
                     help="random walks per node (K)")
    emb.add_argument("--length", type=int, default=4,
                     help="maximum walk length in nodes (L)")
    emb.add_argument("--bias", default="softmax-recency",
                     choices=["uniform", "softmax-late",
                              "softmax-recency", "linear"],
                     help="Eq. 1 transition bias")
    emb.add_argument("--dim", type=int, default=8,
                     help="embedding dimension (d)")
    emb.add_argument("--w2v-epochs", type=int, default=1,
                     help="word2vec epochs")
    ingest = pipe.add_argument_group("ingest")
    ingest.add_argument("--wal-dir", default=None,
                        help="write-ahead-log directory (omit to stream "
                             "without durability)")
    ingest.add_argument("--queue-edges", type=int, default=50_000,
                        help="ingest queue bound, in edges")
    ingest.add_argument("--refresh-edges", type=int, default=500,
                        help="incremental refresh every N applied edges")
    ingest.add_argument("--batches", type=int, default=6,
                        help="live batches the generator streams (40%% of "
                             "the input is held back for them)")
    ingest.add_argument("--batch-interval", type=float, default=0.02,
                        help="seconds between generated batches")
    load = pipe.add_argument_group("sharded serving and load")
    load.add_argument("--shards", type=int, default=2,
                      help="shard worker processes")
    load.add_argument("--shard-plan", default="hash",
                      choices=["hash", "range"],
                      help="node-id partitioner")
    load.add_argument("--replicas", type=int, default=2,
                      help="worker replicas per shard slice")
    load.add_argument("--kill-replica", default=None,
                      metavar="SHARD[:REPLICA[:DELAY_S]]",
                      help="chaos drill: hard-kill one shard worker "
                           "DELAY_S seconds (default 0.2) into the load "
                           "run; the control plane respawns it")
    load.add_argument("--clients", type=int, default=4,
                      help="closed-loop client threads")
    load.add_argument("--requests", type=int, default=1_000,
                      help="total requests across all clients")
    load.add_argument("--topk-fraction", type=float, default=0.5,
                      help="fraction of requests that are top-k")
    load.add_argument("--k", type=int, default=10,
                      help="recommendations per top-k request")
    _add_controlplane_arguments(pipe, autoscale_flag=False)
    obs = pipe.add_argument_group("observability")
    obs.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write run counters/gauges/histograms as JSON")
    obs.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write the span trace as JSONL")
    pipe.add_argument("--seed", type=int, default=0)
    pipe.set_defaults(func=cmd_pipeline_sim)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
