"""Atomic phase checkpointing for resumable pipeline runs.

A long pipeline run should survive its process: every phase artifact is
persisted as it completes, so a crashed or interrupted run restarts
from the last finished phase instead of from scratch.  The store keeps
one directory per *run identity* — the triple (configuration
fingerprint, dataset fingerprint, initial RNG state) — so a resume can
never silently splice artifacts from a different experiment: a dataset
sweep sharing one ``--checkpoint-dir`` gets one run directory per edge
list, and opening an existing run with a mismatched config or dataset
fingerprint raises :class:`CheckpointError` instead of serving stale
artifacts:

``<checkpoint_dir>/<key>/``
    ``manifest.json``    — run metadata plus one entry per completed
    phase: artifact file name, SHA-256, and the RNG snapshot taken
    *after* the phase ran.
    ``walks.npz``        — walk corpus + :class:`WalkStats`.
    ``embeddings.npz``   — embedding matrix + :class:`TrainerStats`.
    ``task-<name>.pkl``  — the downstream :class:`TaskResult` (model,
    scaler, history, metrics).

Atomicity: every artifact and every manifest revision is written to a
temp file in the same directory, fsynced, and ``os.replace``d into
place — a reader never observes a half-written file, and a writer dying
mid-checkpoint leaves the previous state intact.  Artifacts are hashed
on write and verified on read, so a corrupted checkpoint raises
:class:`CheckpointError` instead of poisoning a resumed run.

Determinism across resume: phase boundaries also snapshot the driving
``numpy`` Generator (bit-generator state *and* ``SeedSequence`` spawn
count).  Restoring the snapshot puts a resumed run in exactly the state
the uninterrupted run had at that boundary, which is what makes
"resume after phase N" produce bit-identical downstream artifacts and
final metrics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

try:  # advisory manifest locking (POSIX only; see _manifest_lock)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import numpy as np

from repro.embedding.embeddings import NodeEmbeddings
from repro.embedding.trainer import TrainerStats
from repro.errors import CheckpointError
from repro.observability import get_recorder
from repro.nn.module import Module
from repro.graph.edges import TemporalEdgeList
from repro.walk.corpus import WalkCorpus
from repro.walk.engine import WalkStats

if TYPE_CHECKING:  # imported lazily at runtime (tasks imports pipeline
    # imports this module, so a top-level import would be circular)
    from repro.tasks.splits import EdgeSplits, NodeSplits

MANIFEST_NAME = "manifest.json"
_WALK_COUNTERS = (
    "num_walks", "total_steps", "candidates_scanned",
    "search_iterations", "terminated_early",
    "exp_evaluations", "cdf_search_iterations",
)
_TRAINER_COUNTERS = (
    "pairs_trained", "sentences", "updates", "fp_ops",
    "mean_loss", "wall_seconds",
)

# ---------------------------------------------------------------------------
# RNG snapshots
# ---------------------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    """Recursively convert numpy containers/scalars to JSON-native types.

    ``bit_generator.state`` is only plain ints for PCG64; MT19937 keys
    are a uint32 ndarray and Philox carries uint64 arrays and scalars,
    none of which ``json.dumps`` accepts.  Every supported bit
    generator's state setter accepts the list/int form back verbatim,
    so the conversion is lossless.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, Mapping):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def rng_snapshot(rng: np.random.Generator) -> dict:
    """JSON-serializable snapshot of a Generator's full restart state.

    ``bit_generator.state`` alone is not enough: parallel components
    derive worker seeds via ``SeedSequence.spawn``, whose child counter
    lives on the seed sequence, not the bit generator.  The snapshot
    captures both so :func:`rng_restore` reproduces future draws *and*
    future spawns exactly.
    """
    bg = rng.bit_generator
    try:
        ss = bg.seed_seq
    except AttributeError as exc:  # pragma: no cover - exotic generators
        raise CheckpointError(
            f"cannot snapshot {type(bg).__name__}: no seed sequence"
        ) from exc
    if not isinstance(ss, np.random.SeedSequence):
        raise CheckpointError(
            f"cannot snapshot seed sequence of type {type(ss).__name__}"
        )
    snapshot = {
        "bit_generator": type(bg).__name__,
        "state": _json_safe(bg.state),
        "seed_seq": {
            "entropy": _json_safe(ss.entropy),
            "spawn_key": list(ss.spawn_key),
            "pool_size": ss.pool_size,
            "n_children_spawned": ss.n_children_spawned,
        },
    }
    try:
        json.dumps(snapshot)
    except TypeError as exc:
        raise CheckpointError(
            f"cannot snapshot {type(bg).__name__}: state is not "
            f"JSON-serializable ({exc})"
        ) from exc
    return snapshot


def rng_restore(snapshot: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a Generator from :func:`rng_snapshot` output."""
    try:
        bg_cls = getattr(np.random, snapshot["bit_generator"])
        ss_data = snapshot["seed_seq"]
        seed_seq = np.random.SeedSequence(
            entropy=ss_data["entropy"],
            spawn_key=tuple(ss_data["spawn_key"]),
            pool_size=ss_data["pool_size"],
            n_children_spawned=ss_data["n_children_spawned"],
        )
        bit_generator = bg_cls(seed_seq)
        bit_generator.state = snapshot["state"]
    except (KeyError, AttributeError, TypeError, ValueError) as exc:
        raise CheckpointError(f"invalid rng snapshot: {exc}") from exc
    return np.random.Generator(bit_generator)


# ---------------------------------------------------------------------------
# Fingerprints and atomic file primitives
# ---------------------------------------------------------------------------

#: PipelineConfig fields that cannot change results and therefore must
#: not change the run key: where checkpoints live, whether we resume,
#: the supervision policy (retries/timeouts are recovery mechanics with
#: bit-identical outcomes), and any injected fault plan.
NON_SEMANTIC_FIELDS = ("checkpoint_dir", "resume", "supervisor", "faults")


def config_fingerprint(config: Any) -> str:
    """Stable hash of a (nested) dataclass config's semantic fields."""
    if dataclasses.is_dataclass(config):
        data = dataclasses.asdict(config)
    elif isinstance(config, Mapping):
        data = dict(config)
    else:
        raise CheckpointError(
            f"cannot fingerprint config of type {type(config).__name__}"
        )
    for name in NON_SEMANTIC_FIELDS:
        data.pop(name, None)
    blob = json.dumps(data, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def dataset_fingerprint(edges: TemporalEdgeList) -> str:
    """Stable hash of an edge list's contents (src, dst, ts, num_nodes).

    Part of the run identity: two runs over different graphs must never
    share a checkpoint directory, even with identical config and seed.
    """
    digest = hashlib.sha256()
    digest.update(np.int64(edges.num_nodes).tobytes())
    for column in (edges.src, edges.dst, edges.timestamps):
        digest.update(np.ascontiguousarray(column).tobytes())
    return digest.hexdigest()


def _resolve_dataset_fingerprint(dataset: "TemporalEdgeList | str | None"
                                 ) -> str | None:
    """Accept an edge list or a precomputed fingerprint string."""
    if dataset is None:
        return None
    if isinstance(dataset, str):
        return dataset
    return dataset_fingerprint(dataset)


def run_key(config: Any, rng: np.random.Generator,
            dataset: "TemporalEdgeList | str | None" = None) -> str:
    """Checkpoint directory key: config x dataset x initial RNG state.

    ``dataset`` is the input edge list (or its precomputed
    :func:`dataset_fingerprint`); omitting it keys on config and seed
    alone, which is only safe when a checkpoint root is never shared
    across datasets.
    """
    seed_blob = json.dumps(rng_snapshot(rng), sort_keys=True)
    digest = hashlib.sha256()
    digest.update(config_fingerprint(config).encode("utf-8"))
    data_fp = _resolve_dataset_fingerprint(dataset)
    if data_fp is not None:
        digest.update(data_fp.encode("utf-8"))
    digest.update(seed_blob.encode("utf-8"))
    return digest.hexdigest()[:16]


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write so ``path`` is either the old content or all of ``data``."""
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class CheckpointStore:
    """Atomic, hash-verified artifact store for one pipeline run."""

    #: Meta fields that define the run identity; opening an existing run
    #: directory with a different value for any of them is an error, not
    #: a silent artifact reuse.
    IDENTITY_FIELDS = ("config_fingerprint", "dataset_fingerprint")

    def __init__(self, root: str | os.PathLike, key: str,
                 meta: Mapping[str, Any] | None = None) -> None:
        self.root = Path(root)
        self.key = key
        self.run_dir = self.root / key
        self.run_dir.mkdir(parents=True, exist_ok=True)
        with self._manifest_lock():
            if not (self.run_dir / MANIFEST_NAME).exists():
                self._write_manifest({
                    "version": 1,
                    "key": key,
                    "meta": dict(meta or {}),
                    "phases": {},
                })
                return
        stored = self.manifest().get("meta", {})
        for name in self.IDENTITY_FIELDS:
            mine = (meta or {}).get(name)
            theirs = stored.get(name)
            if mine is not None and theirs is not None and mine != theirs:
                raise CheckpointError(
                    f"checkpoint {self.run_dir} belongs to a different run: "
                    f"{name} mismatch (stored {theirs[:12]}..., "
                    f"current {mine[:12]}...); it will not be resumed"
                )

    @classmethod
    def open(cls, root: str | os.PathLike, config: Any,
             rng: np.random.Generator,
             dataset: "TemporalEdgeList | str | None" = None
             ) -> "CheckpointStore":
        """Open (creating if needed) the store for (config, dataset, rng).

        ``dataset`` — the input edge list or its precomputed
        :func:`dataset_fingerprint` — is part of the run identity: it is
        folded into the directory key *and* verified against the stored
        manifest, so a resume against a different graph raises
        :class:`CheckpointError` rather than loading foreign artifacts.
        """
        meta = {
            "config_fingerprint": config_fingerprint(config),
            "initial_rng": rng_snapshot(rng),
        }
        data_fp = _resolve_dataset_fingerprint(dataset)
        if data_fp is not None:
            meta["dataset_fingerprint"] = data_fp
        return cls(root, run_key(config, rng, dataset=data_fp), meta=meta)

    # -- manifest ------------------------------------------------------
    @contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        """Advisory inter-process lock for manifest read-modify-writes.

        Each manifest *write* is atomic (temp file + ``os.replace``) but
        an update is read-modify-write: two concurrent processes sharing
        one run directory could each read the same manifest and silently
        drop the other's phase entry.  An ``fcntl.flock`` on a lockfile
        in the run directory serializes updates; on platforms without
        ``fcntl`` this degrades to no locking (single-process use only).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(self.run_dir / ".manifest.lock", "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def manifest(self) -> dict:
        """Load the manifest (raises :class:`CheckpointError` if bad)."""
        path = self.run_dir / MANIFEST_NAME
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError as exc:
            raise CheckpointError(f"no manifest at {path}") from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt manifest at {path}: {exc}") from exc

    def _write_manifest(self, manifest: Mapping[str, Any]) -> None:
        _atomic_write_bytes(
            self.run_dir / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )

    def _record_phase(self, phase: str, entry: Mapping[str, Any]) -> None:
        with self._manifest_lock():
            manifest = self.manifest()
            manifest["phases"][phase] = dict(entry)
            self._write_manifest(manifest)

    # -- phase queries -------------------------------------------------
    def phases(self) -> dict[str, str]:
        """Phase name -> status for every recorded phase."""
        return {
            name: entry.get("status", "unknown")
            for name, entry in self.manifest()["phases"].items()
        }

    def has(self, phase: str) -> bool:
        """True when ``phase`` completed and its artifact file exists."""
        entry = self.manifest()["phases"].get(phase)
        if entry is None or entry.get("status") != "complete":
            return False
        return (self.run_dir / entry["file"]).exists()

    def invalidate(self, phase: str) -> None:
        """Drop one phase's artifact + manifest entry (for forced recompute)."""
        with self._manifest_lock():
            manifest = self.manifest()
            entry = manifest["phases"].pop(phase, None)
            self._write_manifest(manifest)
        if entry is not None:
            try:
                os.remove(self.run_dir / entry["file"])
            except OSError:
                pass

    # -- generic payloads ----------------------------------------------
    def _save_payload(self, phase: str, filename: str, data: bytes,
                      extra: Mapping[str, Any] | None,
                      rng: np.random.Generator | None) -> None:
        rec = get_recorder()
        with rec.span("checkpoint.save", phase=phase, bytes=len(data)):
            _atomic_write_bytes(self.run_dir / filename, data)
            entry: dict[str, Any] = {
                "file": filename,
                "sha256": _sha256(data),
                "bytes": len(data),
                "status": "complete",
            }
            if extra:
                entry["extra"] = dict(extra)
            if rng is not None:
                entry["rng"] = rng_snapshot(rng)
            self._record_phase(phase, entry)
        rec.counter("checkpoint.saves")
        rec.counter("checkpoint.bytes_written", len(data))

    def _load_payload(self, phase: str) -> tuple[bytes, dict]:
        rec = get_recorder()
        with rec.span("checkpoint.load", phase=phase):
            entry = self.manifest()["phases"].get(phase)
            if entry is None or entry.get("status") != "complete":
                raise CheckpointError(
                    f"phase {phase!r} is not checkpointed in {self.run_dir}"
                )
            path = self.run_dir / entry["file"]
            try:
                data = path.read_bytes()
            except OSError as exc:
                raise CheckpointError(
                    f"cannot read artifact for phase {phase!r}: {exc}"
                ) from exc
            if _sha256(data) != entry["sha256"]:
                raise CheckpointError(
                    f"artifact for phase {phase!r} failed integrity check "
                    f"({path}); delete the run directory and re-run"
                )
        rec.counter("checkpoint.loads")
        rec.counter("checkpoint.bytes_read", len(data))
        return data, entry

    def save_arrays(self, phase: str, arrays: Mapping[str, np.ndarray],
                    extra: Mapping[str, Any] | None = None,
                    rng: np.random.Generator | None = None) -> None:
        """Checkpoint named arrays (npz) atomically under ``phase``."""
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **dict(arrays))
        self._save_payload(phase, f"{phase}.npz", buffer.getvalue(), extra, rng)

    def load_arrays(self, phase: str) -> tuple[dict[str, np.ndarray], dict]:
        """Load a :meth:`save_arrays` checkpoint -> (arrays, manifest entry)."""
        data, entry = self._load_payload(phase)
        try:
            with np.load(io.BytesIO(data)) as bundle:
                arrays = {name: bundle[name] for name in bundle.files}
        except Exception as exc:
            raise CheckpointError(
                f"artifact for phase {phase!r} is not a readable npz: {exc}"
            ) from exc
        return arrays, entry

    def save_pickle(self, phase: str, obj: Any,
                    extra: Mapping[str, Any] | None = None,
                    rng: np.random.Generator | None = None) -> None:
        """Checkpoint an arbitrary picklable object under ``phase``."""
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._save_payload(phase, f"{phase}.pkl", data, extra, rng)

    def load_pickle(self, phase: str) -> tuple[Any, dict]:
        """Load a :meth:`save_pickle` checkpoint -> (object, manifest entry)."""
        data, entry = self._load_payload(phase)
        try:
            return pickle.loads(data), entry
        except Exception as exc:
            raise CheckpointError(
                f"artifact for phase {phase!r} failed to unpickle: {exc}"
            ) from exc

    def load_rng(self, phase: str) -> np.random.Generator:
        """The Generator state recorded when ``phase`` completed."""
        entry = self.manifest()["phases"].get(phase)
        if entry is None or "rng" not in entry:
            raise CheckpointError(f"phase {phase!r} has no rng snapshot")
        return rng_restore(entry["rng"])

    # -- typed phase artifacts -----------------------------------------
    def save_walks(self, corpus: WalkCorpus, stats: WalkStats,
                   rng: np.random.Generator | None = None,
                   phase: str = "walks") -> None:
        """Persist the phase-1 artifact: corpus matrix + work counters."""
        self.save_arrays(
            phase,
            {
                "matrix": corpus.matrix,
                "lengths": corpus.lengths,
                "start_nodes": corpus.start_nodes,
                "work_per_start_node": stats.work_per_start_node,
            },
            extra={name: int(getattr(stats, name)) for name in _WALK_COUNTERS},
            rng=rng,
        )

    def load_walks(self, phase: str = "walks"
                   ) -> tuple[WalkCorpus, WalkStats]:
        """Load the phase-1 artifact back into live objects."""
        arrays, entry = self.load_arrays(phase)
        try:
            corpus = WalkCorpus(
                arrays["matrix"], arrays["lengths"],
                start_nodes=arrays["start_nodes"],
            )
            counters = entry["extra"]
            # .get tolerates checkpoints written before a counter existed.
            stats = WalkStats(
                work_per_start_node=arrays["work_per_start_node"],
                **{name: int(counters.get(name, 0))
                   for name in _WALK_COUNTERS},
            )
        except KeyError as exc:
            raise CheckpointError(
                f"walks checkpoint is missing field {exc}"
            ) from exc
        return corpus, stats

    def save_embeddings(self, embeddings: NodeEmbeddings,
                        stats: TrainerStats,
                        rng: np.random.Generator | None = None,
                        phase: str = "embeddings") -> None:
        """Persist the phase-2 artifact: embedding matrix + loss trace."""
        self.save_arrays(
            phase,
            {
                "matrix": embeddings.matrix,
                "losses": np.asarray(stats.losses, dtype=np.float64),
            },
            extra={name: getattr(stats, name) for name in _TRAINER_COUNTERS},
            rng=rng,
        )

    def load_embeddings(self, phase: str = "embeddings"
                        ) -> tuple[NodeEmbeddings, TrainerStats]:
        """Load the phase-2 artifact back into live objects."""
        arrays, entry = self.load_arrays(phase)
        try:
            embeddings = NodeEmbeddings(arrays["matrix"])
            counters = entry["extra"]
            stats = TrainerStats(
                pairs_trained=int(counters["pairs_trained"]),
                sentences=int(counters["sentences"]),
                updates=int(counters["updates"]),
                fp_ops=int(counters["fp_ops"]),
                mean_loss=float(counters["mean_loss"]),
                wall_seconds=float(counters["wall_seconds"]),
                losses=[float(v) for v in arrays["losses"]],
            )
        except KeyError as exc:
            raise CheckpointError(
                f"embeddings checkpoint is missing field {exc}"
            ) from exc
        return embeddings, stats

    def save_splits(self, splits: "EdgeSplits | NodeSplits",
                    phase: str = "splits",
                    rng: np.random.Generator | None = None) -> None:
        """Persist split indices (edge or node partitions)."""
        from repro.tasks.splits import EdgeSplits, NodeSplits

        if isinstance(splits, EdgeSplits):
            arrays: dict[str, np.ndarray] = {}
            num_nodes = 0
            for part in ("train", "valid", "test"):
                edges: TemporalEdgeList = getattr(splits, part)
                arrays[f"{part}_src"] = edges.src
                arrays[f"{part}_dst"] = edges.dst
                arrays[f"{part}_ts"] = edges.timestamps
                num_nodes = max(num_nodes, edges.num_nodes)
            self.save_arrays(phase, arrays,
                             extra={"kind": "edge", "num_nodes": num_nodes},
                             rng=rng)
        elif isinstance(splits, NodeSplits):
            self.save_arrays(
                phase,
                {part: getattr(splits, part)
                 for part in ("train", "valid", "test")},
                extra={"kind": "node"}, rng=rng,
            )
        else:
            raise CheckpointError(
                f"cannot checkpoint splits of type {type(splits).__name__}"
            )

    def load_splits(self, phase: str = "splits") -> "EdgeSplits | NodeSplits":
        """Load split indices saved by :meth:`save_splits`."""
        from repro.tasks.splits import EdgeSplits, NodeSplits

        arrays, entry = self.load_arrays(phase)
        kind = entry.get("extra", {}).get("kind")
        if kind == "edge":
            num_nodes = int(entry["extra"]["num_nodes"])
            parts = {
                part: TemporalEdgeList(
                    arrays[f"{part}_src"], arrays[f"{part}_dst"],
                    arrays[f"{part}_ts"], num_nodes=num_nodes,
                )
                for part in ("train", "valid", "test")
            }
            return EdgeSplits(**parts)
        if kind == "node":
            return NodeSplits(train=arrays["train"], valid=arrays["valid"],
                              test=arrays["test"])
        raise CheckpointError(f"unknown splits kind {kind!r} in {phase!r}")

    def save_classifier(self, model: Module, phase: str = "classifier",
                        rng: np.random.Generator | None = None) -> None:
        """Persist a classifier's parameter arrays (architecture-free)."""
        params = model.parameters()
        self.save_arrays(
            phase,
            {f"param_{i}": p.data for i, p in enumerate(params)},
            extra={
                "num_params": len(params),
                "names": [p.name for p in params],
            },
            rng=rng,
        )

    def load_classifier_into(self, model: Module,
                             phase: str = "classifier") -> Module:
        """Load saved parameters into an architecture-matching model."""
        arrays, entry = self.load_arrays(phase)
        params = model.parameters()
        saved = int(entry.get("extra", {}).get("num_params", len(arrays)))
        if saved != len(params):
            raise CheckpointError(
                f"classifier checkpoint has {saved} parameters, "
                f"model has {len(params)}"
            )
        for i, param in enumerate(params):
            data = arrays[f"param_{i}"]
            if data.shape != param.data.shape:
                raise CheckpointError(
                    f"classifier parameter {i} shape mismatch: "
                    f"checkpoint {data.shape} vs model {param.data.shape}"
                )
            param.data[...] = data
        return model
