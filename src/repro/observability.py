"""Unified observability: metrics registry, span tracing, exporters.

The source paper is a *characterization* study — its headline artifacts
are per-kernel instruction mixes (Fig. 9), thread-scaling curves
(Fig. 10), and per-phase time breakdowns (Table III).  This module is
the single instrumentation substrate those analyses (and the parallel
supervisor, checkpoint store, and benchmarks) share:

- :class:`Recorder` — a process-local registry of **counters** (monotone
  totals: edges scanned, pairs trained, retries), **gauges** (last-value
  samples: final learning rate), and **histograms** (streaming
  count/sum/min/max/sumsq statistics: per-update learning rates, span
  durations), plus a tree of **spans**;
- spans — ``with recorder.span("rwalk"):`` blocks that nest, measure
  wall time on a monotonic clock, carry attributes, and survive
  exceptions (an escaping exception marks the span ``status="error"``
  and re-raises);
- exporters — ``write_metrics`` (one JSON document) and ``write_trace``
  (JSON Lines, one span per line, parent links by id) with a
  ``read_trace`` round-trip helper;
- :class:`NullRecorder` — the ambient default.  Every mutation is a
  no-op and ``span()`` returns a minimal timing-only context, so
  instrumented hot paths cost two clock reads per *phase* (never per
  walk step) when observability is disabled.

Components discover the active recorder ambiently: ``get_recorder()``
returns the installed recorder (a :class:`NullRecorder` unless
``set_recorder`` / ``use_recorder`` installed a real one), so the walk
engine, SGNS trainers, supervisor, and checkpoint store need no
recorder plumbing through their signatures.  The CLI exposes
``--metrics-out`` / ``--trace-out`` which install a :class:`Recorder`
around the pipeline run and export both files at exit.

See ``docs/observability.md`` for the metric/span catalog and the file
formats.
"""

from __future__ import annotations

import json
import math
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "Histogram",
    "Span",
    "Recorder",
    "NullRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "validate_pipeline_observability",
]


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------


class Histogram:
    """Streaming summary statistics of an observed value.

    Keeps count/sum/min/max/sum-of-squares so ``mean`` and ``std`` are
    exact without retaining samples; memory is O(1) no matter how many
    observations arrive (per-update learning rates can number in the
    tens of thousands).
    """

    __slots__ = ("count", "total", "min", "max", "sum_sq")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sum_sq = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        var = self.sum_sq / self.count - self.mean ** 2
        return math.sqrt(max(0.0, var))

    def summary(self) -> dict[str, float]:
        """JSON-safe summary of the distribution."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "std": self.std,
        }

    def state(self) -> dict[str, float]:
        """Raw mergeable fields — exact, unlike :meth:`summary`'s
        derived ``std`` (which cannot be merged losslessly)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "sum_sq": self.sum_sq,
        }

    def merge_state(self, state: dict[str, float]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Exact: count/total/sum-of-squares add, min/max combine, so the
        merged mean/std equal what one histogram observing both streams
        would report.  An empty state is a no-op.
        """
        count = int(state.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(state["total"])
        self.sum_sq += float(state["sum_sq"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))


class Span:
    """One timed, attributed node of the trace tree.

    ``start``/``end`` are seconds on the recorder's monotonic clock,
    relative to recorder creation; ``duration`` is available after the
    span closes (``math.nan`` while still open).
    """

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end",
                 "status", "error", "children")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 start: float, attrs: dict[str, Any] | None = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.start = start
        self.end: float | None = None
        self.status = "open"
        self.error: str | None = None
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        """Wall seconds from open to close (NaN while still open)."""
        if self.end is None:
            return math.nan
        return self.end - self.start

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to this span."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-safe representation (one trace line)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration if self.end is not None else None,
            "status": self.status,
            "error": self.error,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span(name={self.name!r}, duration={self.duration:.6f}, "
                f"status={self.status!r})")


class _NullSpan:
    """Timing-only span handed out by :class:`NullRecorder`.

    Measures wall time (so :class:`~repro.tasks.pipeline.PhaseTimings`
    stays populated when observability is off) but records nothing and
    swallows annotations.
    """

    __slots__ = ("start", "end")

    name = "null"
    attrs: dict[str, Any] = {}
    status = "ok"

    def __init__(self) -> None:
        self.start = time.perf_counter()
        self.end: float | None = None

    @property
    def duration(self) -> float:
        if self.end is None:
            return math.nan
        return self.end - self.start

    def annotate(self, **attrs: Any) -> None:
        pass


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------


class Recorder:
    """Process-local metrics registry plus span-based tracing."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._roots: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- metrics -------------------------------------------------------
    def counter(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the monotone counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the last-value gauge ``name``."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- spans ---------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._t0

    def _open_span(self, name: str, attrs: dict[str, Any] | None,
                   start: float) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name, start, attrs,
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self._roots.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; closes (and times) it on exit.

        An exception escaping the block marks the span
        ``status="error"`` with the exception's repr and re-raises; the
        span stack is popped either way, so tracing can never corrupt
        control flow.
        """
        span = self._open_span(name, attrs, self._now())
        self._stack.append(span)
        try:
            yield span
            span.status = "ok"
        except BaseException as exc:
            span.status = "error"
            span.error = repr(exc)
            raise
        finally:
            span.end = self._now()
            self._stack.pop()

    def record_span(self, name: str, seconds: float,
                    **attrs: Any) -> Span:
        """Record an already-measured span ending now.

        For events timed outside the span stack — e.g. the supervisor's
        concurrent shard attempts, which overlap each other and so
        cannot nest.  The span parents under the currently open span.
        """
        end = self._now()
        span = self._open_span(name, attrs, end - max(0.0, float(seconds)))
        span.end = end
        span.status = "ok"
        return span

    @property
    def current_span(self) -> Span | None:
        """Innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op at root)."""
        if self._stack:
            self._stack[-1].annotate(**attrs)

    # -- queries -------------------------------------------------------
    def spans(self, name: str | None = None) -> Iterator[Span]:
        """Depth-first iteration over all spans (optionally by name)."""
        stack = list(reversed(self._roots))
        while stack:
            span = stack.pop()
            if name is None or span.name == name:
                yield span
            stack.extend(reversed(span.children))

    def span_seconds(self, name: str) -> float:
        """Total duration of all *closed* spans named ``name``."""
        return sum(
            s.duration for s in self.spans(name) if s.end is not None
        )

    # -- export --------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        """All registered metrics as one JSON-safe document."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.summary()
                for name, hist in self.histograms.items()
            },
        }

    def export_state(self) -> dict[str, Any]:
        """All metrics with *mergeable* histogram fields.

        Unlike :meth:`metrics` (whose histogram summaries carry derived
        statistics), the returned document round-trips losslessly
        through :meth:`merge_state` — this is what shard workers ship
        back to the router over the command pipe.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.state()
                for name, hist in self.histograms.items()
            },
        }

    def merge_state(self, state: dict[str, Any],
                    prefix: str = "") -> None:
        """Fold another recorder's :meth:`export_state` into this one.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge exactly.  ``prefix`` namespaces every incoming
        metric (e.g. ``"serving.shard.workers."``) so aggregated
        worker-process metrics cannot collide with this process's own.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(prefix + name, value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(prefix + name, value)
        for name, hist_state in state.get("histograms", {}).items():
            hist = self.histograms.get(prefix + name)
            if hist is None:
                hist = self.histograms[prefix + name] = Histogram()
            hist.merge_state(hist_state)

    def trace(self) -> list[dict[str, Any]]:
        """Every span as a flat JSON-safe dict, depth-first."""
        return [span.to_dict() for span in self.spans()]

    def write_metrics(self, path: str | os.PathLike) -> None:
        """Write :meth:`metrics` to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.metrics(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def write_trace(self, path: str | os.PathLike) -> None:
        """Write the trace to ``path`` as JSON Lines (one span per line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for row in self.trace():
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")

    @staticmethod
    def read_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
        """Parse a :meth:`write_trace` file back into span dicts."""
        rows = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
        return rows


class NullRecorder(Recorder):
    """A recorder whose every operation is (nearly) free.

    Metric mutations are no-ops; ``span()`` still measures wall time
    (two clock reads per phase) because phase timings must stay correct
    with observability disabled, but nothing is retained.
    """

    enabled = False

    def __init__(self) -> None:  # skip Recorder state
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def counter(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge_state(self, state: dict[str, Any],
                    prefix: str = "") -> None:
        pass

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_NullSpan]:
        span = _NullSpan()
        try:
            yield span
        finally:
            span.end = time.perf_counter()

    def record_span(self, name: str, seconds: float, **attrs: Any) -> None:
        return None

    @property
    def current_span(self) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        pass

    def spans(self, name: str | None = None) -> Iterator[Span]:
        return iter(())

    def span_seconds(self, name: str) -> float:
        return 0.0


# ---------------------------------------------------------------------------
# Ambient recorder
# ---------------------------------------------------------------------------

NULL_RECORDER = NullRecorder()
_ambient: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The ambient recorder (a shared :class:`NullRecorder` by default)."""
    return _ambient


def set_recorder(recorder: Recorder | None) -> Recorder:
    """Install ``recorder`` ambiently; returns the previous one.

    ``None`` restores the null recorder.
    """
    global _ambient
    previous = _ambient
    _ambient = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Recorder | None) -> Iterator[Recorder]:
    """Scope ``recorder`` as the ambient recorder; restores on exit."""
    previous = set_recorder(recorder)
    try:
        yield get_recorder()
    finally:
        set_recorder(previous)


# ---------------------------------------------------------------------------
# Emitted-file validation (CI smoke + tests)
# ---------------------------------------------------------------------------

#: Span names one full pipeline run must emit (Table III's phases).
PIPELINE_SPAN_NAMES = ("rwalk", "word2vec", "data_prep", "train", "test")

#: Walk-engine op counters a pipeline run must report nonzero.
PIPELINE_COUNTER_NAMES = ("walk.edges_scanned", "walk.steps",
                          "walk.search_iterations")

_SPAN_REQUIRED_KEYS = ("id", "parent", "name", "start", "end", "duration",
                       "status", "attrs")


def validate_pipeline_observability(
    metrics_path: str | os.PathLike, trace_path: str | os.PathLike
) -> dict[str, Any]:
    """Validate ``--metrics-out`` / ``--trace-out`` files of a pipeline run.

    Checks the documented schema (docs/observability.md): the metrics
    document has counters/gauges/histograms sections with the walk
    engine's op counters nonzero, and the trace is well-formed JSONL
    whose spans cover every pipeline phase, close cleanly, and whose
    parent links resolve.  Raises ``ValueError`` on the first violation;
    returns ``{"metrics": ..., "spans": ...}`` on success so callers can
    assert further.
    """
    with open(metrics_path, "r", encoding="utf-8") as handle:
        metrics = json.load(handle)
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics or not isinstance(metrics[section], dict):
            raise ValueError(f"metrics file lacks a {section!r} mapping")
    for name in PIPELINE_COUNTER_NAMES:
        value = metrics["counters"].get(name, 0)
        if not value > 0:
            raise ValueError(f"counter {name!r} missing or zero ({value})")
    for name, summary in metrics["histograms"].items():
        for key in ("count", "sum", "mean", "min", "max", "std"):
            if key not in summary:
                raise ValueError(f"histogram {name!r} lacks {key!r}")

    spans = Recorder.read_trace(trace_path)
    if not spans:
        raise ValueError("trace file contains no spans")
    ids = set()
    for row in spans:
        for key in _SPAN_REQUIRED_KEYS:
            if key not in row:
                raise ValueError(f"span line lacks {key!r}: {row}")
        if row["status"] not in ("ok", "error"):
            raise ValueError(
                f"span {row['name']!r} did not close (status {row['status']!r})"
            )
        if row["end"] is None or row["duration"] is None or row["duration"] < 0:
            raise ValueError(f"span {row['name']!r} has no valid duration")
        ids.add(row["id"])
    for row in spans:
        if row["parent"] is not None and row["parent"] not in ids:
            raise ValueError(
                f"span {row['name']!r} has dangling parent {row['parent']}"
            )
    names = {row["name"] for row in spans}
    missing = [name for name in PIPELINE_SPAN_NAMES if name not in names]
    if missing:
        raise ValueError(f"trace lacks pipeline phase span(s): {missing}")
    return {"metrics": metrics, "spans": spans}
