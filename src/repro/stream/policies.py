"""Pluggable policies deciding *when* continuous ingest refreshes embeddings.

§VII-B observes that "an entire pipeline needs to run to account for
new nodes/connections" — but never says *when*.  Refresh too eagerly
and ingest throughput collapses into walk+SGNS work; too lazily and the
served embeddings go stale.  The controller consults one of these
policies after every applied batch (and on idle ticks, for wall-clock
policies); each captures a different operational stance, and
``bench_stream_ingest`` measures the staleness/cost trade-off across
all three:

- :class:`EveryNEdges` — refresh each time N edges accumulate (work-
  proportional: refresh cost amortized over a fixed amount of change);
- :class:`MaxStaleness` — refresh when the oldest unapplied edge is
  older than a wall-clock budget (latency-SLO stance: bounded staleness
  regardless of load);
- :class:`AffectedFraction` — refresh when the touched node set exceeds
  a fraction of the graph (impact-proportional: many edges into few hot
  nodes defer longer than a few edges scattered widely, since
  :meth:`~repro.tasks.incremental.IncrementalEmbedder.update` cost
  scales with affected nodes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import StreamError


@dataclass
class PendingState:
    """What has accumulated since the last refresh (policy input)."""

    edges: int                #: edges applied to the graph, not yet embedded
    affected_nodes: int       #: distinct nodes those edges touch
    num_nodes: int            #: current graph node count
    seconds_since_refresh: float  #: wall clock since the last refresh
    seconds_since_first_pending: float  #: age of the oldest unapplied edge


class RefreshPolicy:
    """Decides whether accumulated pending work warrants a refresh."""

    #: Short identifier used in metrics (``stream.refresh.triggers.<name>``)
    #: and CLI/bench labels.
    name = "base"

    def should_refresh(self, pending: PendingState) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class EveryNEdges(RefreshPolicy):
    """Refresh once ``n`` edges have accumulated since the last refresh."""

    name = "every-n"

    def __init__(self, n: int = 1000) -> None:
        if n < 1:
            raise StreamError(f"EveryNEdges requires n >= 1, got {n}")
        self.n = int(n)

    def should_refresh(self, pending: PendingState) -> bool:
        return pending.edges >= self.n

    def __repr__(self) -> str:
        return f"EveryNEdges(n={self.n})"


class MaxStaleness(RefreshPolicy):
    """Refresh when pending edges have waited ``seconds`` of wall clock.

    Idle periods never trigger (no pending edges → nothing is stale).
    The controller evaluates this on idle ticks too, so the bound holds
    even when arrivals stop right after a batch.
    """

    name = "staleness"

    def __init__(self, seconds: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if seconds <= 0:
            raise StreamError(
                f"MaxStaleness requires seconds > 0, got {seconds}"
            )
        self.seconds = float(seconds)
        self.clock = clock

    def should_refresh(self, pending: PendingState) -> bool:
        return (pending.edges > 0
                and pending.seconds_since_first_pending >= self.seconds)

    def __repr__(self) -> str:
        return f"MaxStaleness(seconds={self.seconds})"


class AffectedFraction(RefreshPolicy):
    """Refresh when pending edges touch ``fraction`` of all nodes."""

    name = "affected"

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise StreamError(
                f"AffectedFraction requires 0 < fraction <= 1, got {fraction}"
            )
        self.fraction = float(fraction)

    def should_refresh(self, pending: PendingState) -> bool:
        if pending.num_nodes == 0:
            return False
        return (pending.affected_nodes / pending.num_nodes) >= self.fraction

    def __repr__(self) -> str:
        return f"AffectedFraction(fraction={self.fraction})"
