"""Bounded ingest queue with configurable backpressure.

The streaming topology puts a producer (edge arrivals) and a consumer
(the :class:`~repro.stream.controller.StreamController` drain thread)
on opposite sides of this queue.  Without a bound, a producer that
outruns WAL fsyncs + incremental refreshes grows the pending-batch list
until the process OOMs; :class:`IngestQueue` bounds the queue in
*edges* (the unit that actually costs memory) and applies one of three
policies when an arriving batch would overflow it:

``block``
    The producer waits until the consumer frees room (classic
    flow-control; arrival order and completeness preserved, producer
    latency absorbs the pressure).
``drop_oldest``
    Evict queued batches oldest-first until the new batch fits (the
    freshest data wins — right for workloads where a newer edge
    supersedes an older one's effect on embeddings; loss is counted).
``reject``
    Refuse the new batch (``put`` returns ``False``), pushing the retry
    decision to the producer (the load-shedding stance).

Independently of the bound, an optional token-bucket rate limiter
smooths producers to ``rate_limit`` edges/second with bursts up to
``burst`` — so a hot producer is paced *before* it slams the queue.

All mutations are lock-protected; ``put`` and ``get`` may be called
from any thread.  Depth, drops, rejections, blocked waits, and throttle
time are reported through :mod:`repro.observability` as ``stream.queue.*``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.errors import StreamError
from repro.graph.edges import TemporalEdgeList
from repro.observability import get_recorder

POLICIES = ("block", "drop_oldest", "reject")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    ``acquire(n)`` blocks until ``n`` tokens are available and returns
    the seconds slept.  Requests larger than ``burst`` are allowed —
    they simply drain the bucket negative and pay the full wait — so a
    single oversized batch throttles rather than deadlocks.
    """

    def __init__(self, rate: float, burst: float | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if rate <= 0:
            raise StreamError(f"token bucket rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else self.rate
        if self.burst <= 0:
            raise StreamError(f"token bucket burst must be > 0, got {burst}")
        self._clock = clock
        self._sleep = sleep
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def acquire(self, tokens: float) -> float:
        """Take ``tokens``, sleeping as needed; returns seconds slept."""
        waited = 0.0
        with self._lock:
            self._refill()
            self._tokens -= tokens
            deficit = -self._tokens
        if deficit > 0:
            wait = deficit / self.rate
            self._sleep(wait)
            waited = wait
        return waited


class IngestQueue:
    """Bounded FIFO of edge batches between producers and the controller."""

    def __init__(
        self,
        max_edges: int = 100_000,
        policy: str = "block",
        rate_limit: float | None = None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_edges < 1:
            raise StreamError(f"max_edges must be >= 1, got {max_edges}")
        if policy not in POLICIES:
            raise StreamError(
                f"unknown backpressure policy {policy!r}; "
                f"options: {', '.join(POLICIES)}"
            )
        self.max_edges = int(max_edges)
        self.policy = policy
        self._limiter = (
            TokenBucket(rate_limit, burst, clock=clock)
            if rate_limit is not None else None
        )
        self._batches: deque[TemporalEdgeList] = deque()
        self._depth_edges = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.dropped_batches = 0
        self.dropped_edges = 0
        self.rejected_batches = 0
        self.oversized_rejected = 0

    # ------------------------------------------------------------------
    @property
    def depth_edges(self) -> int:
        """Edges currently queued."""
        with self._lock:
            return self._depth_edges

    @property
    def depth_batches(self) -> int:
        """Batches currently queued."""
        with self._lock:
            return len(self._batches)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def put(self, edges: TemporalEdgeList,
            timeout: float | None = None) -> bool:
        """Enqueue one batch; returns True when it was accepted.

        Under ``reject`` (or a ``block`` timeout) an overflowing batch
        returns False and is counted; under ``drop_oldest`` the put
        always succeeds, at the price of evicting queued batches.  A
        batch larger than ``max_edges`` can never fit alongside others:
        ``drop_oldest`` admits it alone (bounding memory at one batch),
        the other policies refuse it — so ``block`` *can* return False
        without ever waiting when handed an oversized batch.  Such
        refusals are counted in ``oversized_rejected`` (and the
        ``stream.queue.oversized_rejected`` counter) on top of the
        rejection counters; blocked-wait metrics are booked only when a
        wait actually happened.
        """
        if len(edges) == 0:
            return True
        rec = get_recorder()
        if self._limiter is not None:
            throttled = self._limiter.acquire(len(edges))
            if throttled > 0:
                rec.counter("stream.queue.throttled_puts")
                rec.observe("stream.queue.throttle_seconds", throttled)
        with self._lock:
            if self._closed:
                raise StreamError("put on a closed IngestQueue")
            if self.policy == "drop_oldest":
                while (self._batches
                       and self._depth_edges + len(edges) > self.max_edges):
                    victim = self._batches.popleft()
                    self._depth_edges -= len(victim)
                    self.dropped_batches += 1
                    self.dropped_edges += len(victim)
                    rec.counter("stream.queue.dropped_batches")
                    rec.counter("stream.queue.dropped_edges", len(victim))
            elif self._depth_edges + len(edges) > self.max_edges:
                if self.policy == "reject":
                    self.rejected_batches += 1
                    rec.counter("stream.queue.rejected_batches")
                    rec.counter("stream.queue.rejected_edges", len(edges))
                    return False
                if len(edges) > self.max_edges:
                    # An oversized batch can never fit however long the
                    # producer waits: refuse it immediately, without
                    # booking a blocked wait, and count it distinctly
                    # from capacity rejections so metrics can tell a
                    # mis-sized producer from genuine backpressure.
                    self.rejected_batches += 1
                    self.oversized_rejected += 1
                    rec.counter("stream.queue.oversized_rejected")
                    rec.counter("stream.queue.rejected_batches")
                    rec.counter("stream.queue.rejected_edges", len(edges))
                    return False
                # block: wait for the consumer to free room.  Blocked
                # metrics are booked only when a wait actually happens.
                block_start = time.monotonic()
                deadline = (
                    block_start + timeout if timeout is not None else None
                )
                waited = False
                while (not self._closed
                       and self._depth_edges + len(edges) > self.max_edges):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                    waited = True
                    self._not_full.wait(remaining)
                if waited:
                    rec.counter("stream.queue.blocked_puts")
                    rec.observe("stream.queue.block_seconds",
                                time.monotonic() - block_start)
                if self._closed:
                    raise StreamError("put on a closed IngestQueue")
                if self._depth_edges + len(edges) > self.max_edges:
                    self.rejected_batches += 1
                    rec.counter("stream.queue.rejected_batches")
                    rec.counter("stream.queue.rejected_edges", len(edges))
                    return False
            self._batches.append(edges)
            self._depth_edges += len(edges)
            rec.gauge("stream.queue.depth_edges", self._depth_edges)
            rec.gauge("stream.queue.depth_batches", len(self._batches))
            self._not_empty.notify()
        return True

    def get(self, timeout: float | None = None) -> TemporalEdgeList | None:
        """Dequeue the oldest batch; None on timeout or drained-and-closed."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._lock:
            while not self._batches:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._not_empty.wait(remaining)
            batch = self._batches.popleft()
            self._depth_edges -= len(batch)
            rec = get_recorder()
            rec.gauge("stream.queue.depth_edges", self._depth_edges)
            rec.gauge("stream.queue.depth_batches", len(self._batches))
            self._not_full.notify_all()
            return batch

    def close(self) -> None:
        """Refuse further puts; queued batches remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
