"""The stream controller: queue → WAL → graph → policy-driven refresh.

:class:`StreamController` is the consumer end of the durable ingest
topology.  One daemon thread drains the :class:`~repro.stream.queue
.IngestQueue` and, per batch, enforces **log-ahead ordering**: the
batch is appended to the :class:`~repro.stream.wal.WriteAheadLog`
(fsync-on-batch) *before* it is applied to the in-memory
:class:`~repro.graph.dynamic.DynamicTemporalGraph` — so every edge a
reader can observe is already durable, and a crash at any point leaves
the WAL holding a prefix of what the graph held (never the reverse).

After each applied batch (and on idle ticks, for wall-clock policies)
the controller consults its :class:`~repro.stream.policies
.RefreshPolicy`; a trigger runs
:meth:`~repro.tasks.incremental.IncrementalEmbedder.update`, which
re-walks affected nodes, fine-tunes the skip-gram model, and publishes
to the serving store.  :meth:`recover` rebuilds the graph — generation
markers included — from a WAL directory at startup, which is the other
half of the crash-safety contract (asserted bit-identically by the
fault-injection suite via the ``stream.controller.drain`` /
``stream.wal.*`` sites).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import StreamError
from repro.faults import FaultPlan
from repro.graph.dynamic import DynamicTemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.observability import get_recorder
from repro.stream.policies import EveryNEdges, PendingState, RefreshPolicy
from repro.stream.queue import IngestQueue
from repro.stream.wal import ReplayResult, WriteAheadLog, replay
from repro.tasks.incremental import IncrementalEmbedder


@dataclass
class ControllerStats:
    """Counters the controller maintains alongside recorder metrics."""

    batches_applied: int = 0
    edges_applied: int = 0
    batches_failed: int = 0
    refreshes: int = 0
    refresh_seconds: float = 0.0
    errors: list[str] = field(default_factory=list)


class StreamController:
    """Drains an ingest queue into WAL + graph, refreshing by policy."""

    def __init__(
        self,
        dynamic: DynamicTemporalGraph,
        queue: IngestQueue,
        wal: WriteAheadLog | None = None,
        embedder: IncrementalEmbedder | None = None,
        policy: RefreshPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        max_retries: int = 2,
        idle_poll: float = 0.05,
        final_refresh: bool = True,
    ) -> None:
        if max_retries < 0:
            raise StreamError(f"max_retries must be >= 0, got {max_retries}")
        if idle_poll <= 0:
            raise StreamError(f"idle_poll must be > 0, got {idle_poll}")
        self.dynamic = dynamic
        self.queue = queue
        self.wal = wal
        self.embedder = embedder
        self.policy = policy or EveryNEdges()
        self.final_refresh = final_refresh
        self._fault_plan = fault_plan or FaultPlan()
        self._max_retries = int(max_retries)
        self._idle_poll = float(idle_poll)
        self.stats = ControllerStats()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._batch_seq = 0
        self._pending_edges = 0
        self._pending_nodes: set[int] = set()
        self._last_refresh = time.monotonic()
        self._first_pending: float | None = None
        self._failure: BaseException | None = None

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def failure(self) -> BaseException | None:
        """Exception that killed the drain loop, if any."""
        return self._failure

    @property
    def pending_edges(self) -> int:
        """Edges applied to the graph but not yet covered by a refresh.

        After a ``final_refresh=False`` shutdown this is the residual
        staleness the serving embeddings carry (what the accuracy-vs-
        staleness bench reports)."""
        return self._pending_edges

    def start(self) -> "StreamController":
        if self._thread is not None:
            raise StreamError("StreamController already started")
        self.dynamic.subscribe(self._on_generation)
        self._thread = threading.Thread(
            target=self._run, name="stream-controller", daemon=True
        )
        self._thread.start()
        return self

    def _on_generation(self, generation: int) -> None:
        """Generation-bump subscriber (detached again by :meth:`stop`)."""
        get_recorder().gauge("stream.graph.generation", generation)

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the drain loop; with ``drain``, apply queued batches first.

        Closes the queue (so producers stop), joins the thread, runs a
        final refresh over any pending edges (when ``final_refresh``),
        and closes the WAL.  Re-raises a drain-loop failure so callers
        can't mistake a dead controller for a clean shutdown.
        """
        self.queue.close()
        if not drain:
            self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self.dynamic.unsubscribe(self._on_generation)
            if thread.is_alive():
                raise StreamError(
                    "stream controller did not stop within the timeout"
                )
        if self.wal is not None:
            self.wal.close()
        if self._failure is not None:
            raise self._failure

    def __enter__(self) -> "StreamController":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        # Don't mask an in-flight exception with a shutdown failure.
        if exc_info[0] is None:
            self.stop()
        else:
            try:
                self.stop()
            except Exception:
                pass

    # ------------------------------------------------------------------
    def _run(self) -> None:
        rec = get_recorder()
        try:
            while True:
                batch = self.queue.get(timeout=self._idle_poll)
                if batch is None:
                    if self._stop.is_set() or self.queue.closed:
                        break
                    # Idle tick: wall-clock policies may still trigger.
                    if self._pending_edges and self._should_refresh():
                        self._refresh()
                    continue
                self._apply(batch, rec)
                if self._stop.is_set():
                    break
            if (self.final_refresh and self.embedder is not None
                    and self._pending_edges):
                self._refresh()
        except BaseException as exc:  # surfaced by stop()
            self._failure = exc
            self.stats.errors.append(repr(exc))

    def _apply(self, batch: TemporalEdgeList, rec) -> None:
        """WAL-then-graph application of one batch, with bounded retries."""
        # Arrival index, not batches_applied: a dropped batch must not
        # make its successor re-match the same fault shard.
        batch_index = self._batch_seq
        self._batch_seq += 1
        attempt = 0
        while True:
            try:
                self._fault_plan.fire("stream.controller.drain",
                                      shard=batch_index, attempt=attempt)
                if self.wal is not None:
                    self.wal.append(batch)
                break
            except StreamError:
                raise
            except Exception as exc:
                attempt += 1
                rec.counter("stream.controller.retries")
                if attempt > self._max_retries:
                    self.stats.batches_failed += 1
                    self.stats.errors.append(repr(exc))
                    rec.counter("stream.controller.failed_batches")
                    return
        self.dynamic.append(batch)
        self.stats.batches_applied += 1
        self.stats.edges_applied += len(batch)
        rec.counter("stream.controller.batches")
        rec.counter("stream.controller.edges", len(batch))
        if self._first_pending is None:
            self._first_pending = time.monotonic()
        self._pending_edges += len(batch)
        self._pending_nodes.update(batch.src.tolist())
        self._pending_nodes.update(batch.dst.tolist())
        if self._should_refresh():
            self._refresh()

    def _pending_state(self) -> PendingState:
        now = time.monotonic()
        return PendingState(
            edges=self._pending_edges,
            affected_nodes=len(self._pending_nodes),
            num_nodes=self.dynamic.num_nodes,
            seconds_since_refresh=now - self._last_refresh,
            seconds_since_first_pending=(
                now - self._first_pending
                if self._first_pending is not None else 0.0
            ),
        )

    def _should_refresh(self) -> bool:
        if self.embedder is None:
            return False
        return self.policy.should_refresh(self._pending_state())

    def _refresh(self) -> None:
        rec = get_recorder()
        state = self._pending_state()
        with rec.span("stream.refresh", policy=self.policy.name,
                      pending_edges=state.edges,
                      affected_nodes=state.affected_nodes):
            report = self.embedder.update()
        self.stats.refreshes += 1
        self.stats.refresh_seconds += report.seconds
        rec.counter(f"stream.refresh.triggers.{self.policy.name}")
        rec.observe("stream.refresh.seconds", report.seconds)
        rec.observe("stream.refresh.pending_edges", state.edges)
        rec.gauge("stream.refresh.generation", report.generation)
        self._pending_edges = 0
        self._pending_nodes.clear()
        self._first_pending = None
        self._last_refresh = time.monotonic()

    # ------------------------------------------------------------------
    @staticmethod
    def recover(
        wal_dir: str,
        initial: TemporalEdgeList | None = None,
        coalesce: bool = False,
    ) -> tuple[DynamicTemporalGraph, ReplayResult]:
        """Rebuild a graph (with usable generation markers) from a WAL.

        ``initial`` is the pre-stream seed graph (edges that were never
        WAL-logged because they predate the stream); committed batches
        replay on top of it.  By default each acknowledged batch becomes
        one generation bump — reproducing the marker sequence the
        crashed process handed to its :class:`IncrementalEmbedder` — so
        a recovered embedder can resume incremental updates against any
        replayed marker.  ``coalesce=True`` applies the whole log as one
        append (one marker), which is O(edges) instead of
        O(edges × batches) for very long logs.
        """
        result = replay(wal_dir)
        dynamic = DynamicTemporalGraph(initial)
        with get_recorder().span("stream.recover",
                                 batches=len(result.batches),
                                 edges=result.total_edges):
            if coalesce and result.batches:
                dynamic.append(result.edge_list())
            else:
                for batch in result.batches:
                    dynamic.append(batch)
        return dynamic, result
