"""Segmented write-ahead edge log with crash-consistent replay.

§VII-B's deployment story assumes edges keep arriving while the
pipeline re-runs; :mod:`repro.serving` made query results durable-ish
(versioned snapshots) and :mod:`repro.checkpoint` made *batch* phase
artifacts durable, but the edge arrivals themselves were still
in-memory only — a crash lost every edge appended since the last full
pipeline run.  :class:`WriteAheadLog` closes that gap: the stream
controller appends each edge batch here *before* applying it to the
in-memory :class:`~repro.graph.dynamic.DynamicTemporalGraph`
(log-ahead ordering), so :func:`replay` can rebuild the acknowledged
edge stream bit-identically after any crash.

On-disk format (all little-endian, no padding)
----------------------------------------------

A log directory holds numbered segments.  The active segment is named
``segment-<n>.open``; rotation (at ``segment_max_bytes``) finalizes it
to ``segment-<n>.wal`` via the same fsync + atomic ``os.replace``
discipline as :mod:`repro.checkpoint`, then opens ``segment-<n+1>.open``.
Rotation only happens on batch boundaries, so a finalized segment always
ends on a commit record; only the single ``.open`` tail segment may be
torn.

Segment header (32 bytes)::

    magic        8s  b"RWALSEG1"
    version      <I  1
    base_edges   <Q  committed edges in all earlier segments
    base_batches <Q  committed batches in all earlier segments
    crc          <I  CRC32 of the preceding 28 bytes

Record (29 bytes, one fixed shape for edges and commits)::

    kind  <B  0 = edge, 1 = commit
    a     <q  edge: src        commit: edges in this batch
    b     <q  edge: dst        commit: committed edges after this batch
    t     <d  edge: timestamp  commit: float(num_nodes of the batch)
    crc   <I  CRC32 of the preceding 25 bytes

Durability contract
-------------------

``append`` writes the batch's edge records, then a commit record, then
(with ``sync=True``) fsyncs — and only then returns.  A batch is
*acknowledged* iff ``append`` returned.  :func:`replay` counts a batch
only when its commit record is intact, and on a torn or corrupt tail in
the final segment it truncates from the first bad byte instead of
failing — so replay yields exactly the acknowledged prefix after a
crash at any point inside ``append`` (this is what the fault-injection
suite asserts, via the ``stream.wal.write`` / ``stream.wal.fsync``
sites).  Corruption in a *finalized* segment is unrecoverable data loss
in the middle of the stream and raises :class:`~repro.errors.StreamError`.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import StreamError
from repro.faults import FaultPlan
from repro.graph.edges import TemporalEdgeList
from repro.observability import get_recorder

MAGIC = b"RWALSEG1"
VERSION = 1

_HEADER = struct.Struct("<8sIQQ")           # + 4-byte CRC
_RECORD = struct.Struct("<Bqqd")            # + 4-byte CRC
HEADER_SIZE = _HEADER.size + 4              # 32
RECORD_SIZE = _RECORD.size + 4              # 29

_KIND_EDGE = 0
_KIND_COMMIT = 1

#: Default rotation threshold: ~64 KiB keeps recovery-time tests fast
#: while being large enough that rotation is off the per-batch path.
DEFAULT_SEGMENT_MAX_BYTES = 64 * 1024

OPEN_SUFFIX = ".open"
FINAL_SUFFIX = ".wal"


def _pack_record(kind: int, a: int, b: int, t: float) -> bytes:
    body = _RECORD.pack(kind, a, b, t)
    return body + struct.pack("<I", zlib.crc32(body))


def _segment_name(index: int, final: bool) -> str:
    return f"segment-{index:08d}{FINAL_SUFFIX if final else OPEN_SUFFIX}"


def _segment_index(path: Path) -> int:
    stem = path.name.split(".")[0]
    try:
        return int(stem.split("-", 1)[1])
    except (IndexError, ValueError) as exc:
        raise StreamError(f"unrecognized WAL segment name {path.name!r}") from exc


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _list_segments(wal_dir: Path) -> list[Path]:
    """All segments in ``wal_dir``, ordered by index (any suffix)."""
    segments = [
        path for path in wal_dir.iterdir()
        if path.name.startswith("segment-")
        and path.name.endswith((OPEN_SUFFIX, FINAL_SUFFIX))
    ]
    segments.sort(key=_segment_index)
    indices = [_segment_index(path) for path in segments]
    if indices and indices != list(range(indices[0], indices[0] + len(indices))):
        raise StreamError(
            f"WAL segment sequence has gaps or duplicates: "
            f"{[p.name for p in segments]}"
        )
    return segments


@dataclass
class SegmentScan:
    """What one segment replay pass found."""

    path: Path
    base_edges: int
    base_batches: int
    batches: list[TemporalEdgeList] = field(default_factory=list)
    truncated_bytes: int = 0


@dataclass
class ReplayResult:
    """The committed content of a WAL directory.

    ``batches`` holds one :class:`TemporalEdgeList` per acknowledged
    append, in order; ``truncated_bytes`` counts torn/uncommitted tail
    bytes that were ignored (nonzero only after a crash mid-append).
    """

    batches: list[TemporalEdgeList]
    segments: int
    total_edges: int
    num_nodes: int
    truncated_bytes: int
    seconds: float

    def edge_list(self) -> TemporalEdgeList:
        """All committed edges as one list (empty list when no batches)."""
        if not self.batches:
            return TemporalEdgeList([], [], [], num_nodes=self.num_nodes)
        return TemporalEdgeList.concatenate(self.batches)


def _scan_segment(path: Path, *, final: bool, strict_base: tuple[int, int] | None
                  ) -> SegmentScan:
    """Parse one segment; ``final`` selects strict vs torn-tail handling.

    ``strict_base`` is the (edges, batches) committed total expected by
    the segment sequence; a mismatched header means segments from a
    different log were mixed in.
    """
    data = path.read_bytes()
    if len(data) < HEADER_SIZE:
        if final:
            raise StreamError(f"WAL segment {path.name} has a truncated header")
        return SegmentScan(path, *(strict_base or (0, 0)),
                           truncated_bytes=len(data))
    header, header_crc = data[:_HEADER.size], data[_HEADER.size:HEADER_SIZE]
    magic, version, base_edges, base_batches = _HEADER.unpack(header)
    if magic != MAGIC:
        raise StreamError(f"WAL segment {path.name} has bad magic {magic!r}")
    if version != VERSION:
        raise StreamError(
            f"WAL segment {path.name} has unsupported version {version}"
        )
    if struct.unpack("<I", header_crc)[0] != zlib.crc32(header):
        raise StreamError(f"WAL segment {path.name} has a corrupt header")
    if strict_base is not None and (base_edges, base_batches) != strict_base:
        raise StreamError(
            f"WAL segment {path.name} base ({base_edges} edges, "
            f"{base_batches} batches) does not continue the log at "
            f"{strict_base}"
        )

    scan = SegmentScan(path, base_edges, base_batches)
    committed_edges = base_edges
    pending: list[tuple[int, int, float]] = []
    offset = HEADER_SIZE
    committed_end = offset

    def torn(reason: str) -> SegmentScan:
        if final:
            raise StreamError(
                f"WAL segment {path.name} is corrupt at byte {offset}: "
                f"{reason} (finalized segments must be intact)"
            )
        scan.truncated_bytes = len(data) - committed_end
        return scan

    while offset < len(data):
        if offset + RECORD_SIZE > len(data):
            return torn("partial record")
        body = data[offset:offset + _RECORD.size]
        (crc,) = struct.unpack_from("<I", data, offset + _RECORD.size)
        if crc != zlib.crc32(body):
            return torn("record CRC mismatch")
        kind, a, b, t = _RECORD.unpack(body)
        if kind == _KIND_EDGE:
            pending.append((a, b, t))
        elif kind == _KIND_COMMIT:
            if a != len(pending) or b != committed_edges + len(pending):
                return torn(
                    f"commit record claims {a} batch edges / {b} total, "
                    f"saw {len(pending)} / {committed_edges + len(pending)}"
                )
            scan.batches.append(
                TemporalEdgeList.from_edges(pending, num_nodes=int(t))
            )
            committed_edges += len(pending)
            pending = []
            committed_end = offset + RECORD_SIZE
        else:
            return torn(f"unknown record kind {kind}")
        offset += RECORD_SIZE

    if pending:
        return torn("edge records with no commit")
    return scan


def replay(wal_dir: str | os.PathLike) -> ReplayResult:
    """Rebuild the acknowledged batch stream from a WAL directory.

    Finalized segments must be intact; the tail (``.open``) segment may
    be torn, in which case everything after its last commit record is
    ignored.  An empty or missing directory replays to zero batches.
    """
    start = time.perf_counter()
    wal_dir = Path(wal_dir)
    batches: list[TemporalEdgeList] = []
    truncated = 0
    segments: list[Path] = []
    if wal_dir.exists():
        segments = _list_segments(wal_dir)
    expected = (0, 0)
    for position, path in enumerate(segments):
        final = path.name.endswith(FINAL_SUFFIX)
        if not final and position != len(segments) - 1:
            raise StreamError(
                f"WAL segment {path.name} is still open but not the tail"
            )
        scan = _scan_segment(path, final=final, strict_base=expected)
        batches.extend(scan.batches)
        truncated += scan.truncated_bytes
        expected = (
            scan.base_edges + sum(len(b) for b in scan.batches),
            scan.base_batches + len(scan.batches),
        )
    total_edges = sum(len(b) for b in batches)
    num_nodes = max((b.num_nodes for b in batches), default=0)
    result = ReplayResult(
        batches=batches,
        segments=len(segments),
        total_edges=total_edges,
        num_nodes=num_nodes,
        truncated_bytes=truncated,
        seconds=time.perf_counter() - start,
    )
    rec = get_recorder()
    rec.counter("stream.wal.replays")
    rec.observe("stream.wal.replay_seconds", result.seconds)
    if truncated:
        rec.counter("stream.wal.truncated_bytes", truncated)
    return result


class WriteAheadLog:
    """Appendable, segmented, fsync-on-batch edge log.

    Opening a directory with existing segments *repairs* it first: the
    leftover ``.open`` tail (if any) is truncated back to its last
    commit record and finalized, and appending continues in a fresh
    segment — the log never appends to a file a previous process wrote.

    Not thread-safe by design: exactly one writer (the stream
    controller's drain thread) appends.  ``fault_plan`` wires the
    ``stream.wal.write`` / ``stream.wal.fsync`` injection sites, fired
    with the batch index as the shard.
    """

    def __init__(
        self,
        wal_dir: str | os.PathLike,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        sync: bool = True,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if segment_max_bytes < HEADER_SIZE + 2 * RECORD_SIZE:
            raise StreamError(
                f"segment_max_bytes={segment_max_bytes} cannot hold even "
                f"one record plus its commit"
            )
        self.wal_dir = Path(wal_dir)
        self.segment_max_bytes = int(segment_max_bytes)
        self.sync = bool(sync)
        self._fault_plan = fault_plan or FaultPlan()
        self._handle = None
        self._closed = False
        # Per-batch fault attempt counter: a retried append of the same
        # batch fires its injection sites with attempt=1, 2, ... so a
        # times=1 spec sabotages only the first try (matching the
        # supervisor's retry semantics).
        self._attempt_batch = -1
        self._attempt = 0
        self.wal_dir.mkdir(parents=True, exist_ok=True)

        self._committed_edges, self._committed_batches, next_index = (
            self._repair_existing()
        )
        self._segment_index = next_index
        self._open_segment()

    # ------------------------------------------------------------------
    @property
    def committed_edges(self) -> int:
        """Edges acknowledged over the log's whole lifetime."""
        return self._committed_edges

    @property
    def committed_batches(self) -> int:
        """Batches acknowledged over the log's whole lifetime."""
        return self._committed_batches

    @property
    def segment_count(self) -> int:
        """Segments on disk, including the active one."""
        return self._segment_index + 1

    # ------------------------------------------------------------------
    def _repair_existing(self) -> tuple[int, int, int]:
        """Truncate + finalize leftover segments; return committed totals.

        Returns ``(committed_edges, committed_batches, next_index)``.
        """
        segments = _list_segments(self.wal_dir)
        edges = batches = 0
        expected = (0, 0)
        next_index = _segment_index(segments[-1]) + 1 if segments else 0
        for position, path in enumerate(segments):
            final = path.name.endswith(FINAL_SUFFIX)
            if not final and position != len(segments) - 1:
                raise StreamError(
                    f"WAL segment {path.name} is still open but not the tail"
                )
            scan = _scan_segment(path, final=final, strict_base=expected)
            seg_edges = sum(len(b) for b in scan.batches)
            edges = scan.base_edges + seg_edges
            batches = scan.base_batches + len(scan.batches)
            expected = (edges, batches)
            if not final:
                committed_size = path.stat().st_size - scan.truncated_bytes
                if committed_size < HEADER_SIZE:
                    # The header itself was torn: the segment committed
                    # nothing, so drop it and reuse its index (keeping
                    # the segment sequence gap-free).
                    os.unlink(path)
                    _fsync_dir(self.wal_dir)
                    next_index = _segment_index(path)
                    continue
                if scan.truncated_bytes:
                    with open(path, "r+b") as handle:
                        handle.truncate(committed_size)
                        handle.flush()
                        os.fsync(handle.fileno())
                self._finalize(path)
        return edges, batches, next_index

    def _finalize(self, open_path: Path) -> None:
        """Atomically rename ``.open`` → ``.wal`` (fsyncing the dir)."""
        final_path = open_path.with_suffix(FINAL_SUFFIX)
        os.replace(open_path, final_path)
        _fsync_dir(self.wal_dir)

    def _open_segment(self) -> None:
        path = self.wal_dir / _segment_name(self._segment_index, final=False)
        header = _HEADER.pack(MAGIC, VERSION, self._committed_edges,
                              self._committed_batches)
        self._handle = open(path, "xb")
        self._handle.write(header + struct.pack("<I", zlib.crc32(header)))
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        _fsync_dir(self.wal_dir)
        self._segment_path = path
        get_recorder().gauge("stream.wal.segments", self.segment_count)

    def _rotate(self) -> None:
        handle = self._handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        self._finalize(self._segment_path)
        self._segment_index += 1
        self._open_segment()
        get_recorder().counter("stream.wal.rotations")

    # ------------------------------------------------------------------
    def append(self, edges: TemporalEdgeList) -> int:
        """Durably append one batch; returns the committed batch count.

        The batch is acknowledged — and will be replayed — only once
        this method returns.  On an injected (or real) exception the
        segment is truncated back to its pre-batch state, so a failed
        append never leaves stray records ahead of later commits.
        """
        if self._closed:
            raise StreamError("append on a closed WriteAheadLog")
        if len(edges) == 0:
            raise StreamError("cannot append an empty batch to the WAL")
        batch_index = self._committed_batches
        if batch_index == self._attempt_batch:
            self._attempt += 1
        else:
            self._attempt_batch = batch_index
            self._attempt = 0
        attempt = self._attempt
        handle = self._handle
        start_offset = handle.tell()
        rec = get_recorder()
        try:
            payload = bytearray()
            for src, dst, ts in zip(edges.src, edges.dst, edges.timestamps):
                payload += _pack_record(_KIND_EDGE, int(src), int(dst),
                                        float(ts))
            # Fire mid-write so a crash here leaves a torn segment tail
            # (the case replay must truncate, not reject).
            half = (len(payload) // (2 * RECORD_SIZE)) * RECORD_SIZE
            handle.write(payload[:half])
            handle.flush()
            self._fault_plan.fire("stream.wal.write", shard=batch_index,
                                  attempt=attempt)
            handle.write(payload[half:])
            handle.flush()
            # Fire between the records and the commit+fsync: a crash
            # here loses exactly this unacknowledged batch on replay.
            self._fault_plan.fire("stream.wal.fsync", shard=batch_index,
                                  attempt=attempt)
            commit = _pack_record(
                _KIND_COMMIT,
                len(edges),
                self._committed_edges + len(edges),
                float(edges.num_nodes),
            )
            handle.write(commit)
            handle.flush()
            if self.sync:
                fsync_start = time.perf_counter()
                os.fsync(handle.fileno())
                rec.observe("stream.wal.fsync_seconds",
                            time.perf_counter() - fsync_start)
        except Exception:
            # Roll the segment back so a retried or later append starts
            # from the last commit, keeping the record stream parseable.
            handle.seek(start_offset)
            handle.truncate(start_offset)
            handle.flush()
            raise
        self._committed_edges += len(edges)
        self._committed_batches += 1
        written = len(payload) + RECORD_SIZE
        rec.counter("stream.wal.batches")
        rec.counter("stream.wal.records", len(edges))
        rec.counter("stream.wal.bytes", written)
        if handle.tell() >= self.segment_max_bytes:
            self._rotate()
        return self._committed_batches

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync, and finalize the active segment."""
        if self._closed:
            return
        self._closed = True
        handle = self._handle
        handle.flush()
        os.fsync(handle.fileno())
        empty = handle.tell() <= HEADER_SIZE
        handle.close()
        if empty:
            # An untouched tail segment carries no data; drop it rather
            # than finalizing an edge-less file.
            os.unlink(self._segment_path)
            _fsync_dir(self.wal_dir)
        else:
            self._finalize(self._segment_path)

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WriteAheadLog(dir={str(self.wal_dir)!r}, "
                f"batches={self._committed_batches}, "
                f"edges={self._committed_edges}, "
                f"segments={self.segment_count})")
