"""Durable streaming ingest: WAL, bounded queue, refresh controller.

This package closes the ingest half of §VII-B's deployment loop that
:mod:`repro.serving` (queries) and :mod:`repro.checkpoint` (batch
artifacts) left open — edge arrivals themselves were in-memory and
ephemeral, so a crash lost every edge appended since the last full
pipeline run, and nothing decided *when* accumulating edges justified
an embedding refresh:

- :class:`WriteAheadLog` / :func:`replay` — segmented, CRC-checked,
  fsync-on-batch edge log with torn-tail-truncating crash recovery;
- :class:`IngestQueue` — edge-bounded producer/consumer queue with
  ``block`` / ``drop_oldest`` / ``reject`` backpressure plus an
  optional token-bucket rate limiter;
- :class:`StreamController` — the drain thread enforcing log-ahead
  ordering (WAL append before graph apply) and triggering
  :class:`~repro.tasks.incremental.IncrementalEmbedder` refreshes via
  pluggable policies (:class:`EveryNEdges`, :class:`MaxStaleness`,
  :class:`AffectedFraction`);
- ``StreamController.recover`` — rebuilds graph + generation markers
  from the log at startup.

See ``docs/streaming.md`` for the WAL format, the backpressure/refresh
policy trade-offs, and the ``stream.*`` metric catalog; the ``repro
stream-sim`` CLI subcommand wires the full topology, and
``bench_stream_ingest`` measures it.
"""

from repro.stream.controller import ControllerStats, StreamController
from repro.stream.policies import (
    AffectedFraction,
    EveryNEdges,
    MaxStaleness,
    PendingState,
    RefreshPolicy,
)
from repro.stream.queue import IngestQueue, TokenBucket
from repro.stream.wal import ReplayResult, WriteAheadLog, replay

__all__ = [
    "AffectedFraction",
    "ControllerStats",
    "EveryNEdges",
    "IngestQueue",
    "MaxStaleness",
    "PendingState",
    "RefreshPolicy",
    "ReplayResult",
    "StreamController",
    "TokenBucket",
    "WriteAheadLog",
    "replay",
]
