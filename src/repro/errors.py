"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad edges, bad CSR state)."""


class GraphFormatError(GraphError):
    """Raised when parsing an on-disk graph file fails."""


class WalkError(ReproError):
    """Raised for invalid random-walk configuration or execution state."""


class EmbeddingError(ReproError):
    """Raised for invalid embedding configuration or lookups."""


class TrainingError(ReproError):
    """Raised when classifier training is misconfigured or diverges."""


class DataPreparationError(ReproError):
    """Raised when train/valid/test preparation cannot be satisfied."""


class ModelError(ReproError):
    """Raised for hardware-model configuration errors."""


class PipelineError(ReproError):
    """Raised for invalid end-to-end pipeline configuration."""


class WorkerError(ReproError):
    """Raised when a parallel worker shard fails permanently.

    The supervisor retries failed shards and can degrade to in-process
    execution; this error means every recovery avenue was exhausted (or
    disabled) for at least one shard.
    """


class CheckpointError(ReproError):
    """Raised for unreadable, corrupt, or mismatched checkpoint state."""


class ServingError(ReproError):
    """Raised for invalid online-serving state or configuration.

    Covers the :mod:`repro.serving` layer: reading from an empty
    embedding store, publishing an older generation over a newer one,
    submitting to a closed batch scheduler, and malformed queries.
    """


class StreamError(ReproError):
    """Raised for invalid streaming-ingest state or configuration.

    Covers the :mod:`repro.stream` layer: malformed or corrupted
    write-ahead-log segments (outside the recoverable torn-tail case),
    appending to a closed log or queue, and misconfigured backpressure
    or refresh policies.
    """


class FaultInjected(ReproError):
    """Raised by the fault-injection layer (:mod:`repro.faults`).

    Only ever raised when a fault plan is active (via config or the
    ``REPRO_FAULTS`` environment variable); production runs never see it.
    """
