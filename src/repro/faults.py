"""Deterministic fault injection for pipeline and worker testing.

Fault tolerance is only trustworthy if failures are reproducible on
demand.  This module provides a small, env/config-driven hook that the
parallel supervisor (:mod:`repro.parallel.supervisor`) and the pipeline
(:mod:`repro.tasks.pipeline`) consult at well-defined *sites*:

- worker sites: ``walks`` and ``sgns``, fired once per shard *attempt*
  inside the worker process, before the shard body runs;
- pipeline sites: ``after-walks``, ``after-word2vec`` and
  ``after-task``, fired in the driver process right after a phase
  completes (and after its checkpoint, if any, has been written) — the
  way to simulate a run dying between phases.

A :class:`FaultSpec` selects a site, a fault kind, an optional shard,
and how many attempts to sabotage.  Because the supervisor retries a
shard with the *same* seed material, a spec with ``times=1`` makes the
first attempt fail and the retry succeed with bit-identical output —
which is exactly what the fault-injection test suite asserts.

Fault kinds
-----------
``crash``
    ``os._exit`` with a nonzero code: an abrupt death that skips all
    cleanup, like the OOM killer.
``hang``
    Sleep effectively forever; only a supervisor shard timeout recovers.
``delay``
    Sleep ``delay_seconds`` and then continue normally: a straggler,
    not a failure (unless it trips the shard timeout).
``error``
    Raise :class:`~repro.errors.FaultInjected`: a clean worker
    exception.
``corrupt``
    Let the shard complete, then garble its result payload so the
    supervisor's integrity check rejects it.

Plans can be built programmatically (``FaultPlan.parse("walks:crash:0")``)
or ambient via the ``REPRO_FAULTS`` environment variable, which holds a
comma-separated list of ``site:kind[:shard[:times[:delay]]]`` specs
(shard ``*`` matches any shard).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import FaultInjected, ReproError

ENV_VAR = "REPRO_FAULTS"

#: Exit code used by injected ``crash`` faults (visible in supervisor
#: failure reports, so tests can tell an injected crash from a real one).
CRASH_EXIT_CODE = 73

#: ``hang`` sleeps this long; any sane shard timeout fires first.
_HANG_SECONDS = 6000.0

KINDS = ("crash", "hang", "delay", "error", "corrupt")

WORKER_SITES = ("walks", "sgns")
PIPELINE_SITES = ("after-walks", "after-word2vec", "after-task")
#: Default site of :func:`repro.parallel.supervisor.run_supervised` for
#: callers that don't name one (used by the supervisor's own tests).
GENERIC_SITES = ("shards",)
#: Streaming-ingest sites (:mod:`repro.stream`), fired with the batch
#: index as the shard: ``stream.wal.write`` fires halfway through the
#: batch's edge records (a crash there leaves a torn segment tail);
#: ``stream.wal.fsync`` fires after the records are written but before
#: the commit record + fsync acknowledge the batch (a crash there loses
#: exactly the in-flight batch); ``stream.controller.drain`` fires when
#: the controller picks a batch off the ingest queue, before any write.
STREAM_SITES = ("stream.wal.write", "stream.wal.fsync",
                "stream.controller.drain")
#: Control-plane sites (:mod:`repro.serving.controlplane`), fired with
#: the shard id as the shard: ``controlplane.health`` fires at the top
#: of each supervision sweep in the *router* process (an ``error``
#: there skips the sweep; the loop must survive it);
#: ``controlplane.respawn`` fires inside a *respawned* worker before it
#: serves its first command, with ``attempt`` = how many respawns this
#: slot has already burned — ``crash`` there is the crash-loop drill
#: that must trip the ``max_respawns`` circuit breaker.
CONTROLPLANE_SITES = ("controlplane.health", "controlplane.respawn")
SITES = (WORKER_SITES + PIPELINE_SITES + GENERIC_SITES + STREAM_SITES
         + CONTROLPLANE_SITES)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where, what, which shard, and how often."""

    site: str
    kind: str
    shard: int | None = None
    times: int = 1
    delay_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            # A typo'd site would parse fine and then silently never
            # fire, making a fault-tolerance test vacuously green.
            raise ReproError(
                f"unknown fault site {self.site!r}; options: {', '.join(SITES)}"
            )
        if self.kind not in KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; options: {', '.join(KINDS)}"
            )
        if self.times < 1:
            raise ReproError(f"fault times must be >= 1, got {self.times}")
        if self.delay_seconds < 0:
            raise ReproError(
                f"fault delay must be >= 0, got {self.delay_seconds}"
            )

    def matches(self, site: str, shard: int, attempt: int) -> bool:
        """True when this spec should fire at (site, shard, attempt)."""
        return (
            self.site == site
            and (self.shard is None or self.shard == shard)
            and attempt < self.times
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``site:kind[:shard[:times[:delay]]]`` (shard ``*`` = any)."""
        parts = text.strip().split(":")
        if len(parts) < 2:
            raise ReproError(
                f"bad fault spec {text!r}; expected site:kind[:shard[:times[:delay]]]"
            )
        site, kind = parts[0], parts[1]
        shard: int | None = None
        times = 1
        delay = 1.0
        try:
            if len(parts) > 2 and parts[2] not in ("", "*"):
                shard = int(parts[2])
            if len(parts) > 3 and parts[3]:
                times = int(parts[3])
            if len(parts) > 4 and parts[4]:
                delay = float(parts[4])
        except ValueError as exc:
            raise ReproError(f"bad fault spec {text!r}: {exc}") from exc
        return cls(site=site, kind=kind, shard=shard, times=times,
                   delay_seconds=delay)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs consulted at every injection site.

    The empty plan (the default everywhere) never fires and costs one
    tuple iteration per site visit.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a comma-separated list of fault specs (may be empty)."""
        specs = tuple(
            FaultSpec.parse(part)
            for part in text.split(",")
            if part.strip()
        )
        return cls(specs=specs)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """Build a plan from ``REPRO_FAULTS`` (empty plan when unset)."""
        env = os.environ if environ is None else environ
        return cls.parse(env.get(ENV_VAR, ""))

    # ------------------------------------------------------------------
    def match(self, site: str, shard: int, attempt: int) -> FaultSpec | None:
        """First spec firing at (site, shard, attempt), or None."""
        for spec in self.specs:
            if spec.matches(site, shard, attempt):
                return spec
        return None

    def fire(self, site: str, shard: int = 0, attempt: int = 0) -> None:
        """Execute any matching pre-execution fault at this site.

        ``corrupt`` is not handled here — it must garble the *result*,
        so the supervisor applies it after the shard body returns (see
        :meth:`should_corrupt`).
        """
        spec = self.match(site, shard, attempt)
        if spec is None or spec.kind == "corrupt":
            return
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            time.sleep(_HANG_SECONDS)
            return
        if spec.kind == "delay":
            time.sleep(spec.delay_seconds)
            return
        raise FaultInjected(
            f"injected fault at site={site} shard={shard} attempt={attempt}"
        )

    def should_corrupt(self, site: str, shard: int = 0, attempt: int = 0) -> bool:
        """True when a ``corrupt`` spec fires at (site, shard, attempt)."""
        spec = self.match(site, shard, attempt)
        return spec is not None and spec.kind == "corrupt"
